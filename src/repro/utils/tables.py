"""Plain-text result tables for experiment harnesses.

Each experiment prints the same rows/series the paper reports; this module
keeps the formatting consistent and testable.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


class ResultTable:
    """A minimal column-aligned table with a title.

    Example:
        >>> t = ResultTable("Demo", ["name", "value"])
        >>> t.add_row(["alpha", 1.25])
        >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, row: Sequence[Any]) -> None:
        """Append a row; values are stringified (floats get 4 significant digits)."""
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(self.columns)}"
            )
        self.rows.append([_format_cell(cell) for cell in row])

    def to_dicts(self) -> List[Dict[str, str]]:
        """Rows as dictionaries keyed by column name (for tests)."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def render(self) -> str:
        """Render the table as aligned plain text."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        rule = "-" * len(header)
        lines = [self.title, rule, header, rule]
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        lines.append(rule)
        return "\n".join(lines)


def _format_cell(cell: Any, digits: int = 4) -> str:
    if isinstance(cell, float):
        return f"{cell:.{digits}g}"
    return str(cell)
