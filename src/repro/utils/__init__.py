"""Shared utilities: RNG handling, running statistics, and result tables."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.stats import RunningStat, pearson_correlation, empirical_cdf
from repro.utils.tables import ResultTable

__all__ = [
    "as_rng",
    "spawn_rngs",
    "RunningStat",
    "pearson_correlation",
    "empirical_cdf",
    "ResultTable",
]
