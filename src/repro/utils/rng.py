"""Random-number-generator plumbing.

Every stochastic component in the library accepts either a seed or a
``numpy.random.Generator`` so experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    Args:
        seed: ``None`` (fresh entropy), an integer seed, or an existing
            generator (returned unchanged).

    Returns:
        A ``numpy.random.Generator`` instance.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list:
    """Derive ``count`` independent generators from one seed.

    Uses ``SeedSequence.spawn`` so the children are statistically
    independent regardless of how many are requested.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream.
        children = seed.bit_generator.seed_seq.spawn(count)
        return [np.random.default_rng(c) for c in children]
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(c) for c in seq.spawn(count)]
