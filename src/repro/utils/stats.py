"""Small statistics helpers used across experiments."""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np


class RunningStat:
    """Numerically stable running mean/variance (Welford's algorithm)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def push(self, value: float) -> None:
        """Add one observation."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    def extend(self, values: Iterable[float]) -> None:
        """Add many observations."""
        for value in values:
            self.push(value)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))


def pearson_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson's r between two equal-length sequences.

    Returns 0.0 when either sequence is constant (correlation undefined).
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape:
        raise ValueError(f"shape mismatch: {xa.shape} vs {ya.shape}")
    if xa.size < 2:
        return 0.0
    xs = xa.std()
    ys = ya.std()
    if xs == 0.0 or ys == 0.0:
        return 0.0
    return float(np.corrcoef(xa, ya)[0, 1])


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return (sorted values, CDF levels in (0, 1]) for plotting/reporting."""
    v = np.sort(np.asarray(values, dtype=float))
    if v.size == 0:
        return v, v
    levels = np.arange(1, v.size + 1) / v.size
    return v, levels


def percentile(values: Sequence[float], q: float) -> float:
    """Convenience wrapper with an explicit name for report rows."""
    return float(np.percentile(np.asarray(values, dtype=float), q))
