"""On-disk weight cache for trained teachers.

Training the teacher DNNs takes tens of seconds; experiments and
benchmarks re-use trained weights through this cache so the suite stays
fast and deterministic.  Cache entries are ``.npz`` files under
``<repo>/.cache/teachers`` keyed by a stable hash of the training recipe.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np


def cache_dir() -> Path:
    """Directory for cached weights (created on demand).

    Override with the ``REPRO_CACHE_DIR`` environment variable.
    """
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        path = Path(root)
    else:
        path = Path(__file__).resolve().parents[3] / ".cache" / "teachers"
    path.mkdir(parents=True, exist_ok=True)
    return path


def recipe_key(name: str, recipe: Dict) -> str:
    """Stable short hash of a training recipe dictionary."""
    blob = json.dumps(recipe, sort_keys=True, default=str).encode()
    return f"{name}-{hashlib.sha256(blob).hexdigest()[:16]}"


def save_weights(key: str, arrays: Sequence[np.ndarray]) -> Path:
    """Persist a list of arrays under ``key``; returns the file path.

    The write is atomic: arrays go to a temp file in the cache directory
    first and ``os.replace`` installs it, so a concurrent benchmark/CI
    run can never observe a half-written ``.npz``.
    """
    path = cache_dir() / f"{key}.npz"
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{key}-", suffix=".npz.tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, *arrays)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_weights(key: str) -> Optional[List[np.ndarray]]:
    """Load arrays previously saved under ``key`` (None on miss)."""
    path = cache_dir() / f"{key}.npz"
    if not path.exists():
        return None
    with np.load(path) as data:
        return [data[k] for k in data.files]
