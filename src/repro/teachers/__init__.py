"""Teacher systems interpreted by Metis: Pensieve, AuTO, RouteNet*.

Submodules are imported lazily by callers (``repro.teachers.pensieve``
etc.) so each teacher's dependency chain stays independent.
"""
