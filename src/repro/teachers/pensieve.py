"""The Pensieve teacher: an A2C-trained bitrate-adaptation DNN.

Pensieve [Mao et al., SIGCOMM'17] learns a softmax policy over the bitrate
ladder from network observations.  This module trains a numpy
reimplementation on the synthetic trace sets and exposes it both as an RL
agent (for distillation: probabilities, value, Q) and as an
:class:`~repro.envs.abr.baselines.ABRPolicy` (for head-to-head QoE runs).

It also implements the §6.2 "modified structure": the last-bitrate feature
``r_t`` is wired straight to the output layer (Fig. 10b), which the paper
shows trains faster and reaches higher QoE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.envs.abr.env import (
    ABREnv,
    IDX_BUFFER,
    IDX_CHUNKS_LEFT,
    IDX_LAST_BITRATE,
    DOWNLOAD_TIME_SLICE,
    NEXT_SIZES_SLICE,
    STATE_DIM,
    THROUGHPUT_SLICE,
)
from repro.envs.abr.video import Video
from repro.nn.a2c import A2CTrainer, Trajectory, rollout
from repro.nn.policy import SoftmaxPolicy, ValueNet
from repro.nn.qeval import QEstimator
from repro.teachers.cache import load_weights, recipe_key, save_weights
from repro.utils.rng import SeedLike, as_rng

#: Per-feature normalization applied before the network (natural units in,
#: roughly unit-scale activations out).
STATE_SCALE = np.ones(STATE_DIM)
STATE_SCALE[IDX_LAST_BITRATE] = 1.0 / 4.3
STATE_SCALE[IDX_BUFFER] = 1.0 / 20.0
STATE_SCALE[THROUGHPUT_SLICE] = 1.0 / 5.0
STATE_SCALE[DOWNLOAD_TIME_SLICE] = 1.0 / 10.0
STATE_SCALE[NEXT_SIZES_SLICE] = 1.0 / 2.0
STATE_SCALE[IDX_CHUNKS_LEFT] = 1.0


class _NormalizedEnv:
    """Expose an ABR env to the trainer with normalized observations."""

    def __init__(self, env: ABREnv) -> None:
        self.env = env

    def reset(self, rng=None):
        return self.env.reset(rng) * STATE_SCALE

    def step(self, action):
        state, reward, done, info = self.env.step(action)
        return state * STATE_SCALE, reward, done, info


@dataclass
class PensieveTeacher:
    """A trained Pensieve agent.

    Attributes:
        policy: softmax policy over the 6-rung ladder (normalized inputs).
        value: critic from A2C training.
        qest: fitted-Q evaluator (populated by :func:`fit_q`), used by
            Metis' advantage resampling.
        modified: whether this is the Fig. 10b structure.
    """

    policy: SoftmaxPolicy
    value: ValueNet
    qest: Optional[QEstimator] = None
    modified: bool = False
    name: str = "Pensieve"

    @property
    def n_actions(self) -> int:
        """Size of the bitrate ladder (distillation needs the full action
        space even when the trained policy has abandoned some rungs)."""
        return self.policy.n_actions

    # -- RL-agent interface (normalized-state in) -----------------------
    def normalize(self, states: np.ndarray) -> np.ndarray:
        return np.atleast_2d(states) * STATE_SCALE

    def action_probabilities(self, states: np.ndarray) -> np.ndarray:
        """pi(a|s) for *natural-unit* states, shape (n, 6)."""
        return self.policy.probabilities(self.normalize(states))

    def act_greedy(self, state: np.ndarray) -> int:
        return int(np.argmax(self.action_probabilities(state)[0]))

    def act_greedy_batch(self, states: np.ndarray) -> np.ndarray:
        return np.argmax(self.action_probabilities(states), axis=1)

    def state_values(self, states: np.ndarray) -> np.ndarray:
        return self.value.predict(self.normalize(states))

    def q_values(self, states: np.ndarray) -> np.ndarray:
        if self.qest is None:
            raise RuntimeError("call fit_q() before requesting Q-values")
        return self.qest.predict(self.normalize(states))

    # -- ABRPolicy interface (so run_policy works unchanged) -------------
    def reset(self) -> None:
        """No per-session state (greedy deployment)."""

    def select(self, state: np.ndarray, env: ABREnv) -> int:
        return self.act_greedy(state)

    def fit_q(
        self,
        env: ABREnv,
        episodes: int = 24,
        seed: SeedLike = None,
        gamma: float = 0.99,
    ) -> QEstimator:
        """Fitted SARSA evaluation of this policy (for Eq. 1 resampling)."""
        rng = as_rng(seed)
        wrapped = _NormalizedEnv(env)
        trajectories = [
            rollout(wrapped, lambda s: self.policy.act(s, rng), rng)
            for _ in range(episodes)
        ]
        qest = QEstimator(
            STATE_DIM, self.policy.n_actions, gamma=gamma, seed=rng
        )
        qest.fit(trajectories)
        self.qest = qest
        return qest


def train_pensieve(
    env: ABREnv,
    episodes: int = 3000,
    seed: SeedLike = 0,
    modified: bool = False,
    entropy_schedule: Sequence[float] = (0.05, 0.01),
    use_cache: bool = True,
    return_history: bool = False,
):
    """Train (or load from cache) a Pensieve teacher on ``env``.

    Args:
        env: ABR environment whose trace set defines the training
            distribution.
        episodes: total A2C episodes, split evenly across the entropy
            schedule phases (high entropy first, then low — the decay is
            what lets the policy collapse onto a preferred action subset,
            the §6.3 pathology).
        seed: training seed (also the cache key component).
        modified: build the Fig. 10b structure (``r_t`` skip connection).
        entropy_schedule: entropy coefficients per phase.
        use_cache: reuse cached weights when available.
        return_history: also return the per-episode return curve.
    """
    recipe = {
        "episodes": episodes,
        "seed": int(seed) if isinstance(seed, int) else str(seed),
        "modified": modified,
        "entropy": list(entropy_schedule),
        "n_chunks": env.video.n_chunks,
        "n_traces": len(env.traces),
        "trace0": env.traces[0].name,
    }
    key = recipe_key("pensieve", recipe)
    skip = [IDX_LAST_BITRATE] if modified else None
    policy = SoftmaxPolicy(
        STATE_DIM, env.n_actions, hidden=(64, 32), skip_features=skip,
        seed=as_rng(seed),
    )
    value = ValueNet(STATE_DIM, seed=as_rng(seed))
    teacher = PensieveTeacher(policy=policy, value=value, modified=modified)

    if use_cache:
        cached = load_weights(key)
        if cached is not None:
            n_policy = len(policy.net.params())
            policy.net.set_weights(cached[:n_policy])
            value.net.set_weights(cached[n_policy:])
            if return_history:
                hist = load_weights(key + "-hist")
                history = list(hist[0]) if hist else []
                return teacher, history
            return teacher

    trainer = A2CTrainer(policy=policy, value=value)
    wrapped = _NormalizedEnv(env)
    rng = as_rng(seed)
    per_phase = max(1, episodes // len(entropy_schedule))
    for coef in entropy_schedule:
        trainer.entropy_coef = coef
        trainer.train(wrapped, per_phase, seed=rng)

    if use_cache:
        save_weights(key, policy.net.get_weights() + value.net.get_weights())
        save_weights(key + "-hist", [np.asarray(trainer.history)])
    if return_history:
        return teacher, list(trainer.history)
    return teacher


def default_abr_env(
    trace_kind: str = "hsdpa",
    n_traces: int = 60,
    n_chunks: int = 48,
    seed: int = 7,
) -> ABREnv:
    """The canonical training environment used across experiments."""
    from repro.envs.traces import trace_set

    video = Video.synthetic(n_chunks=n_chunks, seed=seed)
    traces = trace_set(trace_kind, n_traces, seed=seed + 1)
    return ABREnv(video, traces)
