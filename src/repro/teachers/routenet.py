"""RouteNet-style path-link message passing and the RouteNet* optimizer.

RouteNet [Rusek et al., SOSR'19] predicts per-path latency from the
topology with a GNN that alternates *path updates* (paths aggregate the
state of their links) and *link updates* (links aggregate the state of the
paths crossing them).  RouteNet* (the paper's §5 close-loop variant)
couples those predictions with routing decisions: candidate paths are
scored by predicted latency and the best one is installed, which changes
link loads, which changes predictions.

This implementation is numpy with *manual backpropagation*, including
gradients with respect to the path-link incidence weights ``W`` — that is
the derivative Metis' hypergraph mask search (§4.2) needs, because the
mask enters exactly where the incidence enters (Eq. 9: ``W = I ∘
sigmoid(W')``).

Shapes: ``E`` hyperedges (paths), ``V`` vertices (directed links), ``D``
embedding width, ``T`` message-passing iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.envs.routing.delay import (
    Routing,
    routing_latencies,
    shortest_path_routing,
)
from repro.envs.routing.demands import TrafficMatrix
from repro.envs.routing.topology import Topology
from repro.teachers.cache import load_weights, recipe_key, save_weights
from repro.utils.rng import SeedLike, as_rng

#: Feature scales: capacities/loads ~40 units, demands ~10, hops ~5.
CAP_SCALE = 40.0
DEMAND_SCALE = 10.0
HOP_SCALE = 5.0


def _softplus(z: np.ndarray) -> np.ndarray:
    return np.log1p(np.exp(-np.abs(z))) + np.maximum(z, 0.0)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))


@dataclass
class _Cache:
    """Forward activations needed by the backward pass."""

    xv: np.ndarray
    xe: np.ndarray
    w: np.ndarray
    hv: List[np.ndarray] = field(default_factory=list)
    he: List[np.ndarray] = field(default_factory=list)
    se: List[np.ndarray] = field(default_factory=list)
    sv: List[np.ndarray] = field(default_factory=list)
    z_out: Optional[np.ndarray] = None
    probe_w: Optional[np.ndarray] = None
    probe_xe: Optional[np.ndarray] = None
    probe_he: Optional[np.ndarray] = None
    probe_z: Optional[np.ndarray] = None


class PathLinkNet:
    """The message-passing latency predictor.

    Args:
        dim: embedding width.
        iterations: message-passing rounds ``T``.
        seed: weight initialization seed.
    """

    PARAM_NAMES = (
        "wl", "bl", "wp", "bp", "a1", "a2", "ba", "b1", "b2", "bb", "r", "br",
    )

    def __init__(self, dim: int = 8, iterations: int = 3, seed: SeedLike = None):
        rng = as_rng(seed)
        d = dim
        self.dim = d
        self.iterations = iterations

        def init(*shape):
            return rng.normal(0.0, 1.0 / np.sqrt(shape[0]), size=shape)

        self.wl = init(2, d)
        self.bl = np.zeros(d)
        self.wp = init(2, d)
        self.bp = np.zeros(d)
        self.a1 = init(d, d)
        self.a2 = init(d, d)
        self.ba = np.zeros(d)
        self.b1 = init(d, d)
        self.b2 = init(d, d)
        self.bb = np.zeros(d)
        self.r = init(d, 1)[:, 0]
        self.br = np.zeros(1)
        self._cache: Optional[_Cache] = None

    # ------------------------------------------------------------------
    def params(self) -> List[np.ndarray]:
        return [getattr(self, n) for n in self.PARAM_NAMES]

    def get_weights(self) -> List[np.ndarray]:
        return [p.copy() for p in self.params()]

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        for name, w in zip(self.PARAM_NAMES, weights):
            getattr(self, name)[...] = w

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.params()))

    # ------------------------------------------------------------------
    def forward(
        self,
        xv: np.ndarray,
        xe: np.ndarray,
        w: np.ndarray,
        probe_w: Optional[np.ndarray] = None,
        probe_xe: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Predict latencies.

        Args:
            xv: link features ``(V, 2)`` — [capacity, load], natural units.
            xe: path features ``(E, 2)`` — [demand, hops], natural units.
            w: weighted incidence ``(E, V)`` (the mask; 0/1 when unmasked).
            probe_w: optional probe incidences ``(P, V)`` for candidate
                paths that read link state but do not send messages.
            probe_xe: probe path features ``(P, 2)``.

        Returns:
            (latencies for the E hyperedges, latencies for the P probes).
        """
        cache = _Cache(
            xv=np.asarray(xv, dtype=float) / np.array([CAP_SCALE, CAP_SCALE]),
            xe=np.asarray(xe, dtype=float) / np.array([DEMAND_SCALE, HOP_SCALE]),
            w=np.asarray(w, dtype=float),
        )
        hv = np.tanh(cache.xv @ self.wl + self.bl)
        he = np.tanh(cache.xe @ self.wp + self.bp)
        cache.hv.append(hv)
        cache.he.append(he)
        for _ in range(self.iterations):
            se = cache.w @ hv
            he = np.tanh(he @ self.a1 + se @ self.a2 + self.ba)
            sv = cache.w.T @ he
            hv = np.tanh(hv @ self.b1 + sv @ self.b2 + self.bb)
            cache.se.append(se)
            cache.he.append(he)
            cache.sv.append(sv)
            cache.hv.append(hv)
        z = he @ self.r + self.br
        cache.z_out = z
        latency = _softplus(z)

        probe_latency = None
        if probe_w is not None:
            cache.probe_w = np.asarray(probe_w, dtype=float)
            cache.probe_xe = (
                np.asarray(probe_xe, dtype=float)
                / np.array([DEMAND_SCALE, HOP_SCALE])
            )
            he0 = np.tanh(cache.probe_xe @ self.wp + self.bp)
            sp = cache.probe_w @ hv
            hp = np.tanh(he0 @ self.a1 + sp @ self.a2 + self.ba)
            zp = hp @ self.r + self.br
            cache.probe_he = hp
            cache.probe_z = zp
            probe_latency = _softplus(zp)
        self._cache = cache
        return latency, probe_latency

    # ------------------------------------------------------------------
    def backward(
        self,
        dlat: np.ndarray,
        dlat_probe: Optional[np.ndarray] = None,
    ) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
        """Backpropagate loss gradients.

        Args:
            dlat: ``dL/d(latency)`` for the E hyperedges.
            dlat_probe: ``dL/d(latency)`` for the probes (if any).

        Returns:
            ``(grads, dW, dxv)``: parameter gradients by name, ``dL/dW``
            of shape (E, V) treating the link features as constants, and
            ``dL/d(xv)`` in natural units.  When link loads are derived
            from the mask (``xv[:, 1] = W.T @ demand``), the caller adds
            the coupling ``dW += outer(demand, dxv[:, 1])``.  Probe
            incidences are treated as constants.
        """
        c = self._cache
        if c is None:
            raise RuntimeError("backward called before forward")
        grads = {n: np.zeros_like(getattr(self, n)) for n in self.PARAM_NAMES}
        dw = np.zeros_like(c.w)
        t_last = self.iterations

        dhv = np.zeros_like(c.hv[t_last])
        # --- probe head --------------------------------------------------
        if dlat_probe is not None and c.probe_z is not None:
            dzp = dlat_probe * _sigmoid(c.probe_z)
            grads["r"] += c.probe_he.T @ dzp
            grads["br"] += dzp.sum(keepdims=True)
            dhp = np.outer(dzp, self.r)
            dhp *= 1.0 - c.probe_he**2
            he0 = np.tanh(c.probe_xe @ self.wp + self.bp)
            sp = c.probe_w @ c.hv[t_last]
            grads["a1"] += he0.T @ dhp
            grads["a2"] += sp.T @ dhp
            grads["ba"] += dhp.sum(axis=0)
            dsp = dhp @ self.a2.T
            dhv += c.probe_w.T @ dsp
            dhe0 = dhp @ self.a1.T
            dhe0 *= 1.0 - he0**2
            grads["wp"] += c.probe_xe.T @ dhe0
            grads["bp"] += dhe0.sum(axis=0)

        # --- readout ------------------------------------------------------
        dz = np.asarray(dlat, dtype=float) * _sigmoid(c.z_out)
        grads["r"] += c.he[t_last].T @ dz
        grads["br"] += dz.sum(keepdims=True)
        dhe = np.outer(dz, self.r)

        # --- unrolled message passing, reversed ---------------------------
        for t in range(t_last, 0, -1):
            # Link update: hv_t = tanh(hv_{t-1} B1 + Sv_t B2 + bb)
            dzv = dhv * (1.0 - c.hv[t]**2)
            grads["b1"] += c.hv[t - 1].T @ dzv
            grads["b2"] += c.sv[t - 1].T @ dzv
            grads["bb"] += dzv.sum(axis=0)
            dhv_prev = dzv @ self.b1.T
            dsv = dzv @ self.b2.T
            # Sv_t = W.T @ he_t
            dw += c.he[t] @ dsv.T
            dhe += c.w @ dsv
            # Path update: he_t = tanh(he_{t-1} A1 + Se_t A2 + ba)
            dze = dhe * (1.0 - c.he[t]**2)
            grads["a1"] += c.he[t - 1].T @ dze
            grads["a2"] += c.se[t - 1].T @ dze
            grads["ba"] += dze.sum(axis=0)
            dhe = dze @ self.a1.T
            dse = dze @ self.a2.T
            # Se_t = W @ hv_{t-1}
            dw += dse @ c.hv[t - 1].T
            dhv_prev += c.w.T @ dse
            dhv = dhv_prev

        # --- encoders -----------------------------------------------------
        dzv0 = dhv * (1.0 - c.hv[0]**2)
        grads["wl"] += c.xv.T @ dzv0
        grads["bl"] += dzv0.sum(axis=0)
        dze0 = dhe * (1.0 - c.he[0]**2)
        grads["wp"] += c.xe.T @ dze0
        grads["bp"] += dze0.sum(axis=0)

        # Gradient w.r.t. the natural-unit link features (callers that
        # derive loads from the mask need column 1).
        dxv = (dzv0 @ self.wl.T) / CAP_SCALE
        return grads, dw, dxv

    def apply_grads(self, grads: Dict[str, np.ndarray], lr: float) -> None:
        """Plain SGD step (training uses Adam externally; this is for tests)."""
        for name in self.PARAM_NAMES:
            getattr(self, name)[...] -= lr * grads[name]


# ----------------------------------------------------------------------
def build_features(
    topology: Topology,
    routing: Routing,
    traffic: TrafficMatrix,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[Tuple[int, int]]]:
    """Assemble (xv, xe, incidence, pair order) for a routing."""
    pairs = routing.pairs()
    inc = routing.incidence(topology)
    demands = np.asarray([traffic.volume(*p) for p in pairs])
    hops = inc.sum(axis=1)
    xe = np.stack([demands, hops], axis=1)
    loads = inc.T @ demands
    xv = np.stack([topology.capacity_vector(), loads], axis=1)
    return xv, xe, inc, pairs


def train_routenet(
    topology: Topology,
    traffics: Sequence[TrafficMatrix],
    epochs: int = 400,
    samples_per_tm: int = 4,
    lr: float = 3e-3,
    seed: SeedLike = 0,
    use_cache: bool = True,
    dim: int = 8,
    iterations: int = 3,
) -> PathLinkNet:
    """Fit the predictor to the M/M/1 ground truth over random routings."""
    from repro.nn.optim import Adam

    recipe = {
        "topology": topology.name,
        "n_tm": len(traffics),
        "epochs": epochs,
        "samples": samples_per_tm,
        "lr": lr,
        "dim": dim,
        "iters": iterations,
        "seed": int(seed) if isinstance(seed, int) else str(seed),
    }
    key = recipe_key("routenet", recipe)
    net = PathLinkNet(dim=dim, iterations=iterations, seed=seed)
    if use_cache:
        cached = load_weights(key)
        if cached is not None:
            net.set_weights(cached)
            return net

    from repro.envs.routing.delay import link_delays, path_latency

    rng = as_rng(seed)
    candidates = {
        pair: topology.candidate_paths(*pair) for pair in topology.node_pairs()
    }
    dataset = []
    for tm in traffics:
        for _ in range(samples_per_tm):
            paths = {
                pair: cands[int(rng.integers(len(cands)))]
                for pair, cands in candidates.items()
            }
            routing = Routing(paths)
            xv, xe, inc, pairs = build_features(topology, routing, tm)
            truth = routing_latencies(topology, routing, tm)
            y = np.asarray([truth[p] for p in pairs])
            # Probe targets: candidate paths scored under this routing's
            # link delays — the probe head must be trained on the same
            # quantity the optimizer later asks it for.
            delays = link_delays(topology, routing, tm)
            probe_rows, probe_feats, probe_y = [], [], []
            for _ in range(60):
                pair = pairs[int(rng.integers(len(pairs)))]
                pair_cands = candidates[pair]
                cand = pair_cands[int(rng.integers(len(pair_cands)))]
                row = np.zeros(topology.n_links)
                for link in Topology.path_links(cand):
                    row[topology.link_index(link)] = 1.0
                probe_rows.append(row)
                probe_feats.append([tm.volume(*pair), len(cand) - 1])
                probe_y.append(path_latency(cand, delays, topology))
            dataset.append((
                xv, xe, inc, y,
                np.asarray(probe_rows), np.asarray(probe_feats),
                np.asarray(probe_y),
            ))

    opt = Adam(lr=lr)
    order = list(net.PARAM_NAMES)
    for _ in range(epochs):
        idx = int(rng.integers(len(dataset)))
        xv, xe, inc, y, pw, pxe, py = dataset[idx]
        pred, probe_pred = net.forward(xv, xe, inc, probe_w=pw, probe_xe=pxe)
        err = pred - y
        perr = probe_pred - py
        dlat = 2.0 * err / err.size
        dprobe = 2.0 * perr / perr.size
        grads, _, _ = net.backward(dlat, dprobe)
        opt.step(net.params(), [grads[n] for n in order])
    if use_cache:
        save_weights(key, net.get_weights())
    return net


# ----------------------------------------------------------------------
@dataclass
class RouteNetStar:
    """The close-loop routing optimizer: predict latencies, pick paths.

    Attributes:
        topology: the network.
        net: trained latency predictor.
        temperature: Boltzmann temperature of the decision distribution
            (the discrete output the mask search compares by KL).
    """

    topology: Topology
    net: PathLinkNet
    temperature: float = 0.1
    name: str = "RouteNet*"

    def candidates(self, pair: Tuple[int, int]) -> List[List[int]]:
        return self.topology.candidate_paths(*pair)

    def optimize(
        self,
        traffic: TrafficMatrix,
        sweeps: int = 2,
        seed: SeedLike = 0,
    ) -> Routing:
        """Sequential greedy candidate selection (close loop).

        Pairs are visited in random order; after each reroute the link
        loads are recomputed, so later decisions see the consequences of
        earlier ones — this keeps the greedy loop from stampeding every
        demand onto the same momentarily-idle links.
        """
        rng = as_rng(seed)
        routing = shortest_path_routing(self.topology)
        pairs = routing.pairs()
        cands = {p: self.candidates(p) for p in pairs}
        paths = dict(routing.paths)
        for _ in range(sweeps):
            order = list(range(len(pairs)))
            rng.shuffle(order)
            for i in order:
                pair = pairs[i]
                current = Routing(paths)
                scores = self._candidate_latencies(
                    current, traffic, {pair: cands[pair]}
                )
                paths[pair] = cands[pair][int(np.argmin(scores[pair]))]
        return Routing(paths)

    def _candidate_latencies(
        self,
        routing: Routing,
        traffic: TrafficMatrix,
        cands: Dict[Tuple[int, int], List[List[int]]],
    ) -> Dict[Tuple[int, int], np.ndarray]:
        """Predicted latency of every candidate, in current-load context."""
        xv, xe, inc, pairs = build_features(self.topology, routing, traffic)
        probe_rows = []
        probe_feats = []
        owners: List[Tuple[Tuple[int, int], int]] = []
        for pair in sorted(cands):
            demand = traffic.volume(*pair)
            for ci, cand in enumerate(cands[pair]):
                row = np.zeros(self.topology.n_links)
                for link in Topology.path_links(cand):
                    row[self.topology.link_index(link)] = 1.0
                probe_rows.append(row)
                probe_feats.append([demand, len(cand) - 1])
                owners.append((pair, ci))
        _, probe_lat = self.net.forward(
            xv, xe, inc,
            probe_w=np.asarray(probe_rows),
            probe_xe=np.asarray(probe_feats),
        )
        out: Dict[Tuple[int, int], List[float]] = {p: [] for p in cands}
        for (pair, _), lat in zip(owners, probe_lat):
            out[pair].append(float(lat))
        return {p: np.asarray(v) for p, v in out.items()}

    def decision_distribution(
        self,
        routing: Routing,
        traffic: TrafficMatrix,
        mask: Optional[np.ndarray] = None,
    ) -> Dict[Tuple[int, int], np.ndarray]:
        """Boltzmann decision distribution over candidates per pair.

        With ``mask`` (same shape as the routing incidence), the chosen
        paths' link aggregation and link loads are weighted by the mask —
        the ``Y_W`` of Eq. 5; ``mask=None`` gives ``Y_I``.
        """
        xv, xe, inc, pairs = build_features(self.topology, routing, traffic)
        w = inc if mask is None else mask
        if mask is not None:
            loads = w.T @ xe[:, 0]
            xv = np.stack([self.topology.capacity_vector(), loads], axis=1)
        cands = {p: self.candidates(p) for p in pairs}
        probe_rows, probe_feats, owners = [], [], []
        for pair in pairs:
            demand = traffic.volume(*pair)
            for cand in cands[pair]:
                row = np.zeros(self.topology.n_links)
                for link in Topology.path_links(cand):
                    row[self.topology.link_index(link)] = 1.0
                probe_rows.append(row)
                probe_feats.append([demand, len(cand) - 1])
                owners.append(pair)
        _, probe_lat = self.net.forward(
            xv, xe, w,
            probe_w=np.asarray(probe_rows),
            probe_xe=np.asarray(probe_feats),
        )
        out: Dict[Tuple[int, int], List[float]] = {p: [] for p in pairs}
        for pair, lat in zip(owners, probe_lat):
            out[pair].append(float(lat))
        dist = {}
        for pair, lats in out.items():
            z = -np.asarray(lats) / self.temperature
            z -= z.max()
            e = np.exp(z)
            dist[pair] = e / e.sum()
        return dist
