"""The AuTO teacher: lRLA (long-flow priorities) and sRLA (MLFQ thresholds).

AuTO [Chen et al., SIGCOMM'18] splits traffic optimization between two
deep-RL agents:

* **sRLA** observes statistics of recently finished short flows and emits
  the MLFQ demotion thresholds (a continuous action) — here a squashed
  Gaussian policy trained by REINFORCE over windowed simulations.
* **lRLA** makes a per-flow decision (priority) for every long flow — here
  a softmax policy trained by REINFORCE with per-decision credit
  (the negative log slowdown of the flow it scheduled).

Both agents are later distilled into decision trees by Metis
(classification tree for lRLA, multi-output regression tree for sRLA).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.envs.flows.mlfq import MLFQConfig
from repro.envs.flows.simulator import FabricSimulator, FabricSnapshot
from repro.envs.flows.workloads import (
    Flow,
    FlowSizeDistribution,
    WEB_SEARCH,
    generate_flows,
)
from repro.nn.a2c import Trajectory
from repro.nn.optim import Adam
from repro.nn.policy import GaussianPolicy, SoftmaxPolicy
from repro.nn.qeval import QEstimator
from repro.teachers.cache import load_weights, recipe_key, save_weights
from repro.utils.rng import SeedLike, as_rng, spawn_rngs

#: Number of MLFQ queues (4 thresholds) used throughout.
N_QUEUES = 5

#: lRLA feature dimensionality: log size, log sent, counts and remaining
#: bytes per queue (see FabricSnapshot.feature_vector).
LRLA_STATE_DIM = 2 + 2 * N_QUEUES

#: Internal input normalization for the lRLA network (natural units in,
#: roughly unit-scale activations out; trees see natural units).
LRLA_SCALE = np.concatenate([[1 / 8.0, 1 / 8.0],
                             np.full(N_QUEUES, 1 / 10.0),
                             np.full(N_QUEUES, 1 / 10.0)])


def lrla_normalize(states: np.ndarray) -> np.ndarray:
    """Scale natural-unit lRLA features for the network."""
    return np.atleast_2d(np.asarray(states, dtype=float)) * LRLA_SCALE


#: sRLA observes a bucketed histogram of finished short-flow sizes plus
#: aggregate load and slowdown statistics.
SRLA_BUCKETS = np.logspace(2, 7, 8)  # 100 B .. 10 MB
SRLA_STATE_DIM = len(SRLA_BUCKETS) + 2

#: sRLA action space: 4 thresholds as log2(bytes) in [10, 21] (1 KB–2 MB).
SRLA_ACTION_DIM = N_QUEUES - 1
SRLA_LOW, SRLA_HIGH = 10.0, 21.0

#: Flows at least this large get a central (lRLA) decision.
LONG_FLOW_BYTES = 1_000_000.0

LRLA_FEATURE_NAMES: Tuple[str, ...] = (
    ("log_size", "log_sent")
    + tuple(f"q{i}_count" for i in range(N_QUEUES))
    + tuple(f"q{i}_log_bytes" for i in range(N_QUEUES))
)

SRLA_FEATURE_NAMES: Tuple[str, ...] = (
    tuple(f"bucket_{i}" for i in range(len(SRLA_BUCKETS)))
    + ("load", "mean_slowdown")
)


def srla_state(
    finished_short: Sequence[Flow], load: float, capacity_bps: float
) -> np.ndarray:
    """Feature vector summarizing a window of finished short flows."""
    counts = np.zeros(len(SRLA_BUCKETS))
    slowdowns = []
    for f in finished_short:
        idx = int(np.searchsorted(SRLA_BUCKETS, f.size_bytes))
        counts[min(idx, len(SRLA_BUCKETS) - 1)] += 1
        slowdowns.append(f.slowdown(capacity_bps))
    total = counts.sum()
    if total > 0:
        counts = counts / total
    mean_sd = float(np.mean(slowdowns)) if slowdowns else 1.0
    return np.concatenate([counts, [load, np.log10(mean_sd + 1e-9) + 1.0]])


@dataclass
class AutoTeacher:
    """Trained AuTO agent pair.

    Attributes:
        lrla: softmax priority policy for long flows.
        srla: Gaussian threshold policy for short flows.
        lrla_qest: fitted one-step Q for lRLA (advantage resampling).
        capacity_bps: fabric bottleneck bandwidth.
    """

    lrla: SoftmaxPolicy
    srla: GaussianPolicy
    lrla_qest: Optional[QEstimator] = None
    capacity_bps: float = 1e9
    name: str = "AuTO"

    def lrla_decision_fn(
        self, rng: SeedLike = None, greedy: bool = True
    ) -> Callable[[Flow, FabricSnapshot], int]:
        """Adapter: lRLA as a simulator ``decision_fn``."""
        rng = as_rng(rng)

        def decide(flow: Flow, snapshot: FabricSnapshot) -> int:
            features = lrla_normalize(snapshot.feature_vector())[0]
            if greedy:
                return self.lrla.act_greedy(features)
            return self.lrla.act(features, rng)

        return decide

    def srla_thresholds(self, state: np.ndarray) -> MLFQConfig:
        """Deterministic thresholds for an sRLA observation."""
        action = self.srla.mean_action(np.atleast_2d(state))[0]
        return MLFQConfig.from_log2(action)

    def lrla_probabilities(self, states: np.ndarray) -> np.ndarray:
        """pi(a|s) for natural-unit lRLA states."""
        return self.lrla.probabilities(lrla_normalize(states))

    def lrla_greedy(self, states: np.ndarray) -> np.ndarray:
        """Greedy priorities for natural-unit lRLA states."""
        return np.argmax(self.lrla_probabilities(states), axis=1)

    # -- generic teacher protocol (lRLA head) ---------------------------
    # The distillation machinery (DistillDataset.from_policy, the batch
    # rollout engine, agreement_with) speaks act_greedy/act_greedy_batch;
    # expose the per-flow lRLA decision under those names so AuTO's
    # classification head can be relabeled and rolled batched like
    # Pensieve.
    def act_greedy(self, state: np.ndarray) -> int:
        return int(self.lrla_greedy(np.atleast_2d(state))[0])

    def act_greedy_batch(self, states: np.ndarray) -> np.ndarray:
        return self.lrla_greedy(states)

    def fit_lrla_q(
        self, states: np.ndarray, actions: np.ndarray, rewards: np.ndarray
    ) -> QEstimator:
        """One-step fitted Q (gamma=0): per-action reward regression."""
        qest = QEstimator(
            LRLA_STATE_DIM, self.lrla.n_actions, gamma=0.0, seed=0
        )
        trajectories = [
            Trajectory(
                states=lrla_normalize(s),
                actions=np.array([a], dtype=int),
                rewards=np.array([r]),
            )
            for s, a, r in zip(states, actions, rewards)
        ]
        qest.fit(trajectories, sweeps=1, epochs_per_sweep=150)
        self.lrla_qest = qest
        return qest


@dataclass
class _WindowOutcome:
    """Everything one simulated window produces for training."""

    decisions: List[Tuple[np.ndarray, int, float]]  # (features, a, reward)
    short_flows: List[Flow]
    mean_short_slowdown: float


def _run_window(
    teacher: AutoTeacher,
    workload: FlowSizeDistribution,
    mlfq: MLFQConfig,
    load: float,
    duration_s: float,
    rng: np.random.Generator,
    greedy: bool = False,
) -> _WindowOutcome:
    """Simulate one training window under the current policies."""
    flows = generate_flows(
        workload, load=load, capacity_bps=teacher.capacity_bps,
        duration_s=duration_s, seed=rng,
    )
    records: List[Tuple[np.ndarray, int, int]] = []  # features, action, fid

    def decide(flow: Flow, snapshot: FabricSnapshot) -> int:
        features = snapshot.feature_vector()
        norm = lrla_normalize(features)[0]
        action = (
            teacher.lrla.act_greedy(norm)
            if greedy
            else teacher.lrla.act(norm, rng)
        )
        records.append((features, action, flow.flow_id))
        return action

    sim = FabricSimulator(
        capacity_bps=teacher.capacity_bps,
        mlfq=mlfq,
        decision_fn=decide,
        decision_latency_s=0.0,
        decision_min_bytes=LONG_FLOW_BYTES,
    )
    result = sim.run(flows)
    by_id = {f.flow_id: f for f in result.flows}
    shorts = [
        f for f in result.flows
        if f.size_bytes < LONG_FLOW_BYTES and np.isfinite(f.completion)
    ]
    decisions = []
    for features, action, fid in records:
        flow = by_id.get(fid)
        if flow is None or not np.isfinite(flow.completion):
            continue
        own = -np.log10(max(flow.slowdown(teacher.capacity_bps), 1.0))
        # Externality: short flows that overlapped this long flow pay for
        # its priority grab — AuTO's reward is global, and without this
        # term the selfish optimum is "always top priority".
        overlap = [
            np.log10(max(s.slowdown(teacher.capacity_bps), 1.0))
            for s in shorts
            if flow.arrival <= s.arrival <= flow.completion
        ]
        # Sum (not mean): a flow that occupies the fabric longer harms more
        # short flows, which is what pushes huge flows to low priorities.
        externality = 0.3 * float(np.sum(overlap)) if overlap else 0.0
        reward = own - externality
        decisions.append((features, action, float(reward)))
    short = [
        f for f in result.flows
        if f.size_bytes < LONG_FLOW_BYTES and np.isfinite(f.completion)
    ]
    mean_sd = (
        float(np.mean([f.slowdown(teacher.capacity_bps) for f in short]))
        if short
        else 1.0
    )
    return _WindowOutcome(decisions, short, mean_sd)


def sjf_priority(features: np.ndarray) -> int:
    """Shortest-job-first-style labeling rule used to pretrain lRLA.

    Flow scheduling theory (pFabric, PIAS) and the paper's own Appendix E
    observation ("the underlying decision logics ... are much simpler,
    e.g. shortest-job-first") say the converged AuTO policy is SJF-like:
    bigger flows take lower priorities, and decisions defer further when
    the top queue is busy with fresh short flows.
    """
    log_size = float(features[0])
    q0_count = float(features[2])
    priority = int(np.clip((log_size - 6.0) * 2.5, 0.0, N_QUEUES - 2))
    if q0_count >= 4.0:
        priority += 1
    return int(np.clip(priority, 0, N_QUEUES - 1))


def _pretrain_lrla(
    lrla: SoftmaxPolicy,
    teacher: AutoTeacher,
    workload: FlowSizeDistribution,
    load: float,
    window_s: float,
    rng: np.random.Generator,
    windows: int = 10,
    epochs: int = 600,
) -> None:
    """Behavior-clone lRLA onto the SJF rule over simulated states."""
    states: List[np.ndarray] = []
    for _ in range(windows):
        outcome = _run_window(
            teacher, workload, MLFQConfig(), load, window_s, rng,
            greedy=False,
        )
        states.extend(d[0] for d in outcome.decisions)
    if not states:
        return
    feats = np.asarray(states)
    labels = np.asarray([sjf_priority(s) for s in feats], dtype=int)
    norm = lrla_normalize(feats)
    opt = Adam(lr=3e-3)
    ones = np.ones(len(labels))
    for _ in range(epochs):
        # advantage == 1 turns the policy-gradient step into plain
        # cross-entropy on the labels.
        lrla.policy_gradient_step(norm, labels, ones, opt, entropy_coef=0.0)


def train_auto(
    workload: FlowSizeDistribution = WEB_SEARCH,
    episodes: int = 120,
    load: float = 0.7,
    window_s: float = 1.5,
    capacity_bps: float = 1e9,
    seed: SeedLike = 0,
    use_cache: bool = True,
) -> AutoTeacher:
    """Train (or load) the AuTO agent pair.

    Each episode simulates one window: sRLA picks thresholds from the
    previous window's short-flow statistics, lRLA schedules the window's
    long flows, and both receive REINFORCE updates.
    """
    recipe = {
        "workload": workload.name,
        "episodes": episodes,
        "load": load,
        "window": window_s,
        "capacity": capacity_bps,
        "seed": int(seed) if isinstance(seed, int) else str(seed),
    }
    key = recipe_key("auto", recipe)
    lrla = SoftmaxPolicy(LRLA_STATE_DIM, N_QUEUES, hidden=(64, 32), seed=as_rng(seed))
    srla = GaussianPolicy(
        SRLA_STATE_DIM, SRLA_ACTION_DIM, SRLA_LOW, SRLA_HIGH,
        hidden=(32, 16), seed=as_rng(seed),
    )
    teacher = AutoTeacher(lrla=lrla, srla=srla, capacity_bps=capacity_bps)

    if use_cache:
        cached = load_weights(key)
        if cached is not None:
            n_l = len(lrla.net.params())
            lrla.net.set_weights(cached[:n_l])
            srla.net.set_weights(cached[n_l:-1])
            srla.log_std[...] = cached[-1]
            return teacher

    rng = as_rng(seed)
    _pretrain_lrla(lrla, teacher, workload, load, window_s, rng)
    lrla_opt = Adam(lr=1e-4)
    srla_opt = Adam(lr=3e-3)
    reward_baseline = None
    srla_baseline = None
    state = srla_state([], load, capacity_bps)
    for _ in range(episodes):
        action = srla.act(state, rng)
        mlfq = MLFQConfig.from_log2(action)
        outcome = _run_window(
            teacher, workload, mlfq, load, window_s, rng, greedy=False
        )
        # --- lRLA update (per-decision credit) -------------------------
        if outcome.decisions:
            feats = lrla_normalize(np.asarray([d[0] for d in outcome.decisions]))
            acts = np.asarray([d[1] for d in outcome.decisions], dtype=int)
            rewards = np.asarray([d[2] for d in outcome.decisions])
            if reward_baseline is None:
                reward_baseline = rewards.mean()
            reward_baseline = 0.9 * reward_baseline + 0.1 * rewards.mean()
            adv = rewards - reward_baseline
            if adv.std() > 1e-8:
                adv = adv / adv.std()
            lrla.policy_gradient_step(feats, acts, adv, lrla_opt)
        # --- sRLA update (windowed bandit credit) -----------------------
        srla_reward = -np.log10(max(outcome.mean_short_slowdown, 1.0))
        if srla_baseline is None:
            srla_baseline = srla_reward
        srla_baseline = 0.9 * srla_baseline + 0.1 * srla_reward
        srla.policy_gradient_step(
            np.atleast_2d(state),
            np.atleast_2d(action),
            np.asarray([srla_reward - srla_baseline]),
            srla_opt,
        )
        state = srla_state(outcome.short_flows, load, capacity_bps)

    if use_cache:
        save_weights(
            key,
            lrla.net.get_weights() + srla.net.get_weights() + [srla.log_std],
        )
    return teacher


def collect_auto_dataset(
    teacher: AutoTeacher,
    workload: FlowSizeDistribution = WEB_SEARCH,
    windows: int = 20,
    load: float = 0.7,
    window_s: float = 1.5,
    seed: SeedLike = 1,
):
    """Collect (state, action, reward) decisions and sRLA (state, action)
    pairs under the trained teacher — the distillation dataset."""
    rng = as_rng(seed)
    lrla_states, lrla_actions, lrla_rewards = [], [], []
    srla_states, srla_actions = [], []
    state = srla_state([], load, teacher.capacity_bps)
    for _ in range(windows):
        thresholds = teacher.srla.mean_action(np.atleast_2d(state))[0]
        srla_states.append(state)
        srla_actions.append(np.sort(thresholds))
        mlfq = MLFQConfig.from_log2(thresholds)
        outcome = _run_window(
            teacher, workload, mlfq, load, window_s, rng, greedy=True
        )
        for features, action, reward in outcome.decisions:
            lrla_states.append(features)
            lrla_actions.append(action)
            lrla_rewards.append(reward)
        state = srla_state(outcome.short_flows, load, teacher.capacity_bps)
    return (
        np.asarray(lrla_states),
        np.asarray(lrla_actions, dtype=int),
        np.asarray(lrla_rewards),
        np.asarray(srla_states),
        np.asarray(srla_actions),
    )
