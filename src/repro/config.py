"""Global configuration and paper default hyperparameters (Table 4).

The paper reports one set of Metis hyperparameters per interpreted system
(Appendix C, Table 4).  They are collected here so experiments, examples,
and benchmarks all draw from a single source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default number of decision-tree leaf nodes for Metis+Pensieve (Table 4).
PENSIEVE_LEAF_NODES = 200

#: Default number of decision-tree leaf nodes for Metis+AuTO lRLA (Table 4).
AUTO_LRLA_LEAF_NODES = 2000

#: Default number of decision-tree leaf nodes for Metis+AuTO sRLA (Table 4).
AUTO_SRLA_LEAF_NODES = 2000

#: Default conciseness weight lambda_1 in Eq. 4 for RouteNet* (Table 4).
ROUTENET_LAMBDA1 = 0.25

#: Default determinism weight lambda_2 in Eq. 4 for RouteNet* (Table 4).
ROUTENET_LAMBDA2 = 1.0

#: Global seed used by experiments unless a caller overrides it.
DEFAULT_SEED = 20200810  # SIGCOMM '20 opening day.


@dataclass(frozen=True)
class MetisConfig:
    """Bundle of Metis hyperparameters for one interpreted system.

    Attributes:
        leaf_nodes: maximum number of leaves of the distilled decision tree
            (local systems).
        lambda1: conciseness weight on ``||W||`` (global systems, Eq. 7).
        lambda2: determinism weight on ``H(W)`` (global systems, Eq. 8).
        dagger_iterations: teacher-student relabeling rounds (Step 1, §3.2).
        resample: whether to apply advantage resampling (Step 2, §3.2).
        splitter: CART split-search engine — ``"presorted"`` (exact,
            argsort-once; the default), ``"legacy"`` (exact, per-node
            re-sorting; the seed algorithm kept as the equivalence
            oracle), or ``"hist"`` (quantile-binned, approximate; the
            fast choice for very large DAgger datasets).
        hist_bins: bin budget per feature for the ``"hist"`` splitter.
    """

    leaf_nodes: int = PENSIEVE_LEAF_NODES
    lambda1: float = ROUTENET_LAMBDA1
    lambda2: float = ROUTENET_LAMBDA2
    dagger_iterations: int = 4
    resample: bool = True
    splitter: str = "presorted"
    hist_bins: int = 256


#: Table 4 presets, keyed by the system name used throughout the paper.
TABLE4 = {
    "pensieve": MetisConfig(leaf_nodes=PENSIEVE_LEAF_NODES),
    "auto-lrla": MetisConfig(leaf_nodes=AUTO_LRLA_LEAF_NODES),
    "auto-srla": MetisConfig(leaf_nodes=AUTO_SRLA_LEAF_NODES),
    "routenet": MetisConfig(
        lambda1=ROUTENET_LAMBDA1, lambda2=ROUTENET_LAMBDA2
    ),
}
