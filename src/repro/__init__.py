"""Metis reproduction: interpreting deep-learning-based networking systems.

This package reproduces the full system of *Interpreting Deep
Learning-Based Networking Systems* (SIGCOMM 2020):

* ``repro.nn`` — numpy neural-network substrate (the teachers' backend).
* ``repro.envs`` — ABR video streaming, datacenter flow scheduling, and
  SDN routing environments.
* ``repro.teachers`` — the DL systems Metis interprets: Pensieve, AuTO,
  RouteNet*.
* ``repro.core`` — Metis itself: decision-tree distillation (§3) and
  hypergraph critical-connection search (§4), plus the LIME/LEMNA
  interpretation baselines.
* ``repro.deploy`` — deployment cost models (§6.4).
* ``repro.experiments`` — one harness per paper table/figure.
"""

__version__ = "1.0.0"

from repro.config import MetisConfig, TABLE4

__all__ = ["MetisConfig", "TABLE4", "__version__"]
