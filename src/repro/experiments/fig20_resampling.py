"""Fig. 20 (Appendix A): effect of the Eq. 1 advantage resampling.

The paper reports resampling improving QoE on 73% of traces (median
+1.5%).  We measure the same per-trace comparison between trees distilled
with and without the resampling step.  See EXPERIMENTS.md for the
substrate caveat: our Q comes from post-hoc fitted evaluation rather than
the RL training itself, which weakens the resampling signal.
"""

from __future__ import annotations

import numpy as np

from repro.config import MetisConfig
from repro.core.distill import distill_from_env
from repro.experiments.common import (
    ExperimentResult,
    evaluate_abr_policy,
    pensieve_lab,
)
from repro.utils.stats import empirical_cdf
from repro.utils.tables import ResultTable


def run(fast: bool = False) -> ExperimentResult:
    lab = pensieve_lab("hsdpa", fast)
    env, teacher = lab["env"], lab["teacher"]
    iterations = 3 if fast else 6
    episodes = 12 if fast else 30

    with_rs = distill_from_env(
        env, teacher,
        MetisConfig(leaf_nodes=200, dagger_iterations=iterations,
                    resample=True),
        episodes_per_iteration=episodes, seed=3,
    )
    without_rs = distill_from_env(
        env, teacher,
        MetisConfig(leaf_nodes=200, dagger_iterations=iterations,
                    resample=False),
        episodes_per_iteration=episodes, seed=3,
    )
    traces = env.traces[: (12 if fast else 40)]
    q_with = evaluate_abr_policy(with_rs, env, traces)
    q_without = evaluate_abr_policy(without_rs, env, traces)
    delta_pct = (q_with - q_without) / np.maximum(np.abs(q_without), 1e-9)

    cdf_x, cdf_y = empirical_cdf(delta_pct * 100.0)
    table = ResultTable(
        "QoE improvement from resampling, per trace (Fig. 20)",
        ["percentile", "improvement %"],
    )
    for q in (10, 25, 50, 75, 90):
        table.add_row([f"p{q}", float(np.percentile(delta_pct * 100.0, q))])

    return ExperimentResult(
        experiment="fig20",
        title="Per-trace effect of advantage resampling",
        tables=[table],
        metrics={
            "improved_fraction": float((delta_pct > 0).mean()),
            "median_improvement_pct": float(
                np.median(delta_pct) * 100.0
            ),
            "mean_qoe_with": float(q_with.mean()),
            "mean_qoe_without": float(q_without.mean()),
        },
        raw={"delta_pct": delta_pct, "cdf": (cdf_x, cdf_y)},
    )


if __name__ == "__main__":
    print(run().render())
