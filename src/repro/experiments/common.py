"""Shared experiment infrastructure: cached labs and result containers.

Experiments share expensive artifacts (trained teachers, trace sets,
distilled trees) through process-level caches so the whole suite runs in
minutes; the underlying weight caches on disk make repeated runs faster
still.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Dict, List

import numpy as np

from repro.config import MetisConfig
from repro.utils.tables import ResultTable


@dataclass
class ExperimentResult:
    """Structured outcome of one experiment harness.

    Attributes:
        experiment: registry id (e.g. "fig15").
        title: the paper artifact reproduced.
        tables: printable result tables (the paper's rows/series).
        metrics: headline scalars asserted by the benchmarks.
        raw: any extra arrays/series for downstream analysis.
    """

    experiment: str
    title: str
    tables: List[ResultTable] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)
    raw: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        lines = [f"== {self.experiment}: {self.title} =="]
        for table in self.tables:
            lines.append(table.render())
            lines.append("")
        if self.metrics:
            lines.append("headline metrics:")
            for key, value in sorted(self.metrics.items()):
                lines.append(f"  {key} = {value:.4g}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Pensieve lab
# ----------------------------------------------------------------------
@lru_cache(maxsize=4)
def pensieve_lab(trace_kind: str = "hsdpa", fast: bool = False):
    """Trained Pensieve teacher + env + distilled tree for ``trace_kind``.

    Returns a dict with keys: env, teacher, student, config.
    """
    from repro.core.distill import distill_from_env
    from repro.teachers.pensieve import default_abr_env, train_pensieve

    # The env and teacher are identical in fast and full mode so the two
    # share one disk-cached training run; "fast" only trims the
    # distillation effort and downstream evaluation sizes.
    env = default_abr_env(trace_kind=trace_kind, n_traces=60)
    teacher = train_pensieve(env, episodes=3000, seed=0)
    teacher.fit_q(env, episodes=8 if fast else 16, seed=5)
    config = MetisConfig(
        leaf_nodes=200, dagger_iterations=4 if fast else 6, resample=False
    )
    student = distill_from_env(
        env, teacher, config,
        episodes_per_iteration=15 if fast else 30, seed=3,
    )
    return {"env": env, "teacher": teacher, "student": student,
            "config": config}


# ----------------------------------------------------------------------
# AuTO lab
# ----------------------------------------------------------------------
@lru_cache(maxsize=4)
def auto_lab(workload: str = "websearch", fast: bool = False):
    """Trained AuTO pair + distilled trees + recorded decision datasets."""
    from repro.core.distill import (
        DistillDataset,
        distill_from_dataset,
        distill_regressor,
    )
    from repro.envs.flows.workloads import WORKLOADS
    from repro.teachers.auto import collect_auto_dataset, train_auto

    wl = WORKLOADS[workload]
    teacher = train_auto(
        workload=wl, episodes=60 if fast else 150, load=0.75, seed=0
    )
    ls, la, lr, ss, sa = collect_auto_dataset(
        teacher, workload=wl, windows=10 if fast else 60, load=0.75, seed=1
    )
    lrla_dataset = DistillDataset(states=ls, actions=la)
    lrla_tree = distill_from_dataset(
        lrla_dataset, leaf_nodes=2000, n_classes=teacher.lrla.n_actions
    )
    srla_tree = distill_regressor(ss, sa, leaf_nodes=2000)
    return {
        "teacher": teacher,
        "workload": wl,
        "lrla_dataset": lrla_dataset,
        "lrla_rewards": lr,
        "srla_states": ss,
        "srla_actions": sa,
        "lrla_tree": lrla_tree,
        "srla_tree": srla_tree,
    }


# ----------------------------------------------------------------------
# Routing lab
# ----------------------------------------------------------------------
@lru_cache(maxsize=2)
def routing_lab(fast: bool = False):
    """NSFNet + traffic samples + trained RouteNet* + one routing/mask."""
    from repro.envs.routing import gravity_demands, nsfnet
    from repro.teachers.routenet import RouteNetStar, train_routenet

    topology = nsfnet()
    count = 20 if fast else 50
    traffics = gravity_demands(
        topology, utilization=0.5, seed=42, count=count
    )
    net = train_routenet(
        topology, traffics[:10], epochs=1000 if fast else 2000, seed=0
    )
    star = RouteNetStar(topology, net, temperature=0.6)
    return {"topology": topology, "traffics": traffics, "net": net,
            "star": star}


def mask_search_for(
    star, routing, traffic,
    output_kind: str = "latency",
    steps: int = 300,
    seed: int = 1,
):
    """One critical-connection search with the canonical settings.

    The latency (MSE) output uses lambda scaled down 5x relative to the
    Table-4 values because its divergence magnitude is ~5x the KL one
    (see RoutingMaskedSystem docs).
    """
    import dataclasses

    from repro.core.hypergraph import (
        CriticalConnectionSearch,
        RoutingMaskedSystem,
    )

    if output_kind == "decisions":
        # The KL mode needs near-deterministic decision distributions for
        # its divergence to outweigh the Table-4 lambdas; the softer
        # temperature used elsewhere belongs to the latency mode.
        star = dataclasses.replace(star, temperature=0.1)
    system = RoutingMaskedSystem(
        star, routing, traffic, output_kind=output_kind
    )
    if output_kind == "latency":
        search = CriticalConnectionSearch(
            lambda1=0.05, lambda2=0.2, steps=steps, lr=0.05
        )
    else:
        search = CriticalConnectionSearch(
            lambda1=0.25, lambda2=1.0, steps=steps, lr=0.05
        )
    return system, search.run(system, seed=seed)


def evaluate_abr_policy(policy, env, traces, rng_seed: int = 1) -> np.ndarray:
    """Per-trace mean QoE of an ABR policy."""
    from repro.envs.abr.baselines import run_policy

    return np.asarray([
        run_policy(policy, env, trace=tr, rng=rng_seed).qoe_mean
        for tr in traces
    ])
