"""Figs. 29-30 (Appendix F.2): lambda sensitivity of the mask search.

Raising ``lambda1`` suppresses mask mass (the CDF shifts up / ||W||
falls); raising ``lambda2`` polarizes the masks (fewer median values /
H(W) falls).  Both knobs respond monotonically, which is what lets
operators tune how many critical connections they see.
"""

from __future__ import annotations

import numpy as np

from repro.core.hypergraph import (
    CriticalConnectionSearch,
    RoutingMaskedSystem,
)
from repro.experiments.common import ExperimentResult, routing_lab
from repro.utils.tables import ResultTable

LAMBDA1_SWEEP_FULL = (0.01, 0.05, 0.1, 0.2)
LAMBDA2_SWEEP_FULL = (0.05, 0.2, 0.5, 1.0)
LAMBDA1_SWEEP_FAST = (0.01, 0.1)
LAMBDA2_SWEEP_FAST = (0.05, 0.5)


def run(fast: bool = False) -> ExperimentResult:
    lab = routing_lab(fast)
    star = lab["star"]
    traffic = lab["traffics"][8]
    routing = star.optimize(traffic, sweeps=2, seed=0)
    system = RoutingMaskedSystem(
        star, routing, traffic, output_kind="latency"
    )
    steps = 150 if fast else 300
    support_size = int(system.hypergraph.incidence.sum())

    l1_sweep = LAMBDA1_SWEEP_FAST if fast else LAMBDA1_SWEEP_FULL
    l2_sweep = LAMBDA2_SWEEP_FAST if fast else LAMBDA2_SWEEP_FULL

    t1 = ResultTable(
        "Varying lambda1, lambda2 fixed at 0.2 (Figs. 29a/30)",
        ["lambda1", "||W||/||I||", "high-mask fraction", "H(W)"],
    )
    scales = []
    for l1 in l1_sweep:
        result = CriticalConnectionSearch(
            lambda1=l1, lambda2=0.2, steps=steps, lr=0.05
        ).run(system, seed=1)
        values = result.mask_values()
        scale = result.l1 / support_size
        scales.append(scale)
        t1.add_row([l1, scale, float((values > 0.8).mean()), result.entropy])

    t2 = ResultTable(
        "Varying lambda2, lambda1 fixed at 0.05 (Figs. 29b/30)",
        ["lambda2", "median-value fraction", "H(W)"],
    )
    entropies = []
    for l2 in l2_sweep:
        result = CriticalConnectionSearch(
            lambda1=0.05, lambda2=l2, steps=steps, lr=0.05
        ).run(system, seed=1)
        values = result.mask_values()
        mid = float(((values >= 0.2) & (values <= 0.8)).mean())
        entropies.append(result.entropy)
        t2.add_row([l2, mid, result.entropy])

    return ExperimentResult(
        experiment="fig29",
        title="Hyperparameter response of the mask search",
        tables=[t1, t2],
        metrics={
            # ||W|| should shrink as lambda1 grows.
            "scale_monotone_drop": float(scales[0] - scales[-1]),
            # H(W) should shrink as lambda2 grows.
            "entropy_monotone_drop": float(entropies[0] - entropies[-1]),
        },
    )


if __name__ == "__main__":
    print(run().render())
