"""Fig. 17 (§6.4): median-flow FCT gains + client resource consumption.

(a) With its short decision latency, the tree can schedule *median* flows
centrally (AuTO cannot), improving their FCT.  (b) Shipping the tree to
video clients costs ~KBs of page weight and memory, versus ~MBs for the
tf.js DNN bundle.
"""

from __future__ import annotations

import numpy as np

from repro.deploy.resources import (
    dnn_bundle_bytes,
    dnn_runtime_memory_bytes,
    page_load_seconds,
    tree_bundle_bytes,
    tree_runtime_memory_bytes,
)
from repro.envs.flows import FabricSimulator, MLFQConfig, generate_flows
from repro.experiments.common import (
    ExperimentResult,
    auto_lab,
    pensieve_lab,
)
from repro.utils.tables import ResultTable

#: Median-flow band (bytes): large enough to outlive the tree's decision
#: latency, too short for the DNN's.
MEDIAN_BAND = (100_000.0, 1_000_000.0)


def _run_fct(lab, decision_fn, min_bytes, latency_s, seed, fast):
    teacher = lab["teacher"]
    flows = generate_flows(
        lab["workload"], load=0.75, capacity_bps=teacher.capacity_bps,
        duration_s=1.5 if fast else 4.0, seed=seed,
    )
    sim = FabricSimulator(
        capacity_bps=teacher.capacity_bps,
        mlfq=MLFQConfig(),
        decision_fn=decision_fn,
        decision_latency_s=latency_s,
        decision_min_bytes=min_bytes,
    )
    return sim.run(flows)


def run(fast: bool = False) -> ExperimentResult:
    metrics = {}

    # --- (a) median-flow scheduling -------------------------------------
    fct_table = ResultTable(
        "Median-flow FCT, tree schedules median flows (Fig. 17a)",
        ["workload", "scheduler", "mean FCT (ms)", "p90 FCT (ms)"],
    )
    for workload in ("websearch", "datamining"):
        lab = auto_lab(workload, fast)
        teacher, tree = lab["teacher"], lab["lrla_tree"]
        # AuTO: 62 ms latency, long flows only.
        auto_res = _run_fct(
            lab, teacher.lrla_decision_fn(greedy=True),
            min_bytes=1_000_000.0, latency_s=0.062, seed=77, fast=fast,
        )
        # Metis+AuTO: 2.3 ms latency, median flows included.
        tree_res = _run_fct(
            lab, tree.decision_fn(),
            min_bytes=MEDIAN_BAND[0], latency_s=0.0023, seed=77, fast=fast,
        )
        in_band = lambda f: MEDIAN_BAND[0] <= f.size_bytes < MEDIAN_BAND[1]
        auto_band = auto_res.subset(in_band)
        tree_band = tree_res.subset(in_band)
        for name, res in (("AuTO", auto_band), ("Metis+AuTO", tree_band)):
            fcts = res.fcts()
            if fcts.size == 0:
                fct_table.add_row([workload, name, float("nan"), float("nan")])
                continue
            fct_table.add_row([
                workload, name,
                float(fcts.mean() * 1e3),
                float(np.percentile(fcts, 90) * 1e3),
            ])
        if auto_band.fcts().size and tree_band.fcts().size:
            metrics[f"median_fct_change_pct_{workload}"] = float(
                (tree_band.mean_fct() - auto_band.mean_fct())
                / auto_band.mean_fct() * 100.0
            )

    # --- (b) client resources -------------------------------------------
    lab = pensieve_lab("hsdpa", fast)
    teacher, student = lab["teacher"], lab["student"]
    dnn_bytes = dnn_bundle_bytes(teacher.policy.net)
    tree_bytes = tree_bundle_bytes(student.tree)
    res_table = ResultTable(
        "Client-side resource consumption (Fig. 17b)",
        ["model", "page size (KB)", "load time @1200kbps (s)",
         "runtime memory (KB)"],
    )
    res_table.add_row([
        "Pensieve (tf.js-style bundle)",
        dnn_bytes / 1e3,
        page_load_seconds(dnn_bytes, 1200.0),
        dnn_runtime_memory_bytes(teacher.policy.net) / 1e3,
    ])
    res_table.add_row([
        "Metis+Pensieve (tree)",
        tree_bytes / 1e3,
        page_load_seconds(tree_bytes, 1200.0),
        tree_runtime_memory_bytes(student.tree) / 1e3,
    ])
    metrics["page_size_ratio"] = float(dnn_bytes / tree_bytes)
    metrics["load_time_ratio"] = float(
        page_load_seconds(dnn_bytes, 1200.0)
        / page_load_seconds(tree_bytes, 1200.0)
    )
    metrics["memory_ratio"] = float(
        dnn_runtime_memory_bytes(teacher.policy.net)
        / max(tree_runtime_memory_bytes(student.tree), 1)
    )

    return ExperimentResult(
        experiment="fig17",
        title="Median-flow gains and lightweight client deployment",
        tables=[fct_table, res_table],
        metrics=metrics,
    )


if __name__ == "__main__":
    print(run().render())
