"""Fig. 9: (a) mask values are bimodal; (b) per-link mask sums track
link traffic.

The paper runs 50 mask experiments, plots the pooled CDF (few median
values) and correlates ``sum_e W_ve`` with link traffic (r = 0.81).
"""

from __future__ import annotations

import numpy as np

from repro.envs.routing.delay import link_loads
from repro.experiments.common import (
    ExperimentResult,
    mask_search_for,
    routing_lab,
)
from repro.utils.stats import pearson_correlation
from repro.utils.tables import ResultTable


def run(fast: bool = False) -> ExperimentResult:
    lab = routing_lab(fast)
    topology, star = lab["topology"], lab["star"]
    samples = lab["traffics"][10:14] if fast else lab["traffics"][10:20]

    all_values = []
    correlations = []
    for traffic in samples:
        routing = star.optimize(traffic, sweeps=2, seed=0)
        _, mask = mask_search_for(
            star, routing, traffic, output_kind="latency",
            steps=150 if fast else 300,
        )
        all_values.append(mask.mask_values())
        correlations.append(
            pearson_correlation(
                mask.vertex_mask_sums(),
                link_loads(topology, routing, traffic),
            )
        )
    values = np.concatenate(all_values)

    dist = ResultTable(
        "Mask value distribution (Fig. 9a)", ["bucket", "fraction"]
    )
    lo = float((values < 0.2).mean())
    mid = float(((values >= 0.2) & (values <= 0.8)).mean())
    hi = float((values > 0.8).mean())
    dist.add_row(["W < 0.2 (suppressed)", lo])
    dist.add_row(["0.2 <= W <= 0.8 (median values)", mid])
    dist.add_row(["W > 0.8 (critical)", hi])

    corr = ResultTable(
        "Mask-sum vs link-traffic correlation (Fig. 9b)",
        ["sample", "pearson r"],
    )
    for i, r in enumerate(correlations):
        corr.add_row([i, r])
    corr.add_row(["mean", float(np.mean(correlations))])

    return ExperimentResult(
        experiment="fig9",
        title="Mask distribution is bimodal; sums correlate with traffic",
        tables=[dist, corr],
        metrics={
            "median_value_fraction": mid,
            "mean_correlation": float(np.mean(correlations)),
            "min_correlation": float(np.min(correlations)),
        },
        raw={"values": values, "correlations": correlations},
    )


if __name__ == "__main__":
    print(run().render())
