"""Table 3 + Fig. 8: top-5 mask values of Metis+RouteNet* and why.

Each surviving connection is classified the way the paper does: the
chosen path was either *shorter* than its alternatives at that divergence
point, or the alternative was more *congested*.
"""

from __future__ import annotations

import numpy as np

from repro.envs.routing.delay import link_loads
from repro.envs.routing.topology import Topology
from repro.experiments.common import (
    ExperimentResult,
    mask_search_for,
    routing_lab,
)
from repro.utils.tables import ResultTable


def _classify(topology, routing, traffic, pair, link) -> str:
    """Shorter-path vs less-congested interpretation of one connection."""
    p0 = routing.paths[pair]
    alternatives = [
        c for c in topology.candidate_paths(*pair) if c != p0
    ]
    if any(len(c) > len(p0) for c in alternatives):
        return "shorter"
    loads = link_loads(topology, routing, traffic)
    caps = topology.capacity_vector()
    util = loads / caps
    own = util[topology.link_index(link)]
    alt_utils = []
    for cand in alternatives:
        for alt_link in Topology.path_links(cand):
            if alt_link not in Topology.path_links(p0):
                alt_utils.append(util[topology.link_index(alt_link)])
    if alt_utils and max(alt_utils) > own:
        return "less congested"
    return "preferred"


def run(fast: bool = False) -> ExperimentResult:
    lab = routing_lab(fast)
    topology, star = lab["topology"], lab["star"]
    traffic = lab["traffics"][12]
    routing = star.optimize(traffic, sweeps=2, seed=0)
    system, mask = mask_search_for(
        star, routing, traffic, output_kind="decisions",
        steps=150 if fast else 300,
    )

    pairs = routing.pairs()
    table = ResultTable(
        "Top-5 mask values (Table 3)",
        ["#", "routing path", "link", "mask", "interpretation"],
    )
    tops = mask.top_connections(5)
    kinds = []
    for rank, (label, value, e, v) in enumerate(tops, start=1):
        pair = pairs[e]
        link = topology.links[v]
        kind = _classify(topology, routing, traffic, pair, link)
        kinds.append(kind)
        path_str, link_str = label.split(" | ")
        table.add_row([rank, path_str, link_str, value, kind])

    values = mask.mask_values()
    result = ExperimentResult(
        experiment="table3",
        title="Top mask-value interpretations for RouteNet*",
        tables=[table],
        metrics={
            "top5_min_mask": float(min(v for _, v, _, _ in tops)),
            "interpretable_fraction": float(
                sum(k in ("shorter", "less congested") for k in kinds)
                / len(kinds)
            ),
            "median_mask": float(np.median(values)),
        },
        raw={"mask_result": mask, "routing": routing, "traffic": traffic},
    )
    return result


if __name__ == "__main__":
    print(run().render())
