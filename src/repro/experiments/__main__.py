"""CLI: ``python -m repro.experiments <id> [--fast]`` or ``all``."""

from __future__ import annotations

import argparse
import sys

from repro.experiments import REGISTRY, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the paper-reproduction experiments."
    )
    parser.add_argument(
        "experiment",
        help=f"experiment id ({', '.join(sorted(REGISTRY))}) or 'all'",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="reduced workloads (same code paths)",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="also measure against a live PolicyServer "
             "(experiments that support it, e.g. fig16)",
    )
    parser.add_argument(
        "--cluster", action="store_true",
        help="also measure against a sharded multi-process "
             "ShardedPolicyService (experiments that support it)",
    )
    args = parser.parse_args(argv)
    names = sorted(REGISTRY) if args.experiment == "all" else [args.experiment]
    for name in names:
        result = run_experiment(
            name, fast=args.fast, serve=args.serve, cluster=args.cluster
        )
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
