"""Fig. 15 (§6.4): performance maintenance after conversion.

The decision tree keeps the teacher's application-level performance:
QoE within ~2% for Pensieve (both trace families), FCT within ~2% for
AuTO (both workloads) — while the DNN's advantage over the heuristics is
much larger than the conversion loss.
"""

from __future__ import annotations

import numpy as np

from repro.envs.abr import (
    Bola,
    BufferBased,
    Festive,
    RateBased,
    RobustMPC,
)
from repro.envs.flows import FabricSimulator, MLFQConfig, generate_flows
from repro.experiments.common import (
    ExperimentResult,
    auto_lab,
    evaluate_abr_policy,
    pensieve_lab,
)
from repro.utils.tables import ResultTable


def _auto_fct(lab, decision_fn, seed: int, fast: bool) -> float:
    teacher = lab["teacher"]
    flows = generate_flows(
        lab["workload"], load=0.75, capacity_bps=teacher.capacity_bps,
        duration_s=1.0 if fast else 3.0, seed=seed,
    )
    sim = FabricSimulator(
        capacity_bps=teacher.capacity_bps,
        mlfq=MLFQConfig(),
        decision_fn=decision_fn,
        decision_min_bytes=1_000_000.0,
    )
    return sim.run(flows).mean_fct()


def run(fast: bool = False) -> ExperimentResult:
    tables = []
    metrics = {}

    # --- Pensieve side (Fig. 15a) --------------------------------------
    for kind in ("hsdpa", "fcc"):
        lab = pensieve_lab(kind, fast)
        env, teacher, student = lab["env"], lab["teacher"], lab["student"]
        traces = env.traces[: (10 if fast else 30)]
        table = ResultTable(
            f"Mean QoE, {kind.upper()} traces (Fig. 15a)",
            ["policy", "mean QoE"],
        )
        results = {}
        for name, policy in (
            ("BB", BufferBased()), ("RB", RateBased()),
            ("FESTIVE", Festive()), ("BOLA", Bola()),
            ("rMPC", RobustMPC()),
            ("Metis+Pensieve", student), ("Pensieve", teacher),
        ):
            q = evaluate_abr_policy(policy, env, traces).mean()
            results[name] = float(q)
            table.add_row([name, float(q)])
        tables.append(table)
        deg = (results["Pensieve"] - results["Metis+Pensieve"]) / abs(
            results["Pensieve"]
        )
        metrics[f"pensieve_degradation_pct_{kind}"] = float(deg * 100.0)

    # --- AuTO side (Fig. 15b) -------------------------------------------
    for workload in ("websearch", "datamining"):
        lab = auto_lab(workload, fast)
        teacher, tree = lab["teacher"], lab["lrla_tree"]
        fct_dnn = np.mean([
            _auto_fct(lab, teacher.lrla_decision_fn(greedy=True), s, fast)
            for s in (101, 102)
        ])
        fct_tree = np.mean([
            _auto_fct(lab, tree.decision_fn(), s, fast)
            for s in (101, 102)
        ])
        table = ResultTable(
            f"Mean FCT, {workload} (Fig. 15b)", ["scheduler", "mean FCT (ms)"]
        )
        table.add_row(["AuTO", float(fct_dnn * 1000)])
        table.add_row(["Metis+AuTO", float(fct_tree * 1000)])
        tables.append(table)
        metrics[f"auto_degradation_pct_{workload}"] = float(
            (fct_tree - fct_dnn) / fct_dnn * 100.0
        )

    return ExperimentResult(
        experiment="fig15",
        title="Conversion keeps application performance",
        tables=tables,
        metrics=metrics,
    )


if __name__ == "__main__":
    print(run().render())
