"""Fig. 27 (Appendix E): Metis vs LIME vs LEMNA fidelity.

Accuracy (agreeing with the teacher's action) and RMSE (against the
teacher's output vector) over a sweep of k-means cluster counts; Metis'
tree does not depend on the clustering and appears as a constant line
that dominates both baselines.
"""

from __future__ import annotations

import numpy as np

from repro.core.baselines import LemnaInterpreter, LimeInterpreter
from repro.core.distill import (
    distill_from_dataset,
    distill_regressor,
    fidelity_accuracy,
    fidelity_rmse,
)
from repro.core.distill.viper import collect_teacher_dataset
from repro.experiments.common import (
    ExperimentResult,
    auto_lab,
    pensieve_lab,
)
from repro.utils.tables import ResultTable

CLUSTER_SWEEP_FULL = (1, 5, 10, 20, 35, 50)
CLUSTER_SWEEP_FAST = (1, 10, 30)


def _split(states, frac=0.7):
    n = int(states.shape[0] * frac)
    return slice(0, n), slice(n, None)


def _agent_pensieve(fast):
    lab = pensieve_lab("hsdpa", fast)
    env, teacher = lab["env"], lab["teacher"]
    data = collect_teacher_dataset(env, teacher, 8 if fast else 20, rng=31)
    outputs = teacher.action_probabilities(data.states)
    return data.states, data.actions, outputs, 6, "Pensieve"


def _agent_lrla(fast):
    lab = auto_lab("websearch", fast)
    states = lab["lrla_dataset"].states
    actions = lab["lrla_dataset"].actions
    outputs = lab["teacher"].lrla_probabilities(states)
    return states, actions, outputs, 5, "AuTO-lRLA"


def _agent_srla(fast):
    lab = auto_lab("websearch", fast)
    states = lab["srla_states"]
    targets = lab["srla_actions"]
    return states, None, targets, None, "AuTO-sRLA"


def run(fast: bool = False) -> ExperimentResult:
    sweep = CLUSTER_SWEEP_FAST if fast else CLUSTER_SWEEP_FULL
    tables = []
    metrics = {}
    for build in (_agent_pensieve, _agent_lrla, _agent_srla):
        states, actions, outputs, n_classes, name = build(fast)
        train, test = _split(states)
        is_classifier = actions is not None
        table = ResultTable(
            f"Fidelity on {name} (Fig. 27)",
            ["method", "clusters", "accuracy", "rmse"],
        )
        # Metis tree, fit on the same train split the baselines see
        # (constant in k).
        if is_classifier:
            from repro.core.distill import DistillDataset

            tree = distill_from_dataset(
                DistillDataset(states=states[train],
                               actions=actions[train]),
                leaf_nodes=200, n_classes=n_classes,
            )
            tree_acc = fidelity_accuracy(
                actions[test], tree.act_greedy_batch(states[test])
            )
            tree_rmse = fidelity_rmse(
                outputs[test], tree.action_probabilities(states[test])
            )
        else:
            tree = distill_regressor(
                states[train], outputs[train], leaf_nodes=200
            )
            tree_acc = float("nan")
            tree_rmse = fidelity_rmse(
                outputs[test], tree.predict(states[test])
            )
        table.add_row(["Metis", "-", tree_acc, tree_rmse])
        metrics[f"{name}_metis_rmse"] = tree_rmse
        if is_classifier:
            metrics[f"{name}_metis_acc"] = tree_acc

        best = {"LIME": (0.0, np.inf), "LEMNA": (0.0, np.inf)}
        for k in sweep:
            for label, interp in (
                ("LIME", LimeInterpreter(n_clusters=k)),
                ("LEMNA", LemnaInterpreter(n_clusters=k, components=3)),
            ):
                interp.fit(states[train], outputs[train], seed=k)
                pred_out = interp.predict_outputs(states[test])
                rmse = fidelity_rmse(outputs[test], pred_out)
                acc = (
                    fidelity_accuracy(
                        actions[test], np.argmax(pred_out, axis=1)
                    )
                    if is_classifier else float("nan")
                )
                table.add_row([label, k, acc, rmse])
                prev_acc, prev_rmse = best[label]
                best[label] = (
                    max(prev_acc, acc if is_classifier else 0.0),
                    min(prev_rmse, rmse),
                )
        for label, (acc, rmse) in best.items():
            metrics[f"{name}_{label.lower()}_best_rmse"] = float(rmse)
            if is_classifier:
                metrics[f"{name}_{label.lower()}_best_acc"] = float(acc)
        tables.append(table)

    return ExperimentResult(
        experiment="fig27",
        title="Interpretation fidelity: Metis vs LIME vs LEMNA",
        tables=tables,
        metrics=metrics,
    )


if __name__ == "__main__":
    print(run().render())
