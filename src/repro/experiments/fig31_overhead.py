"""Fig. 31 + Appendix G: offline computation overhead of Metis.

Tree extraction stays well under a minute across leaf budgets, and one
mask search takes seconds — negligible next to hours of DNN training.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.distill import DistillDataset, distill_from_dataset
from repro.core.distill.viper import collect_teacher_dataset
from repro.experiments.common import (
    ExperimentResult,
    mask_search_for,
    pensieve_lab,
    routing_lab,
)
from repro.utils.tables import ResultTable

LEAVES_FULL = (10, 100, 1000, 5000)
LEAVES_FAST = (10, 200)


def run(fast: bool = False) -> ExperimentResult:
    lab = pensieve_lab("hsdpa", fast)
    env, teacher = lab["env"], lab["teacher"]
    data = collect_teacher_dataset(env, teacher, 8 if fast else 24, rng=51)

    table = ResultTable(
        "Tree extraction wall-clock (Fig. 31)",
        ["leaves", "fit seconds", "resulting leaves"],
    )
    times = []
    for m in (LEAVES_FAST if fast else LEAVES_FULL):
        start = time.perf_counter()
        tree = distill_from_dataset(
            DistillDataset(states=data.states, actions=data.actions),
            leaf_nodes=m, n_classes=env.n_actions,
        )
        elapsed = time.perf_counter() - start
        times.append(elapsed)
        table.add_row([m, elapsed, tree.tree.n_leaves])

    rlab = routing_lab(fast)
    star = rlab["star"]
    traffic = rlab["traffics"][3]
    routing = star.optimize(traffic, sweeps=2, seed=0)
    start = time.perf_counter()
    mask_search_for(
        star, routing, traffic, output_kind="latency",
        steps=100 if fast else 300,
    )
    mask_seconds = time.perf_counter() - start
    mtable = ResultTable(
        "Mask-search wall-clock (Appendix G)", ["what", "seconds"]
    )
    mtable.add_row(["one critical-connection search", mask_seconds])

    return ExperimentResult(
        experiment="fig31",
        title="Offline computation overhead",
        tables=[table, mtable],
        metrics={
            "max_tree_fit_seconds": float(max(times)),
            "mask_search_seconds": float(mask_seconds),
        },
    )


if __name__ == "__main__":
    print(run().render())
