"""Figs. 13/24/25 + Table 5 (§6.3 + Appendix D): fixed-link behaviour.

On a 3000 kbps link, BB/RB/rMPC converge to 2850 kbps, while Pensieve
(and its faithful tree) oscillates between 1850 and 4300 kbps with low
decision confidence, losing QoE to the smoothness penalty.
"""

from __future__ import annotations

import numpy as np

from repro.envs.abr import (
    ABREnv,
    BufferBased,
    RateBased,
    RobustMPC,
    run_policy,
)
from repro.envs.abr.video import Video
from repro.envs.traces import fixed_trace
from repro.experiments.common import ExperimentResult, pensieve_lab
from repro.utils.tables import ResultTable


def _switches(bitrates: np.ndarray) -> int:
    return int(np.sum(bitrates[1:] != bitrates[:-1]))


def _confidence(teacher, states: np.ndarray) -> float:
    """Mean max-probability of the teacher along a run (Fig. 25)."""
    probs = teacher.action_probabilities(states)
    return float(probs.max(axis=1).mean())


def run(fast: bool = False) -> ExperimentResult:
    lab = pensieve_lab("hsdpa", fast)
    teacher, student = lab["teacher"], lab["student"]
    video = Video.synthetic(n_chunks=60 if fast else 250, seed=11)

    tables = []
    metrics = {}
    raw = {}
    for bw, label in ((3000.0, "3000kbps"), (1300.0, "1300kbps")):
        env = ABREnv(video, [fixed_trace(bw)], random_start=False)
        table = ResultTable(
            f"Fixed {label} link (Fig. 13 / Table 5)",
            ["policy", "mean QoE", "switches", "dominant bitrate"],
        )
        runs = {}
        for name, policy in (
            ("BB", BufferBased()),
            ("RB", RateBased()),
            ("rMPC", RobustMPC()),
            ("Metis+Pensieve", student),
            ("Pensieve", teacher),
        ):
            result = run_policy(policy, env, trace=env.traces[0], rng=2)
            runs[name] = result
            values, counts = np.unique(
                result.bitrates_kbps, return_counts=True
            )
            dominant = values[int(np.argmax(counts))]
            table.add_row([
                name,
                result.qoe_mean,
                _switches(result.bitrates_kbps),
                f"{int(dominant)}kbps",
            ])
        tables.append(table)
        raw[label] = runs
        metrics[f"pensieve_switches_{label}"] = float(
            _switches(runs["Pensieve"].bitrates_kbps)
        )
        metrics[f"rmpc_switches_{label}"] = float(
            _switches(runs["rMPC"].bitrates_kbps)
        )
        if label == "3000kbps":
            metrics["teacher_confidence_3000"] = _confidence(
                teacher, runs["Pensieve"].states
            )
            metrics["tree_mimics_teacher"] = float(
                np.mean(
                    runs["Pensieve"].bitrates_kbps
                    == runs["Metis+Pensieve"].bitrates_kbps
                )
            )
    return ExperimentResult(
        experiment="fig13",
        title="Fixed-bandwidth links: oscillation vs convergence",
        tables=tables,
        metrics=metrics,
        raw=raw,
    )


if __name__ == "__main__":
    print(run().render())
