"""Fig. 10/11 (§6.2): the interpretation-guided DNN redesign.

Metis found that Pensieve leans on the last bitrate ``r_t``; wiring
``r_t`` directly to the output layer (Fig. 10b) trains faster and ends at
a higher QoE even though the two structures are equally expressive.
"""

from __future__ import annotations

import numpy as np

from repro.envs.traces import trace_set
from repro.experiments.common import (
    ExperimentResult,
    evaluate_abr_policy,
)
from repro.teachers.pensieve import default_abr_env, train_pensieve
from repro.utils.tables import ResultTable


def run(fast: bool = False) -> ExperimentResult:
    env = default_abr_env(trace_kind="hsdpa", n_traces=30 if fast else 60)
    test_traces = trace_set("hsdpa", 12 if fast else 25, seed=777)
    episodes = 800 if fast else 2400
    seeds = (0,) if fast else (0, 1, 2)

    # Average across training seeds: single RL runs are noisy enough to
    # swamp the structural effect the experiment measures.
    qoe_orig_runs, qoe_mod_runs = [], []
    hist_orig = hist_mod = None
    for seed in seeds:
        original, h_o = train_pensieve(
            env, episodes=episodes, seed=seed, modified=False,
            return_history=True,
        )
        modified, h_m = train_pensieve(
            env, episodes=episodes, seed=seed, modified=True,
            return_history=True,
        )
        if hist_orig is None:
            hist_orig, hist_mod = h_o, h_m
        qoe_orig_runs.append(
            evaluate_abr_policy(original, env, test_traces).mean()
        )
        qoe_mod_runs.append(
            evaluate_abr_policy(modified, env, test_traces).mean()
        )
    qoe_orig = float(np.mean(qoe_orig_runs))
    qoe_mod = float(np.mean(qoe_mod_runs))

    curve = ResultTable(
        "Training return curve (Fig. 11a, episode-window means)",
        ["window", "original", "modified"],
    )
    chunks = 6
    per = max(len(hist_orig) // chunks, 1)
    for i in range(chunks):
        a = np.mean(hist_orig[i * per:(i + 1) * per])
        b = np.mean(hist_mod[i * per:(i + 1) * per])
        curve.add_row([f"{i * per}-{(i + 1) * per}", float(a), float(b)])

    final = ResultTable(
        "Test-set QoE (Fig. 11b)", ["structure", "mean QoE"]
    )
    final.add_row(["original", float(qoe_orig)])
    final.add_row(["modified (r_t near output)", float(qoe_mod)])

    improvement = (qoe_mod - qoe_orig) / abs(qoe_orig) if qoe_orig else 0.0
    return ExperimentResult(
        experiment="fig11",
        title="Interpretation-guided redesign of the Pensieve DNN",
        tables=[curve, final],
        metrics={
            "qoe_original": float(qoe_orig),
            "qoe_modified": float(qoe_mod),
            "improvement_pct": float(improvement * 100.0),
        },
        raw={"history_original": hist_orig, "history_modified": hist_mod},
    )


if __name__ == "__main__":
    print(run().render())
