"""Fig. 12 (§6.3): bitrate-selection frequencies.

The paper's debugging observation: Pensieve (and its faithful tree)
almost never selects the median bitrates 1200/2850 kbps, on real traces
and even on fixed-bandwidth links where a median bitrate is optimal.
"""

from __future__ import annotations

import numpy as np

from repro.envs.abr import (
    ABREnv,
    Bola,
    BufferBased,
    Festive,
    RateBased,
    RobustMPC,
    run_policy,
)
from repro.envs.abr.video import PENSIEVE_BITRATES_KBPS, Video
from repro.envs.traces import fixed_trace
from repro.experiments.common import ExperimentResult, pensieve_lab
from repro.utils.tables import ResultTable

RARE_LEVELS = (2, 4)  # 1200 kbps and 2850 kbps


def _frequencies(policy, env, traces) -> np.ndarray:
    counts = np.zeros(env.n_actions)
    for trace in traces:
        result = run_policy(policy, env, trace=trace, rng=1)
        for a in result.actions:
            counts[a] += 1
    return counts / max(counts.sum(), 1)


def run(fast: bool = False) -> ExperimentResult:
    lab = pensieve_lab("hsdpa", fast)
    env, teacher, student = lab["env"], lab["teacher"], lab["student"]
    traces = env.traces[: (10 if fast else 30)]

    policies = [
        BufferBased(), RateBased(), Festive(), Bola(), RobustMPC(),
        student, teacher,
    ]
    names = ["BB", "RB", "FESTIVE", "BOLA", "rMPC", "Metis+Pensieve",
             "Pensieve"]
    freq_table = ResultTable(
        "Bitrate selection frequency, HSDPA-like traces (Fig. 12a)",
        ["policy"] + [f"{b}k" for b in PENSIEVE_BITRATES_KBPS],
    )
    freqs = {}
    for name, policy in zip(names, policies):
        f = _frequencies(policy, env, traces)
        freqs[name] = f
        freq_table.add_row([name] + [float(v) for v in f])

    # Fixed-bandwidth sweep (Fig. 12c).
    video = Video.synthetic(n_chunks=48 if fast else 100, seed=7)
    sweep = ResultTable(
        "Pensieve on fixed-bandwidth links (Fig. 12c)",
        ["bandwidth"] + [f"{b}k" for b in PENSIEVE_BITRATES_KBPS],
    )
    fixed_freqs = {}
    for bw in (300, 750, 1200, 1850, 2850, 4300):
        fenv = ABREnv(video, [fixed_trace(float(bw * 1.05))],
                      random_start=False)
        f = _frequencies(teacher, fenv, fenv.traces)
        fixed_freqs[bw] = f
        sweep.add_row([f"{bw}kbps"] + [float(v) for v in f])

    rare_teacher = float(sum(freqs["Pensieve"][l] for l in RARE_LEVELS))
    rare_student = float(
        sum(freqs["Metis+Pensieve"][l] for l in RARE_LEVELS)
    )
    mimic_gap = float(
        np.abs(freqs["Pensieve"] - freqs["Metis+Pensieve"]).sum()
    )
    return ExperimentResult(
        experiment="fig12",
        title="Median bitrates are rarely selected by Pensieve",
        tables=[freq_table, sweep],
        metrics={
            "teacher_rare_bitrate_freq": rare_teacher,
            "student_rare_bitrate_freq": rare_student,
            "teacher_student_freq_gap": mimic_gap,
        },
        raw={"frequencies": freqs, "fixed": fixed_freqs},
    )


if __name__ == "__main__":
    print(run().render())
