"""Fig. 7: the top layers of the Metis+Pensieve decision tree.

The paper's headline interpretation: the distilled tree first branches on
the last chunk bitrate ``r_t``, then on buffer/throughput/download-time
variables — capturing known heuristics *and* revealing that ``r_t``
carries outsized information (the §6.2 design insight).
"""

from __future__ import annotations

import numpy as np

from repro.core.tree.export import render_text
from repro.envs.abr.env import FEATURE_NAMES
from repro.experiments.common import ExperimentResult, pensieve_lab
from repro.utils.tables import ResultTable

ACTION_NAMES = ("300kbps", "750kbps", "1200kbps", "1850kbps",
                "2850kbps", "4300kbps")


def run(fast: bool = False) -> ExperimentResult:
    lab = pensieve_lab("hsdpa", fast)
    env, teacher, student = lab["env"], lab["teacher"], lab["student"]

    # States visited by the student (for visit-frequency annotation).
    from repro.core.distill.viper import collect_teacher_dataset

    dataset = collect_teacher_dataset(env, teacher, 8, rng=11)
    text = render_text(
        student.tree,
        feature_names=list(FEATURE_NAMES),
        action_names=list(ACTION_NAMES),
        max_depth=4,
        visit_states=dataset.states,
    )

    # Which features appear in the top 4 layers?
    counts = {}

    def walk(node, depth):
        if node.is_leaf or depth >= 4:
            return
        name = FEATURE_NAMES[node.feature]
        counts[name] = counts.get(name, 0) + 1
        walk(node.left, depth + 1)
        walk(node.right, depth + 1)

    walk(student.tree.root, 0)
    table = ResultTable(
        "Decision variables in the top 4 layers (Fig. 7)",
        ["feature", "splits"],
    )
    for name, count in sorted(counts.items(), key=lambda kv: -kv[1]):
        table.add_row([name, count])

    root_feature = FEATURE_NAMES[student.tree.root.feature]
    result = ExperimentResult(
        experiment="fig7",
        title="Top layers of Metis+Pensieve (decision-tree interpretation)",
        tables=[table],
        metrics={
            "n_top_features": float(len(counts)),
            "root_is_rt": float(root_feature == "r_t"),
            "tree_leaves": float(student.tree.n_leaves),
        },
        raw={"rendered_tree": text, "root_feature": root_feature},
    )
    return result


if __name__ == "__main__":
    r = run()
    print(r.render())
    print()
    print(r.raw["rendered_tree"])
