"""Fig. 16 (§6.4): decision latency and per-flow decision coverage.

Replacing the AuTO DNN with the distilled tree cuts per-decision latency
~27x (62 ms -> 2.3 ms on the paper's testbed), which lets the central
scheduler cover flows that previously finished before their decision
arrived — +33% flows / +46% bytes on the data-mining trace.
"""

from __future__ import annotations

import numpy as np

from repro.deploy.latency import (
    SERVER_DNN,
    SERVER_TREE,
    decision_latency_dnn,
    decision_latency_tree,
    measure_batch_throughput,
    measure_wallclock_latency,
)
from repro.envs.flows import generate_flows
from repro.experiments.common import ExperimentResult, auto_lab
from repro.utils.rng import as_rng
from repro.utils.tables import ResultTable


def _coverage(flows, latency_s: float, capacity_bps: float, min_bytes: float):
    """Fraction of central-eligible flows/bytes still alive at decision
    time (ideal-FCT approximation of lifetime)."""
    eligible = [f for f in flows if f.size_bytes >= min_bytes]
    if not eligible:
        return 0.0, 0.0
    covered = [
        f for f in eligible if f.ideal_fct(capacity_bps) > latency_s
    ]
    flow_cov = len(covered) / len(eligible)
    byte_cov = (
        sum(f.size_bytes for f in covered)
        / sum(f.size_bytes for f in eligible)
    )
    return flow_cov, byte_cov


def _live_serving_table(tree, fast: bool):
    """Serve the distilled lRLA tree live and replay flow traffic at it.

    The measured substrate for the latency story: instead of only the
    modeled ``DeviceProfile`` constants, a real :class:`PolicyServer`
    answers microbatched decision traffic and reports observed tail
    latency and throughput.
    """
    from repro.serve import PolicyArtifact, PolicyServer
    from repro.serve.loadgen import flow_request_states, run_load

    states = flow_request_states(
        duration_s=1.0 if fast else 2.0, seed=9,
        min_rows=128 if fast else 512,
    )
    with PolicyServer(max_batch=64, max_delay_s=1e-3) as server:
        server.publish(
            "auto-lrla", PolicyArtifact.from_tree(tree, name="auto-lrla")
        )
        report = run_load(
            server, "auto-lrla", states,
            n_clients=8, repeats=1 if fast else 2, scenario="flows",
        )
    table = ResultTable(
        "Measured serving latency (live PolicyServer)",
        ["scenario", "p50 (ms)", "p99 (ms)", "throughput (req/s)"],
    )
    table.add_row([
        report.scenario, report.latency_p50_ms, report.latency_p99_ms,
        report.throughput_rps,
    ])
    metrics = {
        "serve_p50_ms": report.latency_p50_ms,
        "serve_p99_ms": report.latency_p99_ms,
        "serve_throughput_rps": report.throughput_rps,
        "serve_errors": float(report.n_errors),
    }
    return table, metrics


def _cluster_serving_table(tree, fast: bool, n_shards: int = 2):
    """Serve the same tree through the sharded multi-process tier.

    Async closed-loop coroutine clients measure per-decision latency;
    the bulk array path measures aggregate throughput — the number that
    scales with shards.
    """
    from repro.deploy.latency import cluster_latency_report
    from repro.serve import PolicyArtifact
    from repro.serve.cluster import ShardedPolicyService
    from repro.serve.loadgen import flow_request_states, run_load_async

    states = flow_request_states(
        duration_s=1.0 if fast else 2.0, seed=9,
        min_rows=128 if fast else 512,
    )
    with ShardedPolicyService(
        n_shards=n_shards, max_batch=128, max_delay_s=1e-3,
        adaptive_delay=True,
    ) as service:
        service.publish(
            "auto-lrla", PolicyArtifact.from_tree(tree, name="auto-lrla")
        )
        service.predict("auto-lrla", states[:64])  # warm-up
        closed = run_load_async(
            service, "auto-lrla", states,
            n_clients=8 if fast else 32, scenario="flows-cluster",
        )
        bulk = run_load_async(
            service, "auto-lrla", states,
            n_clients=4, chunk=128, repeats=2 if fast else 4,
            scenario="flows-cluster-bulk",
        )
        rows = cluster_latency_report(service, "auto-lrla", tree=tree)
    table = ResultTable(
        f"Cluster serving ({n_shards} shards, live ShardedPolicyService)",
        ["mode", "p50 (ms)", "p99 (ms)", "throughput (req/s)"],
    )
    table.add_row([
        "closed-loop", closed.latency_p50_ms, closed.latency_p99_ms,
        closed.throughput_rps,
    ])
    table.add_row([
        "bulk", bulk.latency_p50_ms, bulk.latency_p99_ms,
        bulk.throughput_rps,
    ])
    aggregate = next(
        (r for r in rows if r["source"] == "aggregate-shards"), None
    )
    metrics = {
        "cluster_p50_ms": closed.latency_p50_ms,
        "cluster_p99_ms": closed.latency_p99_ms,
        "cluster_bulk_throughput_rps": bulk.throughput_rps,
        "cluster_errors": float(closed.n_errors + bulk.n_errors),
        "cluster_shards": float(n_shards),
        "cluster_aggregate_shard_rps": (
            float(aggregate["throughput_rps"]) if aggregate else 0.0
        ),
    }
    return table, metrics


def run(
    fast: bool = False, serve: bool = False, cluster: bool = False
) -> ExperimentResult:
    """Reproduce Fig. 16; with ``serve=True`` the latency table is
    additionally measured against a live ``repro.serve`` PolicyServer,
    and with ``cluster=True`` against a sharded multi-process
    ``ShardedPolicyService`` (2 shards)."""
    lab = auto_lab("websearch", fast)
    teacher, tree = lab["teacher"], lab["lrla_tree"]

    # Modeled latency distributions (Fig. 16a).
    rng = as_rng(3)
    n = 100 if fast else 400
    dnn_lat = np.asarray([
        decision_latency_dnn(teacher.lrla.net, SERVER_DNN, rng)
        for _ in range(n)
    ])
    tree_lat = np.asarray([
        decision_latency_tree(tree.tree, SERVER_TREE, rng)
        for _ in range(n)
    ])
    latency = ResultTable(
        "Per-decision latency (Fig. 16a)",
        ["model", "mean (ms)", "p95 (ms)"],
    )
    latency.add_row([
        "AuTO (DNN)", float(dnn_lat.mean() * 1e3),
        float(np.percentile(dnn_lat, 95) * 1e3),
    ])
    latency.add_row([
        "Metis+AuTO (tree)", float(tree_lat.mean() * 1e3),
        float(np.percentile(tree_lat, 95) * 1e3),
    ])
    speedup = float(dnn_lat.mean() / tree_lat.mean())

    # Measured wall-clock of our own implementations (same asymmetry).
    states = lab["lrla_dataset"].states
    measured_dnn = measure_wallclock_latency(
        lambda s: teacher.lrla_greedy(s), states, repeats=100 if fast else 300
    )
    measured_tree = measure_wallclock_latency(
        lambda s: tree.tree.predict_one(s[0]), states,
        repeats=100 if fast else 300,
    )
    # Server-side batching: the flat-array engine answers a whole state
    # matrix per call, so amortized per-decision cost drops far below
    # even the single-decision tree walk.
    tree_batch_rows_s = measure_batch_throughput(
        tree.tree.predict, states, repeats=2 if fast else 3
    )

    # Coverage (Fig. 16b): a lower min size lets the tree reach median
    # flows; AuTO's 62 ms latency cannot.
    coverage = ResultTable(
        "Central-decision coverage (Fig. 16b)",
        ["workload", "model", "flow coverage", "byte coverage"],
    )
    cov_metrics = {}
    min_bytes = 100_000.0
    for workload_name in ("websearch", "datamining"):
        wl_lab = auto_lab(workload_name, fast)
        flows = generate_flows(
            wl_lab["workload"], load=0.75,
            capacity_bps=teacher.capacity_bps,
            duration_s=2.0 if fast else 5.0, seed=55,
        )
        for model, lat in (("AuTO", dnn_lat.mean()),
                           ("Metis+AuTO", tree_lat.mean())):
            fc, bc = _coverage(
                flows, float(lat), teacher.capacity_bps, min_bytes
            )
            coverage.add_row([workload_name, model, fc, bc])
            cov_metrics[f"{workload_name}_{model}_flows"] = fc
            cov_metrics[f"{workload_name}_{model}_bytes"] = bc

    gain = (
        cov_metrics["datamining_Metis+AuTO_flows"]
        - cov_metrics["datamining_AuTO_flows"]
    )
    tables = [latency, coverage]
    metrics = {
        "latency_speedup": speedup,
        "measured_wallclock_speedup": float(measured_dnn / measured_tree),
        "tree_batch_rows_per_s": float(tree_batch_rows_s),
        "dm_flow_coverage_gain": float(gain),
    }
    if serve:
        serve_table, serve_metrics = _live_serving_table(tree.tree, fast)
        tables.append(serve_table)
        metrics.update(serve_metrics)
    if cluster:
        cluster_table, cluster_metrics = _cluster_serving_table(
            tree.tree, fast
        )
        tables.append(cluster_table)
        metrics.update(cluster_metrics)
    return ExperimentResult(
        experiment="fig16",
        title="Decision latency drops ~27x; coverage expands",
        tables=tables,
        metrics=metrics,
        raw={"dnn_latencies": dnn_lat, "tree_latencies": tree_lat},
    )


if __name__ == "__main__":
    print(run().render())
