"""Fig. 14 (§6.3): fixing the missing-bitrate bug by oversampling.

Because the conversion exposes an explicit dataset, the operator can
oversample the teacher's rarely-chosen bitrates (to ~1% frequency) and
retrain only the tree — no DNN retraining — recovering the median
bitrates and nudging QoE above the DNN on part of the distribution.
"""

from __future__ import annotations

import numpy as np

from repro.core.distill import (
    distill_from_dataset,
    oversample_rare_actions,
)
from repro.core.distill.viper import collect_teacher_dataset
from repro.experiments.common import (
    ExperimentResult,
    evaluate_abr_policy,
    pensieve_lab,
)
from repro.utils.stats import percentile
from repro.utils.tables import ResultTable


def run(fast: bool = False) -> ExperimentResult:
    tables = []
    metrics = {}
    raw = {}
    for kind in ("hsdpa", "fcc"):
        lab = pensieve_lab(kind, fast)
        env, teacher = lab["env"], lab["teacher"]
        dataset = collect_teacher_dataset(
            env, teacher, 10 if fast else 25, rng=21
        )
        # Same dataset with and without oversampling — the comparison
        # isolates the §6.3 fix itself.
        student = distill_from_dataset(
            dataset, leaf_nodes=200, n_classes=env.n_actions
        )
        boosted = oversample_rare_actions(
            dataset, target_frequency=0.01, rng=5
        )
        student_o = distill_from_dataset(
            boosted, leaf_nodes=200, n_classes=env.n_actions
        )
        traces = env.traces[: (10 if fast else 30)]
        qoe_teacher = evaluate_abr_policy(teacher, env, traces)
        qoe_plain = evaluate_abr_policy(student, env, traces)
        qoe_boost = evaluate_abr_policy(student_o, env, traces)

        # Normalize by the teacher's mean magnitude (a scalar): per-trace
        # normalization blows up whenever a trace's QoE crosses zero.
        scale = max(abs(qoe_teacher.mean()), 1e-9)
        table = ResultTable(
            f"Normalized QoE, {kind.upper()} traces (Fig. 14)",
            ["policy", "p25", "avg", "p75"],
        )
        for name, q in (
            ("Pensieve", qoe_teacher),
            ("Metis+Pensieve", qoe_plain),
            ("Metis+Pensieve-O", qoe_boost),
        ):
            norm = q / scale
            table.add_row([
                name,
                percentile(norm, 25),
                float(norm.mean()),
                percentile(norm, 75),
            ])
        tables.append(table)
        delta = (qoe_boost.mean() - qoe_teacher.mean()) / abs(
            qoe_teacher.mean()
        )
        metrics[f"oversampled_vs_dnn_pct_{kind}"] = float(delta * 100.0)
        metrics[f"oversampled_vs_plain_pct_{kind}"] = float(
            (qoe_boost.mean() - qoe_plain.mean())
            / abs(qoe_plain.mean()) * 100.0
        )
        raw[kind] = {
            "teacher": qoe_teacher, "plain": qoe_plain, "boosted": qoe_boost
        }
    return ExperimentResult(
        experiment="fig14",
        title="Oversampling missing bitrates in the distillation dataset",
        tables=tables,
        metrics=metrics,
        raw=raw,
    )


if __name__ == "__main__":
    print(run().render())
