"""Fig. 18 (§6.5): ad-hoc rerouting guided by mask values.

For every (current path, two candidates diverting at different nodes)
triple, the sign of the mask difference at the diverting links predicts
the sign of the latency difference after rerouting — most points land in
quadrants I/III.
"""

from __future__ import annotations

import numpy as np

from repro.core.hypergraph.adjust import quadrant_fractions, rerouting_scatter
from repro.experiments.common import (
    ExperimentResult,
    mask_search_for,
    routing_lab,
)
from repro.utils.tables import ResultTable


def run(fast: bool = False) -> ExperimentResult:
    lab = routing_lab(fast)
    topology, star = lab["topology"], lab["star"]
    samples = lab["traffics"][5:7] if fast else lab["traffics"][5:15]

    points = []
    for traffic in samples:
        routing = star.optimize(traffic, sweeps=2, seed=0)
        _, mask = mask_search_for(
            star, routing, traffic, output_kind="latency",
            steps=150 if fast else 300,
        )
        points.extend(
            rerouting_scatter(topology, routing, traffic, mask)
        )

    w_tol, l_tol = 0.05, 1e-3
    fractions = quadrant_fractions(
        points, w_tolerance=w_tol, l_tolerance=l_tol
    )
    table = ResultTable(
        "Rerouting scatter summary (Fig. 18b)", ["region", "fraction"]
    )
    table.add_row(["quadrants I/III (observation holds)",
                   fractions["consistent"]])
    table.add_row(["near axis", fractions["near_axis"]])
    table.add_row(["quadrants II/IV (violations)",
                   fractions["violations"]])

    # Sign-agreement among decisive points only.
    decisive = [
        p for p in points
        if abs(p.w_delta) > w_tol and abs(p.l_delta) > l_tol
    ]
    agreement = (
        float(np.mean([p.w_delta * p.l_delta > 0 for p in decisive]))
        if decisive else 0.0
    )
    return ExperimentResult(
        experiment="fig18",
        title="Mask values guide ad-hoc rerouting",
        tables=[table],
        metrics={
            "n_points": float(len(points)),
            "consistent_fraction": fractions["consistent"],
            "consistent_or_near": fractions["consistent"]
            + fractions["near_axis"],
            "decisive_sign_agreement": agreement,
        },
        raw={"points": points},
    )


if __name__ == "__main__":
    print(run().render())
