"""One harness module per paper table/figure.

Every module exposes ``run(fast=False, seed=...) -> ExperimentResult``;
``fast=True`` shrinks workloads for CI/benchmarks while keeping the same
code path.  The registry maps experiment ids to their runners so the CLI
(``python -m repro.experiments <id>``) and the benchmark suite agree.
"""

from repro.experiments.common import ExperimentResult

REGISTRY = {
    "fig7": "repro.experiments.fig7_tree",
    "table3": "repro.experiments.table3_masks",
    "fig9": "repro.experiments.fig9_mask_stats",
    "fig11": "repro.experiments.fig11_model_design",
    "fig12": "repro.experiments.fig12_bitrate_freq",
    "fig13": "repro.experiments.fig13_fixed_link",
    "fig14": "repro.experiments.fig14_oversample",
    "fig15": "repro.experiments.fig15_performance",
    "fig16": "repro.experiments.fig16_latency_coverage",
    "fig17": "repro.experiments.fig17_resources",
    "fig18": "repro.experiments.fig18_adjustment",
    "fig20": "repro.experiments.fig20_resampling",
    "fig27": "repro.experiments.fig27_baselines",
    "fig28": "repro.experiments.fig28_leaf_sensitivity",
    "fig29": "repro.experiments.fig29_lambda_sensitivity",
    "fig31": "repro.experiments.fig31_overhead",
}

__all__ = ["ExperimentResult", "REGISTRY", "run_experiment"]


def run_experiment(
    name: str, fast: bool = False, **options
) -> ExperimentResult:
    """Import and run one registered experiment by id.

    Extra keyword ``options`` (e.g. ``serve=True`` / ``cluster=True``
    for fig16) are forwarded only when the experiment's ``run``
    signature accepts them, so the CLI can offer optional modes without
    every module having to grow the parameter.
    """
    import importlib
    import inspect

    if name not in REGISTRY:
        raise KeyError(
            f"unknown experiment {name!r}; known: {sorted(REGISTRY)}"
        )
    module = importlib.import_module(REGISTRY[name])
    accepted = inspect.signature(module.run).parameters
    forwarded = {
        key: value for key, value in options.items() if key in accepted
    }
    return module.run(fast=fast, **forwarded)
