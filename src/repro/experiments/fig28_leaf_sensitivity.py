"""Fig. 28 (Appendix F.1): sensitivity to the number of leaf nodes.

Fidelity (accuracy/RMSE) of the distilled trees across leaf budgets from
10 to 5000: a wide range performs within a few percent of the best, so
operators need not tune the knob carefully.
"""

from __future__ import annotations

import numpy as np

from repro.core.distill import (
    DistillDataset,
    distill_from_dataset,
    distill_regressor,
    fidelity_accuracy,
    fidelity_rmse,
)
from repro.core.distill.viper import collect_teacher_dataset
from repro.experiments.common import (
    ExperimentResult,
    auto_lab,
    pensieve_lab,
)
from repro.utils.tables import ResultTable

LEAVES_FULL = (10, 50, 200, 1000, 5000)
LEAVES_FAST = (10, 200, 1000)


def run(fast: bool = False) -> ExperimentResult:
    leaves = LEAVES_FAST if fast else LEAVES_FULL
    tables = []
    metrics = {}

    # Pensieve.
    lab = pensieve_lab("hsdpa", fast)
    env, teacher = lab["env"], lab["teacher"]
    data = collect_teacher_dataset(env, teacher, 8 if fast else 20, rng=41)
    outputs = teacher.action_probabilities(data.states)
    n_train = int(len(data) * 0.7)
    table = ResultTable(
        "Pensieve leaf sensitivity (Fig. 28)",
        ["leaves", "accuracy", "rmse"],
    )
    accs = []
    for m in leaves:
        tree = distill_from_dataset(
            DistillDataset(
                states=data.states[:n_train], actions=data.actions[:n_train]
            ),
            leaf_nodes=m, n_classes=env.n_actions,
        )
        acc = fidelity_accuracy(
            data.actions[n_train:],
            tree.act_greedy_batch(data.states[n_train:]),
        )
        rmse = fidelity_rmse(
            outputs[n_train:],
            tree.action_probabilities(data.states[n_train:]),
        )
        accs.append(acc)
        table.add_row([m, acc, rmse])
    tables.append(table)
    metrics["pensieve_acc_range"] = float(max(accs) - min(accs))
    metrics["pensieve_best_acc"] = float(max(accs))

    # AuTO lRLA + sRLA.
    alab = auto_lab("websearch", fast)
    lstates = alab["lrla_dataset"].states
    lactions = alab["lrla_dataset"].actions
    loutputs = alab["teacher"].lrla_probabilities(lstates)
    nl = int(len(lactions) * 0.7)
    ltable = ResultTable(
        "AuTO-lRLA leaf sensitivity (Fig. 28)",
        ["leaves", "accuracy", "rmse"],
    )
    laccs = []
    for m in leaves:
        tree = distill_from_dataset(
            DistillDataset(states=lstates[:nl], actions=lactions[:nl]),
            leaf_nodes=m, n_classes=alab["teacher"].lrla.n_actions,
        )
        acc = fidelity_accuracy(
            lactions[nl:], tree.act_greedy_batch(lstates[nl:])
        )
        rmse = fidelity_rmse(
            loutputs[nl:], tree.action_probabilities(lstates[nl:])
        )
        laccs.append(acc)
        ltable.add_row([m, acc, rmse])
    tables.append(ltable)
    metrics["lrla_best_acc"] = float(max(laccs))

    sstates, sactions = alab["srla_states"], alab["srla_actions"]
    ns = max(int(len(sstates) * 0.7), 1)
    stable = ResultTable(
        "AuTO-sRLA leaf sensitivity (Fig. 28)", ["leaves", "rmse"]
    )
    srmses = []
    for m in leaves:
        reg = distill_regressor(sstates[:ns], sactions[:ns], leaf_nodes=m)
        pred = reg.predict(sstates[ns:])
        if pred.size == 0:
            continue
        rmse = fidelity_rmse(sactions[ns:], pred)
        srmses.append(rmse)
        stable.add_row([m, rmse])
    tables.append(stable)
    if srmses:
        metrics["srla_best_rmse"] = float(min(srmses))

    return ExperimentResult(
        experiment="fig28",
        title="Leaf-budget sensitivity of the distilled trees",
        tables=tables,
        metrics=metrics,
    )


if __name__ == "__main__":
    print(run().render())
