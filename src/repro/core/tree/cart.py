"""CART decision trees (classification and multi-output regression).

sklearn is not available in this environment, so the trees Metis distills
into are implemented here from scratch:

* weighted Gini impurity (classification) / weighted variance (regression,
  summed over output dimensions);
* pluggable split search (``repro.core.tree.splitter``): the default
  **presorted** engine argsorts each feature once and propagates sorted
  order to children; ``"legacy"`` re-sorts per node (the seed algorithm,
  kept as the bit-for-bit oracle); ``"hist"`` bins features into
  quantiles for large fits;
* **best-first growth** bounded by ``max_leaf_nodes`` — the node with the
  largest impurity *decrease* is expanded next, which is what makes a
  200-leaf budget spend its leaves where the policy is complicated
  (the paper's Table 4 budgets);
* sample weights throughout — Metis' advantage resampling (Eq. 1) enters
  the tree as weights.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.tree.flat import FlatTree
from repro.core.tree.splitter import SPLITTERS, make_splitter


@dataclass
class Node:
    """One tree node; leaves have ``feature == -1``.

    Attributes:
        feature: split feature index (-1 for leaves).
        threshold: split point; samples with ``x[feature] < threshold`` go
            left.
        left/right: children (None for leaves).
        value: class-probability vector (classifier) or mean output vector
            (regressor).
        n_samples: weighted sample count reaching this node.
        impurity: weighted impurity at this node.
    """

    feature: int = -1
    threshold: float = 0.0
    left: Optional["Node"] = None
    right: Optional["Node"] = None
    value: np.ndarray = field(default_factory=lambda: np.zeros(1))
    n_samples: float = 0.0
    impurity: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0

    def copy(self) -> "Node":
        """Deep copy of the subtree rooted here.

        Iterative: degenerate (chain-shaped) trees can be deeper than
        Python's recursion limit, so the copy walks an explicit stack.
        """

        def clone(node: "Node") -> "Node":
            return Node(
                feature=node.feature,
                threshold=node.threshold,
                value=node.value.copy(),
                n_samples=node.n_samples,
                impurity=node.impurity,
            )

        new_root = clone(self)
        stack = [(self, new_root)]
        while stack:
            src, dst = stack.pop()
            if src.is_leaf:
                continue
            dst.left = clone(src.left)
            dst.right = clone(src.right)
            stack.append((src.left, dst.left))
            stack.append((src.right, dst.right))
        return new_root


class _BaseTree:
    """Shared growth/predict machinery; subclasses define the criterion."""

    #: Whether the criterion reads the squared-statistic channel
    #: (variance does, Gini does not — splitters skip it when unused).
    _needs_sq = True

    def __init__(
        self,
        max_leaf_nodes: int = 200,
        min_samples_leaf: int = 2,
        min_impurity_decrease: float = 1e-12,
        max_depth: Optional[int] = None,
        splitter: str = "presorted",
        hist_bins: int = 256,
    ) -> None:
        if max_leaf_nodes < 2:
            raise ValueError("max_leaf_nodes must be at least 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be at least 1")
        if splitter not in SPLITTERS:
            raise ValueError(
                f"unknown splitter {splitter!r}; expected one of {SPLITTERS}"
            )
        self.max_leaf_nodes = max_leaf_nodes
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.max_depth = max_depth
        self.splitter = splitter
        self.hist_bins = hist_bins
        self.root: Optional[Node] = None
        self.n_features: int = 0
        self._flat: Optional[FlatTree] = None

    # -- flat engine -----------------------------------------------------
    @property
    def flat(self) -> FlatTree:
        """The array-based inference engine (built lazily from ``root``).

        ``fit`` builds it eagerly; code that mutates the linked ``Node``
        structure afterwards (pruning, deserialization) must call
        :meth:`invalidate_flat` so the arrays are rebuilt in sync.
        """
        if self.root is None:
            raise RuntimeError("fit must be called first")
        if self._flat is None:
            self._flat = FlatTree.from_node(self.root)
        return self._flat

    def invalidate_flat(self) -> None:
        """Drop the cached flat form after mutating the node structure."""
        self._flat = None

    def _check_features(self, x: np.ndarray) -> None:
        if self.n_features and x.shape[-1] != self.n_features:
            raise ValueError(
                f"x has {x.shape[-1]} features, but this tree was fitted "
                f"with {self.n_features}"
            )

    # -- criterion hooks (subclass responsibility) -----------------------
    def _encode_targets(self, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _leaf_value(self, stats_sum: np.ndarray, weight: float) -> np.ndarray:
        raise NotImplementedError

    def _impurity(
        self, stats_sum: np.ndarray, stats_sq: np.ndarray, weight: float
    ) -> float:
        raise NotImplementedError

    # -- fitting ---------------------------------------------------------
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "_BaseTree":
        """Grow the tree best-first under the leaf budget."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        n = x.shape[0]
        if n == 0:
            raise ValueError("cannot fit on an empty dataset")
        targets = self._encode_targets(np.asarray(y))
        if sample_weight is None:
            weights = np.ones(n)
        else:
            weights = np.asarray(sample_weight, dtype=float)
            if weights.shape != (n,):
                raise ValueError(
                    f"sample_weight shape {weights.shape} does not match "
                    f"the {n} training rows"
                )
            if not np.all(np.isfinite(weights)):
                raise ValueError("sample weights must be finite")
            if np.any(weights < 0):
                raise ValueError(
                    "sample weights must be non-negative: negative weights "
                    "corrupt the impurity sums"
                )
            if weights.sum() <= 0:
                raise ValueError(
                    "sample weights must not all be zero: the tree would "
                    "have no mass to split on"
                )
        self.n_features = x.shape[1]

        engine = make_splitter(self.splitter, self, x, targets, weights)
        root_handle = engine.root_handle()
        root = self._make_node(targets, weights, engine.node_rows(root_handle))
        # Heap of candidate splits: (-impurity_decrease, tiebreak, ...).
        counter = itertools.count()
        heap: List[Tuple] = []
        self._push_candidate(heap, counter, engine, root_handle, root, depth=0)
        n_leaves = 1
        while heap and n_leaves < self.max_leaf_nodes:
            neg_gain, _, node, handle, cand, depth = heapq.heappop(heap)
            if -neg_gain < self.min_impurity_decrease:
                break
            # Partition lazily: only nodes best-first growth actually
            # expands pay for it (candidates that stay in the heap when
            # the leaf budget runs out never partition anything).
            left_handle, right_handle = engine.apply_split(handle, cand)
            node.feature = cand.feature
            node.threshold = cand.threshold
            node.left = self._make_node(
                targets, weights, engine.node_rows(left_handle)
            )
            node.right = self._make_node(
                targets, weights, engine.node_rows(right_handle)
            )
            n_leaves += 1
            self._push_candidate(
                heap, counter, engine, left_handle, node.left, depth + 1
            )
            self._push_candidate(
                heap, counter, engine, right_handle, node.right, depth + 1
            )
        self.root = root
        # Flatten once: the linked nodes stay as the build-time structure,
        # all inference goes through the array engine.
        self._flat = FlatTree.from_node(root)
        return self

    def _make_node(
        self, targets: np.ndarray, weights: np.ndarray, idx: np.ndarray
    ) -> Node:
        w = weights[idx]
        total = w.sum()
        t = targets[idx]
        stats_sum = (t * w[:, None]).sum(axis=0)
        stats_sq = ((t**2) * w[:, None]).sum(axis=0)
        return Node(
            value=self._leaf_value(stats_sum, total),
            n_samples=float(total),
            impurity=self._impurity(stats_sum, stats_sq, total),
        )

    def _push_candidate(
        self,
        heap: List,
        counter,
        engine,
        handle,
        node: Node,
        depth: int,
    ) -> None:
        if self.max_depth is not None and depth >= self.max_depth:
            return
        if engine.n_node_samples(handle) < 2 * self.min_samples_leaf:
            return
        cand = engine.find_split(handle, node)
        if cand is None:
            return
        heapq.heappush(
            heap, (-cand.gain, next(counter), node, handle, cand, depth)
        )

    def _impurity_vec(
        self, sums: np.ndarray, sqs: np.ndarray, ws: np.ndarray
    ) -> np.ndarray:
        """Vectorized impurity over candidate splits (rows)."""
        raise NotImplementedError

    # -- prediction --------------------------------------------------------
    def _leaf_values(self, x: np.ndarray) -> np.ndarray:
        """Value vector of the leaf each row lands in (flat engine)."""
        if self.root is None:
            raise RuntimeError("fit must be called first")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self._check_features(x)
        return self.flat.leaf_values(x)

    def _leaf_values_nodes(self, x: np.ndarray) -> np.ndarray:
        """Legacy node-walking traversal, kept as the equivalence oracle
        for the vectorized engine (see ``tests/test_flat_equivalence``)."""
        if self.root is None:
            raise RuntimeError("fit must be called first")
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        x = np.atleast_2d(x)
        out = np.empty((x.shape[0], self.root.value.size))
        stack = [(self.root, np.arange(x.shape[0]))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if node.is_leaf:
                out[idx] = node.value
                continue
            mask = x[idx, node.feature] < node.threshold
            stack.append((node.left, idx[mask]))
            stack.append((node.right, idx[~mask]))
        return out[0:1] if single else out

    def predict_one(self, x) -> np.ndarray:
        """Leaf value for one sample via plain-Python traversal.

        This is the deployment-style call: a handful of attribute reads
        and comparisons, no numpy dispatch — the micro-benchmarks in
        ``repro.deploy`` measure this path against MLP inference.
        """
        if self.root is None:
            raise RuntimeError("fit must be called first")
        if self.n_features and len(x) != self.n_features:
            raise ValueError(
                f"sample has {len(x)} features, but this tree was fitted "
                f"with {self.n_features}"
            )
        node = self.root
        while not node.is_leaf:
            if x[node.feature] < node.threshold:
                node = node.left
            else:
                node = node.right
        return node.value

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Leaf id (preorder index) each row lands in (flat engine)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self._check_features(x)
        return self.flat.apply(x).astype(int)

    def _apply_nodes(self, x: np.ndarray) -> np.ndarray:
        """Legacy per-row node walk (equivalence oracle / benchmarks)."""
        ids = {}
        for i, node in enumerate(self.iter_nodes()):
            ids[id(node)] = i
        x = np.atleast_2d(np.asarray(x, dtype=float))
        out = np.empty(x.shape[0], dtype=int)
        for row in range(x.shape[0]):
            node = self.root
            while not node.is_leaf:
                if x[row, node.feature] < node.threshold:
                    node = node.left
                else:
                    node = node.right
            out[row] = ids[id(node)]
        return out

    # -- inspection ----------------------------------------------------------
    def iter_nodes(self):
        """Preorder traversal."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            yield node
            if not node.is_leaf:
                stack.append(node.right)
                stack.append(node.left)

    @property
    def node_count(self) -> int:
        if self.root is None:
            return 0
        return self.flat.node_count

    @property
    def n_leaves(self) -> int:
        if self.root is None:
            return 0
        return self.flat.n_leaves

    @property
    def depth(self) -> int:
        if self.root is None:
            return 0
        return self.flat.max_depth

    def decision_path_length(self, x: np.ndarray) -> np.ndarray:
        """Comparisons needed per row (the deployment latency proxy)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self._check_features(x)
        return self.flat.decision_path_length(x)

    def _decision_path_length_nodes(self, x: np.ndarray) -> np.ndarray:
        """Legacy per-row walk (equivalence oracle)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        out = np.zeros(x.shape[0], dtype=int)
        for row in range(x.shape[0]):
            node = self.root
            hops = 0
            while not node.is_leaf:
                hops += 1
                if x[row, node.feature] < node.threshold:
                    node = node.left
                else:
                    node = node.right
            out[row] = hops
        return out


class DecisionTreeClassifier(_BaseTree):
    """Gini-impurity CART classifier; ``value`` is the class distribution."""

    _needs_sq = False  # Gini never reads the squared-statistic channel

    def __init__(self, n_classes: Optional[int] = None, **kwargs) -> None:
        super().__init__(**kwargs)
        self.n_classes = n_classes

    def _encode_targets(self, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y, dtype=int)
        if y.ndim != 1:
            raise ValueError("classification targets must be 1-D")
        if self.n_classes is None:
            self.n_classes = int(y.max()) + 1
        if y.min() < 0 or y.max() >= self.n_classes:
            raise ValueError("labels out of range")
        onehot = np.zeros((y.size, self.n_classes))
        onehot[np.arange(y.size), y] = 1.0
        return onehot

    def _leaf_value(self, stats_sum: np.ndarray, weight: float) -> np.ndarray:
        return stats_sum / max(weight, 1e-12)

    def _impurity(self, stats_sum, stats_sq, weight) -> float:
        if weight <= 0:
            return 0.0
        p = stats_sum / weight
        return float(weight * (1.0 - np.sum(p**2)))

    def _impurity_vec(self, sums, sqs, ws) -> np.ndarray:
        safe = np.maximum(ws, 1e-12)
        p = sums / safe[:, None]
        return ws * (1.0 - np.sum(p**2, axis=1))

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return self._leaf_values(x)

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.root is None:
            raise RuntimeError("fit must be called first")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self._check_features(x)
        return self.flat.predict_class(x)


class DecisionTreeRegressor(_BaseTree):
    """Variance-reduction CART regressor; supports multi-output targets."""

    def _encode_targets(self, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y, dtype=float)
        if y.ndim == 1:
            y = y[:, None]
        if y.ndim != 2:
            raise ValueError("regression targets must be 1-D or 2-D")
        self.n_outputs = y.shape[1]
        return y

    def _leaf_value(self, stats_sum: np.ndarray, weight: float) -> np.ndarray:
        return stats_sum / max(weight, 1e-12)

    def _impurity(self, stats_sum, stats_sq, weight) -> float:
        if weight <= 0:
            return 0.0
        mean = stats_sum / weight
        return float(np.sum(stats_sq - weight * mean**2))

    def _impurity_vec(self, sums, sqs, ws) -> np.ndarray:
        safe = np.maximum(ws, 1e-12)
        mean = sums / safe[:, None]
        return np.sum(sqs - safe[:, None] * mean**2, axis=1)

    def predict(self, x: np.ndarray) -> np.ndarray:
        values = self._leaf_values(x)
        if getattr(self, "n_outputs", 1) == 1:
            return values[:, 0]
        return values
