"""CART decision trees (classification and multi-output regression).

sklearn is not available in this environment, so the trees Metis distills
into are implemented here from scratch:

* weighted Gini impurity (classification) / weighted variance (regression,
  summed over output dimensions);
* exact best-split search per feature via sorted cumulative statistics;
* **best-first growth** bounded by ``max_leaf_nodes`` — the node with the
  largest impurity *decrease* is expanded next, which is what makes a
  200-leaf budget spend its leaves where the policy is complicated
  (the paper's Table 4 budgets);
* sample weights throughout — Metis' advantage resampling (Eq. 1) enters
  the tree as weights.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.tree.flat import FlatTree


@dataclass
class Node:
    """One tree node; leaves have ``feature == -1``.

    Attributes:
        feature: split feature index (-1 for leaves).
        threshold: split point; samples with ``x[feature] < threshold`` go
            left.
        left/right: children (None for leaves).
        value: class-probability vector (classifier) or mean output vector
            (regressor).
        n_samples: weighted sample count reaching this node.
        impurity: weighted impurity at this node.
    """

    feature: int = -1
    threshold: float = 0.0
    left: Optional["Node"] = None
    right: Optional["Node"] = None
    value: np.ndarray = field(default_factory=lambda: np.zeros(1))
    n_samples: float = 0.0
    impurity: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0

    def copy(self) -> "Node":
        """Deep copy of the subtree rooted here.

        Iterative: degenerate (chain-shaped) trees can be deeper than
        Python's recursion limit, so the copy walks an explicit stack.
        """

        def clone(node: "Node") -> "Node":
            return Node(
                feature=node.feature,
                threshold=node.threshold,
                value=node.value.copy(),
                n_samples=node.n_samples,
                impurity=node.impurity,
            )

        new_root = clone(self)
        stack = [(self, new_root)]
        while stack:
            src, dst = stack.pop()
            if src.is_leaf:
                continue
            dst.left = clone(src.left)
            dst.right = clone(src.right)
            stack.append((src.left, dst.left))
            stack.append((src.right, dst.right))
        return new_root


class _BaseTree:
    """Shared growth/predict machinery; subclasses define the criterion."""

    def __init__(
        self,
        max_leaf_nodes: int = 200,
        min_samples_leaf: int = 2,
        min_impurity_decrease: float = 1e-12,
        max_depth: Optional[int] = None,
    ) -> None:
        if max_leaf_nodes < 2:
            raise ValueError("max_leaf_nodes must be at least 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be at least 1")
        self.max_leaf_nodes = max_leaf_nodes
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.max_depth = max_depth
        self.root: Optional[Node] = None
        self.n_features: int = 0
        self._flat: Optional[FlatTree] = None

    # -- flat engine -----------------------------------------------------
    @property
    def flat(self) -> FlatTree:
        """The array-based inference engine (built lazily from ``root``).

        ``fit`` builds it eagerly; code that mutates the linked ``Node``
        structure afterwards (pruning, deserialization) must call
        :meth:`invalidate_flat` so the arrays are rebuilt in sync.
        """
        if self.root is None:
            raise RuntimeError("fit must be called first")
        if self._flat is None:
            self._flat = FlatTree.from_node(self.root)
        return self._flat

    def invalidate_flat(self) -> None:
        """Drop the cached flat form after mutating the node structure."""
        self._flat = None

    def _check_features(self, x: np.ndarray) -> None:
        if self.n_features and x.shape[-1] != self.n_features:
            raise ValueError(
                f"x has {x.shape[-1]} features, but this tree was fitted "
                f"with {self.n_features}"
            )

    # -- criterion hooks (subclass responsibility) -----------------------
    def _encode_targets(self, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _leaf_value(self, stats_sum: np.ndarray, weight: float) -> np.ndarray:
        raise NotImplementedError

    def _impurity(
        self, stats_sum: np.ndarray, stats_sq: np.ndarray, weight: float
    ) -> float:
        raise NotImplementedError

    # -- fitting ---------------------------------------------------------
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "_BaseTree":
        """Grow the tree best-first under the leaf budget."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        n = x.shape[0]
        if n == 0:
            raise ValueError("cannot fit on an empty dataset")
        targets = self._encode_targets(np.asarray(y))
        if sample_weight is None:
            weights = np.ones(n)
        else:
            weights = np.asarray(sample_weight, dtype=float)
            if weights.shape != (n,):
                raise ValueError(
                    f"sample_weight shape {weights.shape} does not match "
                    f"the {n} training rows"
                )
            if not np.all(np.isfinite(weights)):
                raise ValueError("sample weights must be finite")
            if np.any(weights < 0):
                raise ValueError(
                    "sample weights must be non-negative: negative weights "
                    "corrupt the impurity sums"
                )
            if weights.sum() <= 0:
                raise ValueError(
                    "sample weights must not all be zero: the tree would "
                    "have no mass to split on"
                )
        self.n_features = x.shape[1]

        idx_all = np.arange(n)
        root = self._make_node(targets, weights, idx_all)
        # Heap of candidate splits: (-impurity_decrease, tiebreak, ...).
        counter = itertools.count()
        heap: List[Tuple] = []
        self._push_candidate(
            heap, counter, x, targets, weights, idx_all, root, depth=0
        )
        n_leaves = 1
        while heap and n_leaves < self.max_leaf_nodes:
            neg_gain, _, node, split = heapq.heappop(heap)
            if -neg_gain < self.min_impurity_decrease:
                break
            feature, threshold, left_idx, right_idx, depth = split
            node.feature = feature
            node.threshold = threshold
            node.left = self._make_node(targets, weights, left_idx)
            node.right = self._make_node(targets, weights, right_idx)
            n_leaves += 1
            self._push_candidate(
                heap, counter, x, targets, weights, left_idx, node.left,
                depth + 1,
            )
            self._push_candidate(
                heap, counter, x, targets, weights, right_idx, node.right,
                depth + 1,
            )
        self.root = root
        # Flatten once: the linked nodes stay as the build-time structure,
        # all inference goes through the array engine.
        self._flat = FlatTree.from_node(root)
        return self

    def _make_node(
        self, targets: np.ndarray, weights: np.ndarray, idx: np.ndarray
    ) -> Node:
        w = weights[idx]
        total = w.sum()
        t = targets[idx]
        stats_sum = (t * w[:, None]).sum(axis=0)
        stats_sq = ((t**2) * w[:, None]).sum(axis=0)
        return Node(
            value=self._leaf_value(stats_sum, total),
            n_samples=float(total),
            impurity=self._impurity(stats_sum, stats_sq, total),
        )

    def _push_candidate(
        self,
        heap: List,
        counter,
        x: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray,
        idx: np.ndarray,
        node: Node,
        depth: int,
    ) -> None:
        if self.max_depth is not None and depth >= self.max_depth:
            return
        if idx.size < 2 * self.min_samples_leaf:
            return
        best = self._best_split(x, targets, weights, idx, node)
        if best is None:
            return
        gain, feature, threshold, left_idx, right_idx = best
        heapq.heappush(
            heap,
            (-gain, next(counter), node,
             (feature, threshold, left_idx, right_idx, depth)),
        )

    def _best_split(
        self,
        x: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray,
        idx: np.ndarray,
        node: Node,
    ) -> Optional[Tuple[float, int, float, np.ndarray, np.ndarray]]:
        """Exact best split over all features for the samples in ``idx``."""
        xs = x[idx]
        t = targets[idx]
        w = weights[idx]
        parent_impurity = node.impurity
        best_gain = 0.0
        best: Optional[Tuple[float, int, float, np.ndarray, np.ndarray]] = None
        min_leaf = self.min_samples_leaf
        for feature in range(self.n_features):
            col = xs[:, feature]
            order = np.argsort(col, kind="stable")
            cs = col[order]
            # Candidate boundaries: positions where the value changes.
            diff = np.nonzero(cs[1:] > cs[:-1])[0]
            if diff.size == 0:
                continue
            tw = t[order] * w[order, None]
            cum_sum = np.cumsum(tw, axis=0)
            cum_sq = np.cumsum((t[order]**2) * w[order, None], axis=0)
            cum_w = np.cumsum(w[order])
            total_sum = cum_sum[-1]
            total_sq = cum_sq[-1]
            total_w = cum_w[-1]
            # Left side ends at position p (inclusive) for p in diff.
            valid = diff[
                (diff + 1 >= min_leaf) & (cs.size - diff - 1 >= min_leaf)
            ]
            if valid.size == 0:
                continue
            lw = cum_w[valid]
            rw = total_w - lw
            l_imp = self._impurity_vec(
                cum_sum[valid], cum_sq[valid], lw
            )
            r_imp = self._impurity_vec(
                total_sum - cum_sum[valid], total_sq - cum_sq[valid], rw
            )
            gains = parent_impurity - (l_imp + r_imp)
            arg = int(np.argmax(gains))
            if gains[arg] > best_gain:
                p = valid[arg]
                threshold = 0.5 * (cs[p] + cs[p + 1])
                mask = col < threshold
                best_gain = float(gains[arg])
                best = (
                    best_gain,
                    feature,
                    float(threshold),
                    idx[mask],
                    idx[~mask],
                )
        return best

    def _impurity_vec(
        self, sums: np.ndarray, sqs: np.ndarray, ws: np.ndarray
    ) -> np.ndarray:
        """Vectorized impurity over candidate splits (rows)."""
        raise NotImplementedError

    # -- prediction --------------------------------------------------------
    def _leaf_values(self, x: np.ndarray) -> np.ndarray:
        """Value vector of the leaf each row lands in (flat engine)."""
        if self.root is None:
            raise RuntimeError("fit must be called first")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self._check_features(x)
        return self.flat.leaf_values(x)

    def _leaf_values_nodes(self, x: np.ndarray) -> np.ndarray:
        """Legacy node-walking traversal, kept as the equivalence oracle
        for the vectorized engine (see ``tests/test_flat_equivalence``)."""
        if self.root is None:
            raise RuntimeError("fit must be called first")
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        x = np.atleast_2d(x)
        out = np.empty((x.shape[0], self.root.value.size))
        stack = [(self.root, np.arange(x.shape[0]))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if node.is_leaf:
                out[idx] = node.value
                continue
            mask = x[idx, node.feature] < node.threshold
            stack.append((node.left, idx[mask]))
            stack.append((node.right, idx[~mask]))
        return out[0:1] if single else out

    def predict_one(self, x) -> np.ndarray:
        """Leaf value for one sample via plain-Python traversal.

        This is the deployment-style call: a handful of attribute reads
        and comparisons, no numpy dispatch — the micro-benchmarks in
        ``repro.deploy`` measure this path against MLP inference.
        """
        if self.root is None:
            raise RuntimeError("fit must be called first")
        if self.n_features and len(x) != self.n_features:
            raise ValueError(
                f"sample has {len(x)} features, but this tree was fitted "
                f"with {self.n_features}"
            )
        node = self.root
        while not node.is_leaf:
            if x[node.feature] < node.threshold:
                node = node.left
            else:
                node = node.right
        return node.value

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Leaf id (preorder index) each row lands in (flat engine)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self._check_features(x)
        return self.flat.apply(x).astype(int)

    def _apply_nodes(self, x: np.ndarray) -> np.ndarray:
        """Legacy per-row node walk (equivalence oracle / benchmarks)."""
        ids = {}
        for i, node in enumerate(self.iter_nodes()):
            ids[id(node)] = i
        x = np.atleast_2d(np.asarray(x, dtype=float))
        out = np.empty(x.shape[0], dtype=int)
        for row in range(x.shape[0]):
            node = self.root
            while not node.is_leaf:
                if x[row, node.feature] < node.threshold:
                    node = node.left
                else:
                    node = node.right
            out[row] = ids[id(node)]
        return out

    # -- inspection ----------------------------------------------------------
    def iter_nodes(self):
        """Preorder traversal."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            yield node
            if not node.is_leaf:
                stack.append(node.right)
                stack.append(node.left)

    @property
    def node_count(self) -> int:
        if self.root is None:
            return 0
        return self.flat.node_count

    @property
    def n_leaves(self) -> int:
        if self.root is None:
            return 0
        return self.flat.n_leaves

    @property
    def depth(self) -> int:
        if self.root is None:
            return 0
        return self.flat.max_depth

    def decision_path_length(self, x: np.ndarray) -> np.ndarray:
        """Comparisons needed per row (the deployment latency proxy)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self._check_features(x)
        return self.flat.decision_path_length(x)

    def _decision_path_length_nodes(self, x: np.ndarray) -> np.ndarray:
        """Legacy per-row walk (equivalence oracle)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        out = np.zeros(x.shape[0], dtype=int)
        for row in range(x.shape[0]):
            node = self.root
            hops = 0
            while not node.is_leaf:
                hops += 1
                if x[row, node.feature] < node.threshold:
                    node = node.left
                else:
                    node = node.right
            out[row] = hops
        return out


class DecisionTreeClassifier(_BaseTree):
    """Gini-impurity CART classifier; ``value`` is the class distribution."""

    def __init__(self, n_classes: Optional[int] = None, **kwargs) -> None:
        super().__init__(**kwargs)
        self.n_classes = n_classes

    def _encode_targets(self, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y, dtype=int)
        if y.ndim != 1:
            raise ValueError("classification targets must be 1-D")
        if self.n_classes is None:
            self.n_classes = int(y.max()) + 1
        if y.min() < 0 or y.max() >= self.n_classes:
            raise ValueError("labels out of range")
        onehot = np.zeros((y.size, self.n_classes))
        onehot[np.arange(y.size), y] = 1.0
        return onehot

    def _leaf_value(self, stats_sum: np.ndarray, weight: float) -> np.ndarray:
        return stats_sum / max(weight, 1e-12)

    def _impurity(self, stats_sum, stats_sq, weight) -> float:
        if weight <= 0:
            return 0.0
        p = stats_sum / weight
        return float(weight * (1.0 - np.sum(p**2)))

    def _impurity_vec(self, sums, sqs, ws) -> np.ndarray:
        safe = np.maximum(ws, 1e-12)
        p = sums / safe[:, None]
        return ws * (1.0 - np.sum(p**2, axis=1))

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return self._leaf_values(x)

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.root is None:
            raise RuntimeError("fit must be called first")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self._check_features(x)
        return self.flat.predict_class(x)


class DecisionTreeRegressor(_BaseTree):
    """Variance-reduction CART regressor; supports multi-output targets."""

    def _encode_targets(self, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y, dtype=float)
        if y.ndim == 1:
            y = y[:, None]
        if y.ndim != 2:
            raise ValueError("regression targets must be 1-D or 2-D")
        self.n_outputs = y.shape[1]
        return y

    def _leaf_value(self, stats_sum: np.ndarray, weight: float) -> np.ndarray:
        return stats_sum / max(weight, 1e-12)

    def _impurity(self, stats_sum, stats_sq, weight) -> float:
        if weight <= 0:
            return 0.0
        mean = stats_sum / weight
        return float(np.sum(stats_sq - weight * mean**2))

    def _impurity_vec(self, sums, sqs, ws) -> np.ndarray:
        safe = np.maximum(ws, 1e-12)
        mean = sums / safe[:, None]
        return np.sum(sqs - safe[:, None] * mean**2, axis=1)

    def predict(self, x: np.ndarray) -> np.ndarray:
        values = self._leaf_values(x)
        if getattr(self, "n_outputs", 1) == 1:
            return values[:, 0]
        return values
