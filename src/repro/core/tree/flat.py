"""Flattened array representation of a fitted CART tree.

The linked :class:`~repro.core.tree.cart.Node` structure is convenient to
*grow* (best-first expansion mutates nodes in place) but terrible to
*serve*: per-row Python traversal chases pointers and re-enters the
interpreter for every comparison.  ``FlatTree`` stores the finished tree
as contiguous numpy arrays (sklearn ``tree_`` style) and answers batch
queries with level-wise index propagation — a handful of vectorized ops
per tree level instead of a Python loop per row.

Array layout (all length ``node_count``, preorder: a node is followed by
its entire left subtree, then its right subtree — so node ids are
bit-compatible with the legacy ``iter_nodes`` preorder ids):

* ``feature``        — split feature per node, ``-1`` for leaves;
* ``threshold``      — split point; rows with ``x[feature] < threshold``
  go left;
* ``children_left``  / ``children_right`` — child node ids, ``-1`` for
  leaves;
* ``value``          — ``(node_count, n_outputs)`` leaf/internal value
  vectors (class distribution or mean output);
* ``n_samples``      — weighted sample count reaching each node;
* ``impurity``       — weighted impurity per node;
* ``depths``         — comparisons needed to reach each node (root = 0),
  derived, used for latency proxies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

import repro.core.tree.native as _native

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.tree.cart import Node


@dataclass(eq=False)
class FlatTree:
    """Array-based inference engine for a fitted decision tree."""

    feature: np.ndarray
    threshold: np.ndarray
    children_left: np.ndarray
    children_right: np.ndarray
    value: np.ndarray
    n_samples: np.ndarray
    impurity: np.ndarray
    depths: np.ndarray = field(init=False)
    value_argmax: np.ndarray = field(init=False)
    feature_safe: np.ndarray = field(init=False)
    children_flat: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        n = self.feature.shape[0]
        for name in ("threshold", "children_left", "children_right",
                     "n_samples", "impurity"):
            if getattr(self, name).shape[0] != n:
                raise ValueError(f"{name} length mismatch with feature")
        if self.value.ndim != 2 or self.value.shape[0] != n:
            raise ValueError("value must be (node_count, n_outputs)")
        self.depths = self._compute_depths()
        # Precomputed per-node argmax: classifier predict becomes a pure
        # gather, no (n_rows, n_classes) intermediate.
        self.value_argmax = self.value.argmax(axis=1)
        # Dispatch tables for the branch-free batch walk: leaves loop to
        # themselves (their feature is remapped to 0 so gathers stay in
        # bounds — the comparison result is irrelevant for a self-loop).
        leaf = self.feature < 0
        self.feature_safe = np.where(leaf, 0, self.feature)
        self_idx = np.arange(self.feature.shape[0], dtype=np.intp)
        left_safe = np.where(leaf, self_idx, self.children_left)
        right_safe = np.where(leaf, self_idx, self.children_right)
        # children_flat[2 * node + go_right] -> next node id.
        self.children_flat = np.empty(2 * self.feature.shape[0],
                                      dtype=np.intp)
        self.children_flat[0::2] = left_safe
        self.children_flat[1::2] = right_safe
        # Compiled-backend state (see repro.core.tree.native): the
        # dlopened kernel once attached, whether a compile/load for
        # this tree already failed (don't retry per batch), whether the
        # disk cache was already probed, and per-tree row counters.
        self._native = None
        self._native_failed = False
        self._native_probed = False
        self.backend_stats = {
            "native_rows": 0, "numpy_rows": 0, "fallback_rows": 0,
        }

    # -- construction ----------------------------------------------------
    @classmethod
    def from_node(cls, root: "Node") -> "FlatTree":
        """Flatten a linked subtree, iteratively (deep trees are fine).

        Nodes are laid out in preorder so ids match the legacy
        ``iter_nodes`` numbering exactly.
        """
        if root is None:
            raise ValueError("cannot flatten an empty tree")
        feature: List[int] = []
        threshold: List[float] = []
        left: List[int] = []
        right: List[int] = []
        values: List[np.ndarray] = []
        n_samples: List[float] = []
        impurity: List[float] = []
        # (node, parent index, 0 = left child / 1 = right child)
        stack: List[Tuple["Node", int, int]] = [(root, -1, 0)]
        while stack:
            node, parent, side = stack.pop()
            i = len(feature)
            if parent >= 0:
                (left if side == 0 else right)[parent] = i
            feature.append(node.feature if not node.is_leaf else -1)
            threshold.append(float(node.threshold))
            left.append(-1)
            right.append(-1)
            values.append(np.asarray(node.value, dtype=float))
            n_samples.append(float(node.n_samples))
            impurity.append(float(node.impurity))
            if not node.is_leaf:
                stack.append((node.right, i, 1))
                stack.append((node.left, i, 0))
        return cls(
            feature=np.asarray(feature, dtype=np.intp),
            threshold=np.asarray(threshold, dtype=float),
            children_left=np.asarray(left, dtype=np.intp),
            children_right=np.asarray(right, dtype=np.intp),
            value=np.stack(values),
            n_samples=np.asarray(n_samples, dtype=float),
            impurity=np.asarray(impurity, dtype=float),
        )

    @classmethod
    def from_arrays(cls, arrays: dict) -> "FlatTree":
        """Rebuild from the plain-list dict produced by :meth:`to_arrays`."""
        return cls(
            feature=np.asarray(arrays["feature"], dtype=np.intp),
            threshold=np.asarray(arrays["threshold"], dtype=float),
            children_left=np.asarray(arrays["children_left"], dtype=np.intp),
            children_right=np.asarray(arrays["children_right"], dtype=np.intp),
            value=np.atleast_2d(np.asarray(arrays["value"], dtype=float)),
            n_samples=np.asarray(arrays["n_samples"], dtype=float),
            impurity=np.asarray(arrays["impurity"], dtype=float),
        )

    def to_arrays(self) -> dict:
        """JSON-serializable dict of the arrays."""
        return {
            "feature": self.feature.tolist(),
            "threshold": self.threshold.tolist(),
            "children_left": self.children_left.tolist(),
            "children_right": self.children_right.tolist(),
            "value": self.value.tolist(),
            "n_samples": self.n_samples.tolist(),
            "impurity": self.impurity.tolist(),
        }

    def to_node(self) -> "Node":
        """Rebuild the linked ``Node`` form (build-time structure)."""
        from repro.core.tree.cart import Node

        nodes = [
            Node(
                feature=int(self.feature[i]),
                threshold=float(self.threshold[i]),
                value=self.value[i].copy(),
                n_samples=float(self.n_samples[i]),
                impurity=float(self.impurity[i]),
            )
            for i in range(self.node_count)
        ]
        for i in range(self.node_count):
            if self.children_left[i] >= 0:
                nodes[i].left = nodes[self.children_left[i]]
                nodes[i].right = nodes[self.children_right[i]]
        return nodes[0]

    def _compute_depths(self) -> np.ndarray:
        # Preorder guarantees children come after their parent, so one
        # forward pass suffices.
        depths = np.zeros(self.feature.shape[0], dtype=np.intp)
        internal = np.nonzero(self.feature >= 0)[0]
        for i in internal:
            depths[self.children_left[i]] = depths[i] + 1
            depths[self.children_right[i]] = depths[i] + 1
        return depths

    # -- inspection ------------------------------------------------------
    @property
    def node_count(self) -> int:
        return int(self.feature.shape[0])

    @property
    def leaf_mask(self) -> np.ndarray:
        return self.feature < 0

    @property
    def n_leaves(self) -> int:
        return int(np.count_nonzero(self.feature < 0))

    @property
    def n_outputs(self) -> int:
        return int(self.value.shape[1])

    @property
    def max_depth(self) -> int:
        return int(self.depths.max()) if self.node_count else 0

    # -- compiled backend ------------------------------------------------
    def attach_kernel(self, kernel) -> None:
        """Adopt an already-loaded native kernel (cluster worker path)."""
        self._native = kernel
        self._native_failed = kernel is None
        self._native_probed = True

    def native_kernel(self, compile: bool = True):
        """The attached/cached/compiled kernel for this tree, or None.

        Best-effort by contract (never raises): a missing compiler, a
        failed compile, or a corrupt cache entry just returns None and
        the numpy backend keeps serving.
        """
        if self._native is not None:
            return self._native
        if self._native_failed:
            return None
        kernel = _native.ensure_kernel(self, compile=compile)
        self._native_probed = True
        if kernel is not None:
            self._native = kernel
        elif compile:
            self._native_failed = True
        return kernel

    def _backend_kernel(self, x: np.ndarray, mode: str):
        """Kernel to use for this batch under ``mode``, or None.

        ``native`` always tries (compiling if needed); ``auto`` uses an
        attached kernel for any batch, probes the disk cache once, and
        only pays a compile for batches large enough to amortize it.
        """
        if mode == "numpy" or self.feature[0] < 0:
            return None
        if self._native is not None:
            return self._native
        if self._native_failed:
            return None
        want_compile = (
            mode == "native"
            or x.shape[0] >= _native.AUTO_COMPILE_MIN_ROWS
        )
        if not want_compile and self._native_probed:
            return None
        return self.native_kernel(compile=want_compile)

    def _native_disable(self) -> None:
        """A kernel call blew up mid-serve: drop to numpy permanently
        for this tree and make the degradation metrics-visible."""
        self._native = None
        self._native_failed = True
        _native._bump("load_failures")
        _native._note_error("kernel call failed mid-batch")

    def _count_numpy(self, rows: int, mode: str) -> None:
        self.backend_stats["numpy_rows"] += rows
        # Only count a *fallback* when native was expected: forced
        # native mode, or auto mode after a failed compile/load.  Auto
        # deciding a small batch isn't worth a compile is policy, not
        # degradation.
        if mode == "native" or (mode == "auto" and self._native_failed):
            self.backend_stats["fallback_rows"] += rows
            _native.note_fallback(rows)

    # -- vectorized inference --------------------------------------------
    def apply(self, x: np.ndarray,
              backend: Optional[str] = None) -> np.ndarray:
        """Leaf id (preorder index) each row lands in, fully vectorized.

        Level-wise index propagation: every iteration advances all rows
        still at an internal node one level down; rows that reached a
        leaf drop out.  Comparison semantics match the legacy per-row
        walk exactly (``<`` goes left, everything else — including NaN —
        goes right).

        ``backend`` selects the engine per call: ``"numpy"`` (the walks
        below), ``"native"`` (the compiled kernel, falling back to numpy
        if unavailable), or ``"auto"``; None defers to
        ``REPRO_TREE_BACKEND`` and defaults to auto.  Every backend
        returns bit-identical leaf ids.
        """
        x = np.ascontiguousarray(np.asarray(x, dtype=float))
        if x.ndim != 2:
            raise ValueError("apply expects a 2-D matrix")
        n = x.shape[0]
        if self.feature[0] < 0:
            self.backend_stats["numpy_rows"] += n
            return np.zeros(n, dtype=np.intp)
        mode = _native.backend_mode(backend)
        kernel = self._backend_kernel(x, mode)
        if kernel is not None:
            try:
                out = kernel.apply(x)
            except Exception:  # noqa: BLE001 - degrade, never fail serve
                self._native_disable()
            else:
                self.backend_stats["native_rows"] += n
                return out
        self._count_numpy(n, mode)
        if self.max_depth <= 64:
            return self._apply_dense(x)
        return self._apply_compacting(x)

    def _apply_dense(self, x: np.ndarray) -> np.ndarray:
        """Branch-free walk for shallow (balanced) trees.

        All rows advance ``max_depth`` levels through the dispatch
        tables; rows that reached a leaf early self-loop there, so no
        per-level leaf check or row compaction is needed.  Each level is
        four ``take`` gathers, one comparison, and one fused index
        computation over the full batch.
        """
        n, n_feat = x.shape
        x_flat = x.reshape(-1)
        row_base = np.arange(n, dtype=np.intp) * n_feat
        cur = np.zeros(n, dtype=np.intp)
        for _ in range(self.max_depth):
            flat_idx = self.feature_safe.take(cur)
            flat_idx += row_base
            vals = x_flat.take(flat_idx)
            # NaN compares false -> go right, matching the node walk.
            go_right = ~(vals < self.threshold.take(cur))
            cur *= 2
            cur += go_right
            cur = self.children_flat.take(cur)
        return cur

    def _apply_compacting(self, x: np.ndarray) -> np.ndarray:
        """Row-compacting walk for deep (chain-shaped) trees, where the
        dense walk would drag every finished row through thousands of
        no-op levels."""
        n = x.shape[0]
        out = np.zeros(n, dtype=np.intp)
        rows = np.arange(n, dtype=np.intp)
        cur = np.zeros(n, dtype=np.intp)
        feature = self.feature
        threshold = self.threshold
        left = self.children_left
        right = self.children_right
        while rows.size:
            go_left = x[rows, feature[cur]] < threshold[cur]
            cur = np.where(go_left, left[cur], right[cur])
            at_leaf = feature[cur] < 0
            if at_leaf.any():
                out[rows[at_leaf]] = cur[at_leaf]
                keep = ~at_leaf
                rows = rows[keep]
                cur = cur[keep]
        return out

    def leaf_values(self, x: np.ndarray,
                    backend: Optional[str] = None) -> np.ndarray:
        """Value vector of the leaf each row lands in."""
        return self.value[self.apply(x, backend=backend)]

    def predict_class(self, x: np.ndarray,
                      backend: Optional[str] = None) -> np.ndarray:
        """Argmax class per row via the precomputed per-leaf argmax.

        Bit-identical to ``np.argmax(leaf_values(x), axis=1)`` (numpy's
        argmax tie-breaking is applied once per node at build time), but
        skips the ``(n_rows, n_classes)`` intermediate entirely.  The
        native kernel bakes the same argmax table in, so its dedicated
        class entry point skips even the Python-side gather.
        """
        x = np.ascontiguousarray(np.asarray(x, dtype=float))
        if x.ndim == 2 and self.feature[0] >= 0:
            mode = _native.backend_mode(backend)
            kernel = self._backend_kernel(x, mode)
            if kernel is not None:
                try:
                    out = kernel.predict_class(x)
                except Exception:  # noqa: BLE001 - degrade transparently
                    self._native_disable()
                else:
                    self.backend_stats["native_rows"] += x.shape[0]
                    return out
        return self.value_argmax[self.apply(x, backend=backend)]

    def decision_path_length(self, x: np.ndarray,
                             backend: Optional[str] = None) -> np.ndarray:
        """Comparisons needed per row (the deployment latency proxy)."""
        return self.depths[self.apply(x, backend=backend)].astype(int)

    def visit_counts(self, x: np.ndarray) -> np.ndarray:
        """How many rows of ``x`` traverse each node (vectorized)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        counts = np.zeros(self.node_count, dtype=np.intp)
        n = x.shape[0]
        counts[0] = n
        idx = np.zeros(n, dtype=np.intp)
        rows = np.nonzero(self.feature[idx] >= 0)[0]
        while rows.size:
            cur = idx[rows]
            go_left = x[rows, self.feature[cur]] < self.threshold[cur]
            nxt = np.where(
                go_left, self.children_left[cur], self.children_right[cur]
            )
            idx[rows] = nxt
            np.add.at(counts, nxt, 1)
            rows = rows[self.feature[nxt] >= 0]
        return counts
