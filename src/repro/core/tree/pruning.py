"""Cost-complexity pruning (CCP), the paper's Step 3 (§3.2).

Weakest-link pruning: every internal node ``t`` has an effective alpha
``g(t) = (R(t) - R(T_t)) / (|leaves(T_t)| - 1)`` where ``R`` is the total
(weighted) impurity.  Repeatedly collapsing the node with the smallest
``g`` yields a nested subtree sequence; ``prune_to_leaves`` picks the
largest subtree within a leaf budget.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.tree.cart import Node, _BaseTree


def _subtree_stats(node: Node) -> Tuple[float, int]:
    """(total leaf impurity, leaf count) of the subtree (iterative, so
    degenerate chain trees deeper than the recursion limit are fine)."""
    total_r = 0.0
    total_n = 0
    stack = [node]
    while stack:
        current = stack.pop()
        if current.is_leaf:
            total_r += current.impurity
            total_n += 1
        else:
            stack.append(current.left)
            stack.append(current.right)
    return total_r, total_n


def _weakest_link(node: Node) -> Tuple[float, Node]:
    """(effective alpha, node) of the weakest internal node below."""
    best_alpha = float("inf")
    best_node = node
    stack = [node]
    while stack:
        current = stack.pop()
        if current.is_leaf:
            continue
        subtree_r, subtree_n = _subtree_stats(current)
        if subtree_n > 1:
            alpha = (current.impurity - subtree_r) / (subtree_n - 1)
            if alpha < best_alpha:
                best_alpha = alpha
                best_node = current
        stack.append(current.left)
        stack.append(current.right)
    return best_alpha, best_node


def cost_complexity_path(tree: _BaseTree) -> List[Tuple[float, int]]:
    """The (alpha, n_leaves) sequence of weakest-link pruning.

    Starts at (0, full size) and ends at the root stump.  Operates on a
    copy; the input tree is unchanged.
    """
    root = tree.root.copy()
    path = [(0.0, _subtree_stats(root)[1])]
    while not root.is_leaf:
        alpha, node = _weakest_link(root)
        node.feature = -1
        node.left = None
        node.right = None
        path.append((float(alpha), _subtree_stats(root)[1]))
    return path


def prune_to_leaves(tree: _BaseTree, max_leaves: int) -> _BaseTree:
    """Return a pruned copy with at most ``max_leaves`` leaves.

    This implements the paper's "prune the decision tree down to N leaf
    nodes" knob: weakest links are collapsed until the budget holds, so
    the retained structure is the one CCP considers most valuable.
    """
    if max_leaves < 1:
        raise ValueError("max_leaves must be positive")
    import copy

    pruned = copy.copy(tree)
    pruned.root = tree.root.copy()
    # The shallow copy shares the original's flat arrays; drop them before
    # mutating the node structure, then rebuild once pruning settles.
    pruned.invalidate_flat()
    while _subtree_stats(pruned.root)[1] > max_leaves:
        _, node = _weakest_link(pruned.root)
        node.feature = -1
        node.left = None
        node.right = None
    _ = pruned.flat  # rebuild eagerly so the engine is in sync
    return pruned
