"""Split-search engines for CART growth.

Three engines behind one interface, selected by the tree's ``splitter``
argument (and ``MetisConfig.splitter`` for the distillation loop):

* ``"legacy"`` — the seed algorithm: every node re-argsorts every feature
  column and allocates fresh cumulative-statistic arrays.  Kept verbatim
  (modulo the midpoint bugfix below) as the *equivalence oracle* for the
  presorted engine, mirroring how ``cart._leaf_values_nodes`` anchors the
  flat inference engine.
* ``"presorted"`` — the default.  Each feature is argsorted **once** at
  the root; children inherit sorted order through a stable boolean-mask
  partition of a shared order matrix (sklearn's splitter strategy), and
  cumulative-statistic workspaces are preallocated once and reused by
  every node.  Produces **bit-identical** trees to ``"legacy"``: same
  sample order inside every node, same floating-point accumulation
  order, same tie-breaking (first feature, first boundary).
* ``"hist"`` — LightGBM-style histogram splitter for large fits: feature
  values are quantized once into <= ``hist_bins`` quantile bins, and each
  node scans per-bin weighted statistics (one ``bincount`` per feature)
  instead of sorted prefixes.  Thresholds are bin edges, so trees are
  approximate — use it when ``n`` is large and exactness is not needed.

All engines share the node-handle protocol driven by ``_BaseTree.fit``:

``root_handle()``          opaque handle for the full training set
``node_rows(handle)``      ascending row indices of the node's samples
``n_node_samples(handle)`` sample count (cheap, no materialization)
``find_split(handle, node)``  best :class:`SplitCandidate` or ``None``
``apply_split(handle, cand)`` partition into (left, right) handles

``find_split`` is called when a node becomes a split *candidate* (heap
push); ``apply_split`` only when best-first growth actually expands it
(heap pop), so unexpanded leaves never pay for a partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "SplitCandidate",
    "ExactSplitter",
    "PresortedSplitter",
    "HistogramSplitter",
    "SPLITTERS",
    "make_splitter",
    "safe_midpoint",
]


def safe_midpoint(lo: float, hi: float) -> float:
    """A split threshold strictly inside ``(lo, hi]`` for ``lo < hi``.

    ``0.5 * (lo + hi)`` can round *down* to ``lo`` when the two values are
    adjacent floats (e.g. ``lo=1.0``, ``hi=np.nextafter(1.0, 2.0)``).  A
    threshold equal to ``lo`` sends the boundary samples right under the
    ``x < t`` convention, desynchronizing the realized partition from the
    one whose gain was measured — in the worst case producing an *empty*
    left child.  Clamp to the smallest float above ``lo`` instead.

    Averaged as ``0.5*lo + 0.5*hi`` (not ``0.5*(lo + hi)``) so two huge
    same-sign values cannot overflow the sum to ``inf``.
    """
    mid = 0.5 * lo + 0.5 * hi
    if mid <= lo:
        mid = np.nextafter(lo, hi)
    elif mid > hi:  # denormal-rounding paranoia: stay inside (lo, hi]
        mid = hi
    return float(mid)


@dataclass(frozen=True)
class SplitCandidate:
    """One proposed node split (payload is splitter-private)."""

    gain: float
    feature: int
    threshold: float
    payload: object = None


class _SplitterBase:
    """Shared state: training matrix, encoded targets, weights, criterion.

    The *criterion* is the tree itself — splitters call its
    ``_impurity_vec`` hook so Gini/variance stay defined in one place.
    """

    def __init__(
        self,
        tree,
        x: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        self.tree = tree
        self.x = x
        self.targets = targets
        self.weights = weights
        self.n, self.n_features = x.shape
        self.min_leaf = tree.min_samples_leaf
        # True when every weight is exactly 1.0: multiplying by the weight
        # column is then a bitwise no-op and can be skipped.
        self.uniform_weights = bool(np.all(weights == 1.0))

    def root_handle(self):
        raise NotImplementedError

    def node_rows(self, handle) -> np.ndarray:
        raise NotImplementedError

    def n_node_samples(self, handle) -> int:
        raise NotImplementedError

    def find_split(self, handle, node) -> Optional[SplitCandidate]:
        raise NotImplementedError

    def apply_split(self, handle, cand: SplitCandidate):
        raise NotImplementedError


class ExactSplitter(_SplitterBase):
    """Per-node re-sorting exact search (the seed's ``_best_split``).

    Handles are ascending row-index arrays.  Every call re-sorts every
    feature column of the node — O(F·m log m) per node — which is exactly
    why the presorted engine exists; this implementation is retained as
    the bit-for-bit oracle (see ``tests/test_splitter_equivalence.py``).
    """

    def root_handle(self):
        return np.arange(self.n)

    def node_rows(self, handle) -> np.ndarray:
        return handle

    def n_node_samples(self, handle) -> int:
        return int(handle.size)

    def find_split(self, idx, node) -> Optional[SplitCandidate]:
        x, targets, weights = self.x, self.targets, self.weights
        xs = x[idx]
        t = targets[idx]
        w = weights[idx]
        parent_impurity = node.impurity
        best_gain = 0.0
        best: Optional[SplitCandidate] = None
        min_leaf = self.min_leaf
        impurity_vec = self.tree._impurity_vec
        for feature in range(self.n_features):
            col = xs[:, feature]
            order = np.argsort(col, kind="stable")
            cs = col[order]
            # Candidate boundaries: positions where the value changes.
            diff = np.nonzero(cs[1:] > cs[:-1])[0]
            if diff.size == 0:
                continue
            tw = t[order] * w[order, None]
            cum_sum = np.cumsum(tw, axis=0)
            cum_sq = np.cumsum((t[order] ** 2) * w[order, None], axis=0)
            cum_w = np.cumsum(w[order])
            total_sum = cum_sum[-1]
            total_sq = cum_sq[-1]
            total_w = cum_w[-1]
            # Left side ends at position p (inclusive) for p in diff.
            valid = diff[
                (diff + 1 >= min_leaf) & (cs.size - diff - 1 >= min_leaf)
            ]
            if valid.size == 0:
                continue
            lw = cum_w[valid]
            rw = total_w - lw
            l_imp = impurity_vec(cum_sum[valid], cum_sq[valid], lw)
            r_imp = impurity_vec(
                total_sum - cum_sum[valid], total_sq - cum_sq[valid], rw
            )
            gains = parent_impurity - (l_imp + r_imp)
            arg = int(np.argmax(gains))
            if gains[arg] > best_gain:
                p = valid[arg]
                threshold = safe_midpoint(float(cs[p]), float(cs[p + 1]))
                mask = col < threshold
                best_gain = float(gains[arg])
                best = SplitCandidate(
                    gain=best_gain,
                    feature=feature,
                    threshold=threshold,
                    payload=(idx[mask], idx[~mask]),
                )
        return best

    def apply_split(self, idx, cand: SplitCandidate):
        return cand.payload


class PresortedSplitter(_SplitterBase):
    """Argsort-once splitter with stable partition propagation.

    State:

    * ``order`` — an ``(F, n)`` matrix; row ``f`` holds all sample ids in
      feature-``f`` sorted order, stably partitioned in place as nodes
      split.  A node is a contiguous column range ``[a, b)`` shared by
      every row.
    * ``id_order`` — the same range structure but holding sample ids in
      *ascending original order* inside each node, so node statistics are
      accumulated in exactly the order the legacy splitter used (bitwise
      reproducibility of impurities and leaf values).
    * preallocated workspaces for the per-node cumulative statistics, so
      steady-state fitting does no large allocations.

    Bit-identity argument: a stable root argsort followed by stable
    partitions yields, inside any node, the same permutation a stable
    argsort of that node's rows would — values tie-broken by original row
    index — so every prefix statistic matches the legacy engine float for
    float, and identical tie-breaking picks identical splits.
    """

    def __init__(self, tree, x, targets, weights) -> None:
        super().__init__(tree, x, targets, weights)
        n, n_features = self.n, self.n_features
        k = targets.shape[1]
        # (F, n) sorted orders, contiguous rows for fast range slicing.
        self.order = np.ascontiguousarray(
            np.argsort(x, axis=0, kind="stable").T
        )
        self.id_order = np.arange(n)
        # Contiguous per-feature value columns (gathers hit one cache line
        # stream instead of striding across the row-major matrix).
        self.xcols = np.ascontiguousarray(x.T)
        self.needs_sq = getattr(tree, "_needs_sq", True)
        # Workspaces reused by every find_split/apply_split call.
        self._ws_val = np.empty(n)
        self._ws_t = np.empty((n, k))
        self._ws_tw = np.empty((n, k))
        self._ws_cum = np.empty((n, k))
        self._ws_w = np.empty(n)
        self._ws_cw = np.empty(n)
        if self.needs_sq:
            self._ws_sq = np.empty((n, k))
            self._ws_cumsq = np.empty((n, k))
        # cumsum of unit weights is exact in float64: precompute once.
        self._unit_cum = np.arange(1, n + 1, dtype=float)
        self._left_mark = np.zeros(n, dtype=bool)

    def root_handle(self):
        return (0, self.n)

    def node_rows(self, handle) -> np.ndarray:
        a, b = handle
        return self.id_order[a:b]

    def n_node_samples(self, handle) -> int:
        a, b = handle
        return b - a

    def find_split(self, handle, node) -> Optional[SplitCandidate]:
        a, b = handle
        m = b - a
        parent_impurity = node.impurity
        best_gain = 0.0
        best: Optional[SplitCandidate] = None
        min_leaf = self.min_leaf
        impurity_vec = self.tree._impurity_vec
        targets, weights = self.targets, self.weights
        uniform = self.uniform_weights
        for feature in range(self.n_features):
            s = self.order[feature, a:b]
            cs = np.take(self.xcols[feature], s, out=self._ws_val[:m])
            diff = np.nonzero(cs[1:] > cs[:-1])[0]
            if diff.size == 0:
                continue
            valid = diff[(diff + 1 >= min_leaf) & (m - diff - 1 >= min_leaf)]
            if valid.size == 0:
                continue
            ts = np.take(targets, s, axis=0, out=self._ws_t[:m])
            if uniform:
                tw = ts  # t * 1.0 is bitwise t: skip the multiply
                cum_w = self._unit_cum[:m]
            else:
                ws = np.take(weights, s, out=self._ws_w[:m])
                tw = np.multiply(ts, ws[:, None], out=self._ws_tw[:m])
                cum_w = np.cumsum(ws, out=self._ws_cw[:m])
            cum_sum = np.cumsum(tw, axis=0, out=self._ws_cum[:m])
            if self.needs_sq:
                sq = np.multiply(ts, ts, out=self._ws_sq[:m])
                if not uniform:
                    sq = np.multiply(sq, ws[:, None], out=sq)
                cum_sq = np.cumsum(sq, axis=0, out=self._ws_cumsq[:m])
                total_sq = cum_sq[-1]
                l_sq = cum_sq[valid]
                r_sq = total_sq - l_sq
            else:
                # Gini never reads the squared channel; skip it entirely
                # (the legacy engine computes it redundantly).
                l_sq = r_sq = None
            total_sum = cum_sum[-1]
            total_w = cum_w[-1]
            lw = cum_w[valid]
            rw = total_w - lw
            l_imp = impurity_vec(cum_sum[valid], l_sq, lw)
            r_imp = impurity_vec(total_sum - cum_sum[valid], r_sq, rw)
            gains = parent_impurity - (l_imp + r_imp)
            arg = int(np.argmax(gains))
            if gains[arg] > best_gain:
                p = valid[arg]
                best_gain = float(gains[arg])
                best = SplitCandidate(
                    gain=best_gain,
                    feature=feature,
                    threshold=safe_midpoint(float(cs[p]), float(cs[p + 1])),
                )
        return best

    def apply_split(self, handle, cand: SplitCandidate):
        a, b = handle
        rows = self.id_order[a:b]
        go_left = self.x[rows, cand.feature] < cand.threshold
        n_left = int(np.count_nonzero(go_left))
        mark = self._left_mark
        mark[rows] = go_left
        # Stable partition of every feature's order (and the identity
        # order) inside [a, b): left block keeps sorted order, then right.
        for f in range(self.n_features):
            s = self.order[f, a:b].copy()
            g = mark[s]
            self.order[f, a:a + n_left] = s[g]
            self.order[f, a + n_left:b] = s[~g]
        rows = rows.copy()
        self.id_order[a:a + n_left] = rows[go_left]
        self.id_order[a + n_left:b] = rows[~go_left]
        mark[rows] = False  # reset scratch for the next split
        return (a, a + n_left), (a + n_left, b)


class HistogramSplitter(_SplitterBase):
    """Quantile-binned split search (LightGBM-style, approximate).

    Feature values are quantized **once** into at most ``n_bins`` bins
    whose edges are empirical quantiles of the training column.  A node's
    split search then builds per-bin weighted statistics with one
    ``bincount`` pass per feature — O(F·(m + bins·K)) per node, no
    sorting — and scans bin boundaries as candidate thresholds.

    Thresholds are bin *edges*, so by construction the comparison
    ``x < threshold`` realizes exactly the scanned bin partition; trees
    are approximate only in that intra-bin boundaries are never offered.
    """

    def __init__(self, tree, x, targets, weights, n_bins: int = 256) -> None:
        super().__init__(tree, x, targets, weights)
        if n_bins < 2:
            raise ValueError("hist splitter needs at least 2 bins")
        self.n_bins = n_bins
        n, n_features = self.n, self.n_features
        k = targets.shape[1]
        self.classification = not getattr(tree, "_needs_sq", True)
        self.edges = []
        codes = np.empty((n_features, n), dtype=np.int64)
        qs = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
        for f in range(n_features):
            col = x[:, f]
            edges = np.unique(np.quantile(col, qs))
            # Edges equal to the column minimum can never separate
            # anything (empty left side) — drop them.
            edges = edges[edges > col.min()]
            self.edges.append(edges)
            # code(x) = #edges <= x, so code(x) <= j  <=>  x < edges[j].
            codes[f] = np.searchsorted(edges, col, side="right")
        # One shared bin axis of width B (the widest feature); narrower
        # features simply never populate their tail bins, and pad_valid
        # masks their nonexistent boundaries out of the scan.
        b = int(max(e.size for e in self.edges)) + 1 if n_features else 1
        self.b = b
        self.pad_valid = np.zeros((n_features, max(b - 1, 0)), dtype=bool)
        for f in range(n_features):
            self.pad_valid[f, : self.edges[f].size] = True
        # Feature (and, for classification, class) offsets are baked into
        # the code matrix so one node-level gather + bincount builds the
        # joint histogram of every feature at once.
        offsets = (np.arange(n_features, dtype=np.int64) * b)[:, None]
        if self.classification:
            self.codes_all = (codes + offsets) * k
            self.labels = np.argmax(targets, axis=1)
        else:
            self.codes_all = codes + offsets

    def root_handle(self):
        return np.arange(self.n)

    def node_rows(self, handle) -> np.ndarray:
        return handle

    def n_node_samples(self, handle) -> int:
        return int(handle.size)

    def find_split(self, idx, node) -> Optional[SplitCandidate]:
        m = idx.size
        n_features, b = self.n_features, self.b
        if b < 2:
            return None  # every feature is constant
        k = self.targets.shape[1]
        min_leaf = self.min_leaf
        impurity_vec = self.tree._impurity_vec
        uniform = self.uniform_weights
        w_node = None if uniform else self.weights[idx]
        keys = self.codes_all[:, idx]  # (F, m), offsets baked in
        if self.classification:
            flat = (keys + self.labels[idx]).ravel()
            length = n_features * b * k
            if uniform:
                joint = np.bincount(flat, minlength=length)
                joint = joint.reshape(n_features, b, k).astype(float)
                hist_n = hist_w = joint.sum(axis=2)
            else:
                wtile = np.broadcast_to(w_node, (n_features, m)).ravel()
                joint = np.bincount(
                    flat, weights=wtile, minlength=length
                ).reshape(n_features, b, k)
                hist_n = np.bincount(flat, minlength=length)
                hist_n = hist_n.reshape(n_features, b, k).sum(axis=2)
                hist_w = joint.sum(axis=2)
            hist_sq = None
        else:
            flat = keys.ravel()
            length = n_features * b
            hist_n = np.bincount(flat, minlength=length)
            hist_n = hist_n.reshape(n_features, b).astype(float)
            if uniform:
                hist_w = hist_n
                tw_node = self.targets[idx]
            else:
                wtile = np.broadcast_to(w_node, (n_features, m)).ravel()
                hist_w = np.bincount(
                    flat, weights=wtile, minlength=length
                ).reshape(n_features, b)
                tw_node = self.targets[idx] * w_node[:, None]
            sq_w = self.targets[idx] * tw_node  # t^2 or w * t^2 per output
            joint = np.empty((n_features, b, k))
            hist_sq = np.empty((n_features, b, k))
            for out_dim in range(k):
                wt = np.broadcast_to(tw_node[:, out_dim], (n_features, m))
                joint[:, :, out_dim] = np.bincount(
                    flat, weights=wt.ravel(), minlength=length
                ).reshape(n_features, b)
                ws = np.broadcast_to(sq_w[:, out_dim], (n_features, m))
                hist_sq[:, :, out_dim] = np.bincount(
                    flat, weights=ws.ravel(), minlength=length
                ).reshape(n_features, b)
        # Split j of feature f keeps bins 0..j left (x < edges[f][j]).
        cum_n = np.cumsum(hist_n[:, :-1], axis=1)  # (F, B-1)
        valid = self.pad_valid & (cum_n >= min_leaf) & (m - cum_n >= min_leaf)
        if not valid.any():
            return None
        cum_w = np.cumsum(hist_w[:, :-1], axis=1)
        cum_sum = np.cumsum(joint[:, :-1, :], axis=1)  # (F, B-1, k)
        total_w = hist_w.sum(axis=1)  # (F,)
        total_sum = joint.sum(axis=1)  # (F, k)
        shape = cum_w.shape
        if hist_sq is not None:
            cum_sq = np.cumsum(hist_sq[:, :-1, :], axis=1)
            total_sq = hist_sq.sum(axis=1)
            l_sq = cum_sq.reshape(-1, k)
            r_sq = (total_sq[:, None, :] - cum_sq).reshape(-1, k)
        else:
            l_sq = r_sq = None
        l_imp = impurity_vec(
            cum_sum.reshape(-1, k), l_sq, cum_w.ravel()
        ).reshape(shape)
        r_imp = impurity_vec(
            (total_sum[:, None, :] - cum_sum).reshape(-1, k),
            r_sq,
            (total_w[:, None] - cum_w).ravel(),
        ).reshape(shape)
        gains = node.impurity - (l_imp + r_imp)
        gains[~valid] = -np.inf
        best_flat = int(np.argmax(gains))  # row-major: lowest feature first
        feature, j = divmod(best_flat, shape[1])
        gain = float(gains[feature, j])
        if gain <= 0.0:
            return None
        return SplitCandidate(
            gain=gain,
            feature=int(feature),
            threshold=float(self.edges[feature][j]),
        )

    def apply_split(self, idx, cand: SplitCandidate):
        mask = self.x[idx, cand.feature] < cand.threshold
        return idx[mask], idx[~mask]


SPLITTERS = ("legacy", "presorted", "hist")


def make_splitter(
    name: str,
    tree,
    x: np.ndarray,
    targets: np.ndarray,
    weights: np.ndarray,
) -> _SplitterBase:
    """Instantiate the split engine ``name`` for one ``fit`` call."""
    if name == "legacy":
        return ExactSplitter(tree, x, targets, weights)
    if name == "presorted":
        return PresortedSplitter(tree, x, targets, weights)
    if name == "hist":
        return HistogramSplitter(
            tree, x, targets, weights, n_bins=tree.hist_bins
        )
    raise ValueError(
        f"unknown splitter {name!r}; expected one of {SPLITTERS}"
    )
