"""Generate branch-only source code from a decision tree.

§6.4's on-device story: decision trees compile to pure branching clauses
(no floating-point tensor ops), which is what made the Metis+AuTO-lRLA
policy deployable on a Netronome SmartNIC in ~1,000 LoC.  This module
emits that artifact: a self-contained C function (or Python function)
implementing the tree as nested ``if``/``else``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.tree.cart import DecisionTreeClassifier, Node, _BaseTree


def tree_to_c(
    tree: _BaseTree,
    function_name: str = "decide",
    feature_names: Optional[Sequence[str]] = None,
) -> str:
    """Emit a C function ``int decide(const double *x)``.

    Classification trees return the argmax class; regression trees are
    not supported (device offload targets discrete actions).
    """
    if not isinstance(tree, DecisionTreeClassifier):
        raise TypeError("code generation targets classification trees")
    if tree.root is None:
        raise RuntimeError("tree is not fitted")
    lines: List[str] = [
        f"/* generated from a {tree.n_leaves}-leaf decision tree */",
        f"int {function_name}(const double *x) {{",
    ]
    _emit_c(tree.root, lines, indent=1, feature_names=feature_names)
    lines.append("}")
    return "\n".join(lines)


def _emit_c(node: Node, lines: List[str], indent: int, feature_names) -> None:
    pad = "    " * indent
    if node.is_leaf:
        action = int(np.argmax(node.value))
        lines.append(f"{pad}return {action};")
        return
    comment = ""
    if feature_names is not None and node.feature < len(feature_names):
        comment = f"  /* {feature_names[node.feature]} */"
    lines.append(
        f"{pad}if (x[{node.feature}] < {node.threshold!r}) {{{comment}"
    )
    _emit_c(node.left, lines, indent + 1, feature_names)
    lines.append(f"{pad}}} else {{")
    _emit_c(node.right, lines, indent + 1, feature_names)
    lines.append(f"{pad}}}")


def tree_to_python(
    tree: _BaseTree, function_name: str = "decide"
) -> str:
    """Emit a dependency-free Python function implementing the tree.

    The result ``exec``s to a callable taking one indexable sample; tests
    verify it agrees with ``tree.predict`` exactly.
    """
    if not isinstance(tree, DecisionTreeClassifier):
        raise TypeError("code generation targets classification trees")
    if tree.root is None:
        raise RuntimeError("tree is not fitted")
    lines = [f"def {function_name}(x):"]
    _emit_python(tree.root, lines, indent=1)
    return "\n".join(lines)


def _emit_python(node: Node, lines: List[str], indent: int) -> None:
    pad = "    " * indent
    if node.is_leaf:
        lines.append(f"{pad}return {int(np.argmax(node.value))}")
        return
    lines.append(f"{pad}if x[{node.feature}] < {node.threshold!r}:")
    _emit_python(node.left, lines, indent + 1)
    lines.append(f"{pad}else:")
    _emit_python(node.right, lines, indent + 1)


def compile_python(tree: _BaseTree, function_name: str = "decide"):
    """Exec the generated Python and return the callable."""
    source = tree_to_python(tree, function_name)
    namespace: dict = {}
    exec(source, namespace)  # noqa: S102 - our own generated code
    return namespace[function_name]


def loc_estimate(tree: _BaseTree) -> int:
    """Lines of generated C (the paper quotes ~1,000 LoC on the NIC)."""
    internal = tree.node_count - tree.n_leaves
    # Each internal node: if + else + closing brace; each leaf: return.
    return 3 * internal + tree.n_leaves + 3
