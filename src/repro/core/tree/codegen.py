"""Generate branch-only source code from a decision tree.

§6.4's on-device story: decision trees compile to pure branching clauses
(no floating-point tensor ops), which is what made the Metis+AuTO-lRLA
policy deployable on a Netronome SmartNIC in ~1,000 LoC.  This module
emits that artifact: a self-contained C function (or Python function)
implementing the tree as nested ``if``/``else``.

Emission walks the flat array form (``tree.flat``) with an explicit
stack, so pathologically deep trees compile without hitting Python's
recursion limit.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.tree.cart import DecisionTreeClassifier, _BaseTree
from repro.core.tree.flat import FlatTree


def tree_to_c(
    tree: _BaseTree,
    function_name: str = "decide",
    feature_names: Optional[Sequence[str]] = None,
) -> str:
    """Emit a C function ``int decide(const double *x)``.

    Classification trees return the argmax class; regression trees are
    not supported (device offload targets discrete actions).
    """
    if not isinstance(tree, DecisionTreeClassifier):
        raise TypeError("code generation targets classification trees")
    if tree.root is None:
        raise RuntimeError("tree is not fitted")
    flat = tree.flat
    lines: List[str] = [
        f"/* generated from a {flat.n_leaves}-leaf decision tree */",
        f"int {function_name}(const double *x) {{",
    ]
    _emit(flat, lines, style="c", feature_names=feature_names)
    lines.append("}")
    return "\n".join(lines)


def tree_to_python(
    tree: _BaseTree, function_name: str = "decide"
) -> str:
    """Emit a dependency-free Python function implementing the tree.

    The result ``exec``s to a callable taking one indexable sample; tests
    verify it agrees with ``tree.predict`` exactly.
    """
    if not isinstance(tree, DecisionTreeClassifier):
        raise TypeError("code generation targets classification trees")
    if tree.root is None:
        raise RuntimeError("tree is not fitted")
    lines = [f"def {function_name}(x):"]
    _emit(tree.flat, lines, style="python", feature_names=None)
    return "\n".join(lines)


def _emit(
    flat: FlatTree,
    lines: List[str],
    style: str,
    feature_names: Optional[Sequence[str]],
) -> None:
    """Append the nested if/else body, iteratively over the flat arrays.

    The stack holds ("node", idx, indent) frames interleaved with
    ("text", literal, 0) frames for the closing/else lines, which keeps
    the exact output shape of the old recursive emitter.
    """
    stack: List[tuple] = [("node", 0, 1)]
    while stack:
        op, payload, indent = stack.pop()
        if op == "text":
            lines.append(payload)
            continue
        i = payload
        pad = "    " * indent
        if flat.feature[i] < 0:
            action = int(np.argmax(flat.value[i]))
            if style == "c":
                lines.append(f"{pad}return {action};")
            else:
                lines.append(f"{pad}return {action}")
            continue
        feature = int(flat.feature[i])
        threshold = float(flat.threshold[i])
        left = int(flat.children_left[i])
        right = int(flat.children_right[i])
        if style == "c":
            comment = ""
            if feature_names is not None and feature < len(feature_names):
                comment = f"  /* {feature_names[feature]} */"
            lines.append(
                f"{pad}if (x[{feature}] < {threshold!r}) {{{comment}"
            )
            stack.append(("text", f"{pad}}}", 0))
            stack.append(("node", right, indent + 1))
            stack.append(("text", f"{pad}}} else {{", 0))
            stack.append(("node", left, indent + 1))
        else:
            lines.append(f"{pad}if x[{feature}] < {threshold!r}:")
            stack.append(("node", right, indent + 1))
            stack.append(("text", f"{pad}else:", 0))
            stack.append(("node", left, indent + 1))


def compile_python(tree: _BaseTree, function_name: str = "decide"):
    """Exec the generated Python and return the callable."""
    source = tree_to_python(tree, function_name)
    namespace: dict = {}
    exec(source, namespace)  # noqa: S102 - our own generated code
    return namespace[function_name]


def loc_estimate(tree: _BaseTree) -> int:
    """Lines of generated C (the paper quotes ~1,000 LoC on the NIC)."""
    internal = tree.node_count - tree.n_leaves
    # Each internal node: if + else + closing brace; each leaf: return.
    return 3 * internal + tree.n_leaves + 3
