"""Decision trees from scratch: CART growth, cost-complexity pruning,
flat-array inference, and human-readable export (the paper's Fig. 7
rendering).

Two representations, two jobs:

* **Linked ``Node`` objects** — the *build-time* structure.  Best-first
  growth (``cart.py``, split search pluggable via ``splitter.py``:
  presorted exact, legacy exact, or quantile-binned histogram) and
  weakest-link pruning (``pruning.py``) mutate nodes in place; nothing
  else should traverse them on a hot path.
* **``FlatTree``** — the *inference engine*.  ``fit()`` flattens the
  finished tree into contiguous numpy arrays (sklearn ``tree_`` style)
  and every ``predict`` / ``predict_proba`` / ``apply`` /
  ``decision_path_length`` call runs level-wise vectorized index
  propagation over them; serialization and code generation emit straight
  from the arrays.

``FlatTree`` layout — all arrays have length ``node_count`` and use
**preorder** ids (a node is followed by its whole left subtree, then its
right subtree; the root is id 0):

====================  =================================================
``feature``           split feature per node; ``-1`` marks a leaf
``threshold``         split point; ``x[feature] < threshold`` goes left
``children_left``     left-child node id (``-1`` for leaves)
``children_right``    right-child node id (``-1`` for leaves)
``value``             ``(node_count, n_outputs)`` class distribution or
                      mean output per node
``n_samples``         weighted sample count reaching each node
``impurity``          weighted impurity per node
``depths``            derived: comparisons from the root to each node
====================  =================================================

Code that mutates the linked nodes after ``fit`` (pruning, manual
surgery) must call ``tree.invalidate_flat()`` so the arrays are rebuilt
in sync on the next inference call.

``FlatTree`` inference additionally has a *compiled* backend
(``native.py``): a per-tree branchless C kernel built with the platform
compiler, content-hash cached, and selected per call via
``backend="numpy"|"native"|"auto"`` (or ``REPRO_TREE_BACKEND``), with
transparent numpy fallback when no compiler is available.
"""

from repro.core.tree import native
from repro.core.tree.cart import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    Node,
)
from repro.core.tree.flat import FlatTree
from repro.core.tree.pruning import cost_complexity_path, prune_to_leaves
from repro.core.tree.export import render_text, tree_to_dict, tree_from_dict
from repro.core.tree.splitter import SPLITTERS, safe_midpoint

__all__ = [
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "FlatTree",
    "Node",
    "SPLITTERS",
    "native",
    "cost_complexity_path",
    "prune_to_leaves",
    "render_text",
    "safe_midpoint",
    "tree_to_dict",
    "tree_from_dict",
]
