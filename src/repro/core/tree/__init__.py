"""Decision trees from scratch: CART growth, cost-complexity pruning,
and human-readable export (the paper's Fig. 7 rendering)."""

from repro.core.tree.cart import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    Node,
)
from repro.core.tree.pruning import cost_complexity_path, prune_to_leaves
from repro.core.tree.export import render_text, tree_to_dict, tree_from_dict

__all__ = [
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "Node",
    "cost_complexity_path",
    "prune_to_leaves",
    "render_text",
    "tree_to_dict",
    "tree_from_dict",
]
