"""Human-readable and serializable tree export.

``render_text`` reproduces the paper's Fig. 7 view: the top layers of the
distilled tree with decision variables in natural units, annotated with
how often each node is visited and which actions dominate beneath it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.tree.cart import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    Node,
    _BaseTree,
)


def render_text(
    tree: _BaseTree,
    feature_names: Optional[Sequence[str]] = None,
    max_depth: Optional[int] = 4,
    action_names: Optional[Sequence[str]] = None,
    visit_states: Optional[np.ndarray] = None,
) -> str:
    """Render the top ``max_depth`` layers as indented text.

    Args:
        tree: a fitted tree.
        feature_names: names for split features (defaults to ``x[i]``).
        max_depth: layers to show (None = all).
        action_names: labels for classifier outputs (e.g. bitrates).
        visit_states: optional dataset; when given, each shown node is
            annotated with the fraction of these states that traverse it
            (the paper's "visit frequency" shading).
    """
    if tree.root is None:
        raise RuntimeError("tree is not fitted")
    visits: Optional[Dict[int, float]] = None
    if visit_states is not None:
        visits = _visit_fractions(tree, np.atleast_2d(visit_states))

    lines: List[str] = []

    def name_of(idx: int) -> str:
        if feature_names is not None and 0 <= idx < len(feature_names):
            return feature_names[idx]
        return f"x[{idx}]"

    def describe_leaf(node: Node) -> str:
        value = node.value
        if isinstance(tree, DecisionTreeClassifier):
            top = np.argsort(value)[::-1][:2]
            parts = []
            for a in top:
                if value[a] <= 0:
                    continue
                label = (
                    action_names[a]
                    if action_names is not None and a < len(action_names)
                    else f"a{a}"
                )
                parts.append(f"{label}:{value[a]:.0%}")
            return "predict " + ", ".join(parts) if parts else "predict ?"
        return "predict [" + ", ".join(f"{v:.3g}" for v in value) + "]"

    def walk(node: Node, depth: int, prefix: str) -> None:
        note = ""
        if visits is not None:
            note = f"  (visits {visits.get(id(node), 0.0):.1%})"
        if node.is_leaf or (max_depth is not None and depth >= max_depth):
            suffix = "" if node.is_leaf else "  [subtree pruned from view]"
            lines.append(f"{prefix}{describe_leaf(node)}{note}{suffix}")
            return
        lines.append(
            f"{prefix}{name_of(node.feature)} < {node.threshold:.3g}?{note}"
        )
        walk(node.left, depth + 1, prefix + "| yes: ")
        walk(node.right, depth + 1, prefix + "| no:  ")

    walk(tree.root, 0, "")
    return "\n".join(lines)


def _visit_fractions(tree: _BaseTree, x: np.ndarray) -> Dict[int, float]:
    total = x.shape[0]
    counts: Dict[int, int] = {}
    for row in range(total):
        node = tree.root
        while True:
            counts[id(node)] = counts.get(id(node), 0) + 1
            if node.is_leaf:
                break
            if x[row, node.feature] < node.threshold:
                node = node.left
            else:
                node = node.right
    return {k: v / max(total, 1) for k, v in counts.items()}


# ----------------------------------------------------------------------
def tree_to_dict(tree: _BaseTree) -> dict:
    """JSON-serializable representation (for on-device deployment)."""

    def encode(node: Node) -> dict:
        out = {
            "feature": node.feature,
            "threshold": node.threshold,
            "value": node.value.tolist(),
            "n_samples": node.n_samples,
            "impurity": node.impurity,
        }
        if not node.is_leaf:
            out["left"] = encode(node.left)
            out["right"] = encode(node.right)
        return out

    kind = (
        "classifier" if isinstance(tree, DecisionTreeClassifier) else "regressor"
    )
    meta = {"kind": kind, "n_features": tree.n_features}
    if kind == "classifier":
        meta["n_classes"] = tree.n_classes
    else:
        meta["n_outputs"] = getattr(tree, "n_outputs", 1)
    return {"meta": meta, "root": encode(tree.root)}


def tree_from_dict(data: dict) -> _BaseTree:
    """Inverse of :func:`tree_to_dict`."""

    def decode(obj: dict) -> Node:
        node = Node(
            feature=obj["feature"],
            threshold=obj["threshold"],
            value=np.asarray(obj["value"], dtype=float),
            n_samples=obj["n_samples"],
            impurity=obj["impurity"],
        )
        if "left" in obj:
            node.left = decode(obj["left"])
            node.right = decode(obj["right"])
        return node

    meta = data["meta"]
    if meta["kind"] == "classifier":
        tree: _BaseTree = DecisionTreeClassifier(n_classes=meta["n_classes"])
    else:
        tree = DecisionTreeRegressor()
        tree.n_outputs = meta.get("n_outputs", 1)
    tree.n_features = meta["n_features"]
    tree.root = decode(data["root"])
    return tree
