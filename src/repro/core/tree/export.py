"""Human-readable and serializable tree export.

``render_text`` reproduces the paper's Fig. 7 view: the top layers of the
distilled tree with decision variables in natural units, annotated with
how often each node is visited and which actions dominate beneath it.

Serialization emits the flat array form (``FlatTree``): a handful of
contiguous lists instead of a nested dict, so deep trees serialize
without recursion and deserialize straight into the inference engine.
The legacy nested ``{"root": {...}}`` format is still read.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.tree.cart import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    Node,
    _BaseTree,
)
from repro.core.tree.flat import FlatTree


def render_text(
    tree: _BaseTree,
    feature_names: Optional[Sequence[str]] = None,
    max_depth: Optional[int] = 4,
    action_names: Optional[Sequence[str]] = None,
    visit_states: Optional[np.ndarray] = None,
) -> str:
    """Render the top ``max_depth`` layers as indented text.

    Args:
        tree: a fitted tree.
        feature_names: names for split features (defaults to ``x[i]``).
        max_depth: layers to show (None = all).
        action_names: labels for classifier outputs (e.g. bitrates).
        visit_states: optional dataset; when given, each shown node is
            annotated with the fraction of these states that traverse it
            (the paper's "visit frequency" shading).
    """
    if tree.root is None:
        raise RuntimeError("tree is not fitted")
    flat = tree.flat
    visits: Optional[np.ndarray] = None
    if visit_states is not None:
        states = np.atleast_2d(np.asarray(visit_states, dtype=float))
        visits = flat.visit_counts(states) / max(states.shape[0], 1)

    lines: List[str] = []

    def name_of(idx: int) -> str:
        if feature_names is not None and 0 <= idx < len(feature_names):
            return feature_names[idx]
        return f"x[{idx}]"

    def describe_leaf(i: int) -> str:
        value = flat.value[i]
        if isinstance(tree, DecisionTreeClassifier):
            top = np.argsort(value)[::-1][:2]
            parts = []
            for a in top:
                if value[a] <= 0:
                    continue
                label = (
                    action_names[a]
                    if action_names is not None and a < len(action_names)
                    else f"a{a}"
                )
                parts.append(f"{label}:{value[a]:.0%}")
            return "predict " + ", ".join(parts) if parts else "predict ?"
        return "predict [" + ", ".join(f"{v:.3g}" for v in value) + "]"

    # Explicit preorder stack (right pushed first) so the output order
    # matches the old recursive walk but deep trees cannot overflow.
    stack = [(0, 0, "")]
    while stack:
        i, depth, prefix = stack.pop()
        note = ""
        if visits is not None:
            note = f"  (visits {visits[i]:.1%})"
        is_leaf = flat.feature[i] < 0
        if is_leaf or (max_depth is not None and depth >= max_depth):
            suffix = "" if is_leaf else "  [subtree pruned from view]"
            lines.append(f"{prefix}{describe_leaf(i)}{note}{suffix}")
            continue
        lines.append(
            f"{prefix}{name_of(int(flat.feature[i]))} < "
            f"{flat.threshold[i]:.3g}?{note}"
        )
        stack.append((int(flat.children_right[i]), depth + 1,
                      prefix + "| no:  "))
        stack.append((int(flat.children_left[i]), depth + 1,
                      prefix + "| yes: "))
    return "\n".join(lines)


# ----------------------------------------------------------------------
def tree_to_dict(tree: _BaseTree) -> dict:
    """JSON-serializable representation (for on-device deployment).

    Emits the flat array layout (see ``repro.core.tree.flat``) — the
    same arrays the inference engine uses, so a deployment target can
    mmap/load them without touching the linked-node form.
    """
    if tree.root is None:
        raise RuntimeError("tree is not fitted")
    kind = (
        "classifier" if isinstance(tree, DecisionTreeClassifier) else "regressor"
    )
    meta = {"kind": kind, "n_features": tree.n_features}
    if kind == "classifier":
        meta["n_classes"] = tree.n_classes
    else:
        meta["n_outputs"] = getattr(tree, "n_outputs", 1)
    return {"meta": meta, "format": "flat-v1", "arrays": tree.flat.to_arrays()}


def tree_from_dict(data: dict) -> _BaseTree:
    """Inverse of :func:`tree_to_dict` (reads flat and legacy formats)."""
    meta = data["meta"]
    if meta["kind"] == "classifier":
        tree: _BaseTree = DecisionTreeClassifier(n_classes=meta["n_classes"])
    else:
        tree = DecisionTreeRegressor()
        tree.n_outputs = meta.get("n_outputs", 1)
    tree.n_features = meta["n_features"]

    if "arrays" in data:
        flat = FlatTree.from_arrays(data["arrays"])
        tree.root = flat.to_node()
        tree._flat = flat
        return tree

    # Legacy nested format.
    def decode(obj: dict) -> Node:
        node = Node(
            feature=obj["feature"],
            threshold=obj["threshold"],
            value=np.asarray(obj["value"], dtype=float),
            n_samples=obj["n_samples"],
            impurity=obj["impurity"],
        )
        if "left" in obj:
            node.left = decode(obj["left"])
            node.right = decode(obj["right"])
        return node

    tree.root = decode(data["root"])
    tree.invalidate_flat()
    return tree
