"""Compiled native batch-predict tier for :class:`FlatTree`.

The paper's deployability argument (§6.4) is that a distilled tree is
*compilable*: a few hundred branchless comparisons that run anywhere,
from a SmartNIC to a switch pipeline.  ``tree_to_c`` already emits the
per-decision nested if/else artifact for device offload; this module is
the *server-side* counterpart — a batch kernel compiled per artifact
with the platform C compiler and dlopened back into the process, so the
serving tier gets machine-code throughput without any new Python
dependency.

Kernel design (what ``emit_kernel_source`` generates):

* **breadth-first node layout** — nodes are renumbered level by level so
  the top of the tree, which every row traverses, packs into the first
  cache lines; sibling lookups in the hot early levels stay in L1;
* **compact tables** — ``int16`` feature ids, ``int32`` packed children
  (``KIDS[2*node + go_right]``, leaves self-loop exactly like
  ``FlatTree.children_flat``), thresholds stored as ``float`` when every
  split point survives a float32 round-trip losslessly (the comparison
  still happens in double, so quantization never changes a decision) and
  ``double`` otherwise;
* **a branchless interleaved walk** — eight rows advance in lockstep
  through the dispatch tables (one dependent-load chain per row, eight
  chains in flight for ILP), with the depth loop partially unrolled;
  trees deeper than the dense cutoff fall back to a per-row sentinel
  walk (same shape as ``FlatTree._apply_compacting``);
* **preorder outputs** — ``repro_predict_batch`` writes the *preorder*
  leaf id per row (the BFS->preorder map is baked into the kernel), so
  every Python-side gather (``value``, ``value_argmax``) is bit-for-bit
  identical to the numpy backend by construction.
  ``repro_predict_class`` additionally bakes in the per-node argmax
  table for gather-free classification.

Compiled objects are cached under ``~/.cache/repro-kernels/<hash>.so``
(override with ``REPRO_KERNEL_CACHE``), keyed by a content hash over the
emitted tables plus the kernel ABI version — recompiles of the same tree
are free and every worker process dlopens the same binary.  Writes are
atomic (tempfile + ``os.replace``, the ``teachers/cache`` pattern) so
concurrent publishes of the same artifact can never tear a ``.so``, and
the cache is LRU-pruned by mtime (``REPRO_KERNEL_CACHE_LIMIT``, default
128 kernels).

Everything here is best-effort by contract: no compiler, a compile
error, a hash mismatch at dlopen, or a corrupt cache entry must degrade
to the numpy backend with a counter bump (:func:`native_stats`), never
an exception on a serve path.  Backend selection honours
``REPRO_TREE_BACKEND`` (``numpy`` | ``native`` | ``auto``; ``auto`` uses
a compiled kernel when one is already attached or cached and compiles
lazily only for batches large enough to amortize the compile).
"""

from __future__ import annotations

import ctypes
import hashlib
import json
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

#: ABI version of the generated kernels; bump when exported symbols or
#: their signatures change (stale cached kernels then fail the api
#: check at load and are recompiled).
KERNEL_API = 1
#: Generator version folded into every kernel hash; bump on any codegen
#: change so stale cache entries can never serve a new layout.
KERNEL_VERSION = 1

#: ``auto`` only triggers a *compile* for batches at least this large —
#: a one-off small predict must not eat a ~100ms compile.  Already
#: compiled (attached or cached) kernels are used for any batch size.
AUTO_COMPILE_MIN_ROWS = 8192

#: Trees wider than this don't get kernels (emitted source would be
#: absurd); far beyond anything distillation produces.
MAX_KERNEL_NODES = 1 << 20

#: Depth cutoff between the fixed-depth interleaved walk and the
#: sentinel while-walk; mirrors ``FlatTree``'s dense/compacting split.
DENSE_DEPTH_LIMIT = 64

_CC_FLAGS = ["-O2", "-shared", "-fPIC", "-fno-math-errno"]

_BACKENDS = ("numpy", "native", "auto")


class NativeUnavailable(RuntimeError):
    """This tree cannot get a kernel (internal; callers see ``None``)."""


# -- module-level counters (the metrics-visible fallback story) -----------
_STATS_LOCK = threading.Lock()
_STATS: Dict[str, int] = {}
_LAST_ERROR: Optional[str] = None
#: Optional event sink with the signature of
#: :meth:`repro.obs.events.EventJournal.emit`; the owning serving tier
#: (or worker replica) installs its journal here so silent kernel
#: degradations surface as ``kernel_fallback`` events, not just a
#: counter an operator has to know to watch.
_EVENT_HOOK = None


def set_event_hook(hook) -> None:
    """Install (or clear, with ``None``) the module's event sink —
    called as ``hook("kernel_fallback", severity=..., labels=...,
    **fields)``.  Process-global, last writer wins; exceptions from the
    hook are swallowed on the serving path."""
    global _EVENT_HOOK
    _EVENT_HOOK = hook


def _emit_event(**fields) -> None:
    hook = _EVENT_HOOK
    if hook is None:
        return
    try:
        hook("kernel_fallback", severity="warn", labels=None, **fields)
    except Exception:  # noqa: BLE001 - telemetry must not break serving
        pass


def _bump(key: str, count: int = 1) -> None:
    with _STATS_LOCK:
        _STATS[key] = _STATS.get(key, 0) + count


def _note_error(reason: str) -> None:
    global _LAST_ERROR
    with _STATS_LOCK:
        _LAST_ERROR = reason


def note_fallback(rows: int) -> None:
    """Record rows served by numpy although native was expected."""
    _bump("fallback_rows", rows)
    _emit_event(rows=int(rows), last_error=last_error())


def native_stats() -> Dict[str, Any]:
    """Snapshot of the module counters (compiles, hits, fallbacks)."""
    with _STATS_LOCK:
        out: Dict[str, Any] = dict(_STATS)
        out["last_error"] = _LAST_ERROR
        return out


def snapshot() -> Dict[str, int]:
    """Counters-only snapshot (no ``last_error``), suitable as the
    baseline for :func:`delta`.

    The counters are process-global and cumulative — back-to-back
    benchmarks or tests reading :func:`native_stats` directly see each
    other's compiles and fallbacks.  Take a ``snapshot()`` before the
    measured section and ``delta(before)`` after to isolate it without
    the destructive :func:`reset_native_stats`.
    """
    with _STATS_LOCK:
        return dict(_STATS)


def delta(since: Dict[str, int]) -> Dict[str, int]:
    """Per-key counter increments since a :func:`snapshot` baseline.

    Keys unseen in ``since`` count from zero; keys that have not moved
    are omitted, so an empty dict means "nothing happened".
    """
    with _STATS_LOCK:
        current = dict(_STATS)
    out: Dict[str, int] = {}
    for key, value in current.items():
        moved = value - since.get(key, 0)
        if moved:
            out[key] = moved
    return out


def last_error() -> Optional[str]:
    with _STATS_LOCK:
        return _LAST_ERROR


def reset_native_stats() -> None:
    """Test helper: zero the counters and clear the last error."""
    global _LAST_ERROR
    with _STATS_LOCK:
        _STATS.clear()
        _LAST_ERROR = None


# -- configuration --------------------------------------------------------
def backend_mode(explicit: Optional[str] = None) -> str:
    """Resolve the effective backend: explicit arg > env > ``auto``."""
    mode = explicit or os.environ.get("REPRO_TREE_BACKEND") or "auto"
    if mode not in _BACKENDS:
        raise ValueError(
            f"unknown tree backend {mode!r}; expected one of {_BACKENDS}"
        )
    return mode


def cache_dir() -> Path:
    """Kernel cache root (``REPRO_KERNEL_CACHE`` overrides)."""
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-kernels"


def cache_limit() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_KERNEL_CACHE_LIMIT", 128)))
    except ValueError:
        return 128


def find_compiler() -> Optional[List[str]]:
    """The platform C compiler invocation, or None when there is none.

    Honours ``CC`` first, then the conventional names.  Re-probed on
    every call so tests (and machines that gain a toolchain) see the
    current truth; ``shutil.which`` is cheap next to a compile.
    """
    env_cc = os.environ.get("CC")
    candidates = [env_cc] if env_cc else []
    candidates += ["cc", "gcc", "clang"]
    for name in candidates:
        if name and shutil.which(name):
            return [name]
    return None


# -- kernel layout + source emission --------------------------------------
def _bfs_tables(flat: Any) -> Dict[str, np.ndarray]:
    """Reorder the preorder flat arrays breadth-first for the kernel.

    Returns the dispatch tables the source embeds: ``feat`` (int16,
    ``-1`` at leaves), ``thr`` (float64, zeroed at leaves), ``kids``
    (int32 packed children in BFS ids, leaves self-loop), ``leaf``
    (int32 BFS id -> preorder id) and ``cls`` (int32 per-node argmax in
    BFS order).
    """
    n = int(flat.node_count)
    if n > MAX_KERNEL_NODES:
        raise NativeUnavailable(f"tree too large for a kernel ({n} nodes)")
    feature = np.asarray(flat.feature, dtype=np.int64)
    if feature.size and int(feature.max()) > np.iinfo(np.int16).max:
        raise NativeUnavailable("feature ids exceed int16 range")
    left = np.asarray(flat.children_left, dtype=np.int64)
    right = np.asarray(flat.children_right, dtype=np.int64)
    order = np.empty(n, dtype=np.int64)   # BFS position -> preorder id
    pos = np.empty(n, dtype=np.int64)     # preorder id -> BFS position
    head = tail = 0
    order[tail] = 0
    tail += 1
    while head < tail:
        node = order[head]
        pos[node] = head
        head += 1
        if feature[node] >= 0:
            order[tail] = left[node]
            order[tail + 1] = right[node]
            tail += 2
    if tail != n:
        raise NativeUnavailable("tree arrays are not a single rooted tree")
    feat = feature[order]
    leaf_mask = feat < 0
    thr = np.where(leaf_mask, 0.0,
                   np.asarray(flat.threshold, dtype=np.float64)[order])
    self_idx = np.arange(n, dtype=np.int64)
    safe_child = lambda kids_: pos[np.where(leaf_mask, 0, kids_[order])]
    kids = np.empty(2 * n, dtype=np.int32)
    kids[0::2] = np.where(leaf_mask, self_idx, safe_child(left))
    kids[1::2] = np.where(leaf_mask, self_idx, safe_child(right))
    return {
        "feat": feat.astype(np.int16),
        "thr": thr,
        "kids": kids,
        "leaf": order.astype(np.int32),
        "cls": np.asarray(flat.value_argmax)[order].astype(np.int32),
    }


def _quantizes_lossless(thr: np.ndarray) -> bool:
    thr32 = thr.astype(np.float32)
    with np.errstate(invalid="ignore"):
        return bool(np.all(thr32.astype(np.float64) == thr))


def kernel_hash(flat: Any) -> str:
    """Content hash naming this tree's kernel in the cache.

    Covers everything that determines the emitted source — the BFS
    dispatch tables, the quantization decision, and the generator/ABI
    versions — so equal hashes mean byte-equal source.
    """
    tables = _bfs_tables(flat)
    digest = hashlib.sha256()
    digest.update(
        f"repro-kernel:v{KERNEL_VERSION}:api{KERNEL_API}:"
        f"q{int(_quantizes_lossless(tables['thr']))}".encode()
    )
    for key in ("feat", "thr", "kids", "leaf", "cls"):
        arr = np.ascontiguousarray(tables[key])
        digest.update(key.encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()[:16]


def _c_array(name: str, ctype: str, values, fmt=str) -> str:
    body = ",".join(fmt(v) for v in values)
    return f"static const {ctype} {name}[] = {{{body}}};\n"


_INTERLEAVE = 8

_DENSE_LEVEL = "n{j} = KIDS[2*n{j} + !(r{j}[FEAT[n{j}]] < THR[n{j}])];"

_BATCH_FN = """
void {sym}(const double * restrict x, int64_t n_rows,
           int64_t n_feat, int32_t * restrict out) {{
    int64_t i = 0;
    for (; i + {w} <= n_rows; i += {w}) {{
{rows}
{init}
        _Pragma("GCC unroll 4")
        for (int d = 0; d < MAX_DEPTH; ++d) {{
{levels}
        }}
{stores}
    }}
    for (; i < n_rows; ++i)
        out[i] = {table}[walk(x + (size_t)i * n_feat)];
}}
"""


def emit_kernel_source(flat: Any, khash: Optional[str] = None) -> str:
    """Generate the C source of one tree's batch-predict kernel."""
    tables = _bfs_tables(flat)
    if khash is None:
        khash = kernel_hash(flat)
    feat = tables["feat"]
    thr = tables["thr"]
    lossless = _quantizes_lossless(thr)
    thr_type = "float" if lossless else "double"
    max_depth = int(flat.max_depth)
    deep = max_depth > DENSE_DEPTH_LIMIT
    # The dense walk indexes FEAT at self-looping leaves, so leaves get
    # feature 0 there (the comparison is dead, the gather must be
    # in-bounds); the sentinel walk needs the -1 leaf marker instead.
    feat_table = feat if deep else np.where(feat < 0, 0, feat)
    min_features = int(feat.max(initial=-1)) + 1

    src = [
        "/* generated by repro.core.tree.native — do not edit */\n",
        "#include <stdint.h>\n#include <stddef.h>\n\n",
        f"#define MAX_DEPTH {max_depth}\n\n",
        _c_array("FEAT", "int16_t", feat_table),
        # float.hex() round-trips the double exactly (C99 hexfloats);
        # for the float table the narrowing conversion is exact by the
        # losslessness check above.
        _c_array("THR", thr_type, thr, fmt=lambda v: float(v).hex()),
        _c_array("KIDS", "int32_t", tables["kids"]),
        _c_array("LEAF", "int32_t", tables["leaf"]),
        _c_array("CLS", "int32_t", tables["cls"]),
        f'\nstatic const char HASH[] = "{khash}";\n',
        f"int32_t repro_kernel_api(void) {{ return {KERNEL_API}; }}\n",
        "const char *repro_kernel_hash(void) { return HASH; }\n",
        "int32_t repro_kernel_min_features(void) "
        f"{{ return {min_features}; }}\n",
        "int32_t repro_kernel_node_count(void) "
        f"{{ return {len(feat)}; }}\n\n",
    ]
    if deep:
        src.append(
            "static int32_t walk(const double *row) {\n"
            "    int32_t nd = 0;\n"
            "    int16_t f = FEAT[nd];\n"
            "    while (f >= 0) {\n"
            "        nd = KIDS[2*nd + !(row[f] < THR[nd])];\n"
            "        f = FEAT[nd];\n"
            "    }\n"
            "    return nd;\n"
            "}\n"
        )
        # Interleaving rows of wildly different path lengths buys
        # nothing on a chain-shaped tree; per-row sentinel walks only.
        for sym, table in (("repro_predict_batch", "LEAF"),
                           ("repro_predict_class", "CLS")):
            src.append(
                f"\nvoid {sym}(const double * restrict x, int64_t n_rows,"
                "\n           int64_t n_feat, int32_t * restrict out) {\n"
                "    for (int64_t i = 0; i < n_rows; ++i)\n"
                f"        out[i] = {table}"
                "[walk(x + (size_t)i * n_feat)];\n"
                "}\n"
            )
        return "".join(src)

    src.append(
        "static int32_t walk(const double *row) {\n"
        "    int32_t nd = 0;\n"
        "    for (int d = 0; d < MAX_DEPTH; ++d)\n"
        "        nd = KIDS[2*nd + !(row[FEAT[nd]] < THR[nd])];\n"
        "    return nd;\n"
        "}\n"
    )
    w = _INTERLEAVE
    rows = "\n".join(
        f"        const double *r{j} = x + (size_t)(i + {j}) * n_feat;"
        for j in range(w)
    )
    init = "        " + " ".join(f"int32_t n{j} = 0;" for j in range(w))
    levels = "\n".join(
        "            " + _DENSE_LEVEL.format(j=j) for j in range(w)
    )
    for sym, table in (("repro_predict_batch", "LEAF"),
                       ("repro_predict_class", "CLS")):
        stores = "\n".join(
            f"        out[i + {j}] = {table}[n{j}];" for j in range(w)
        )
        src.append(_BATCH_FN.format(
            sym=sym, w=w, rows=rows, init=init, levels=levels,
            stores=stores, table=table,
        ))
    return "".join(src)


# -- cache plumbing (atomic writes, LRU pruning) --------------------------
def _atomic_write(path: Path, data: bytes) -> None:
    """Write-then-rename so concurrent writers can never tear ``path``.

    Same pattern as ``teachers/cache.save_weights``: each writer lands
    its bytes in a private tempfile in the destination directory, then
    ``os.replace`` publishes it atomically — two processes compiling
    the same artifact at once both succeed, last writer wins, and every
    reader only ever sees a complete file.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.stem}-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _prune_cache(root: Path) -> None:
    """LRU-evict compiled kernels beyond the cache limit (by mtime)."""
    try:
        entries = sorted(
            root.glob("*.so"),
            key=lambda p: p.stat().st_mtime,
            reverse=True,
        )
    except OSError:
        return
    for stale in entries[cache_limit():]:
        for path in (stale, stale.with_suffix(".c"),
                     stale.with_suffix(".json")):
            try:
                path.unlink()
            except OSError:
                pass


def _touch(path: Path) -> None:
    try:
        os.utime(path, None)
    except OSError:
        pass


def kernel_bytes(khash: str) -> Optional[bytes]:
    """Raw ``.so`` bytes for shipping to another host, if cached."""
    if not khash:
        return None
    try:
        return (cache_dir() / f"{khash}.so").read_bytes()
    except OSError:
        return None


def install_kernel_bytes(khash: str, data: bytes) -> Path:
    """Drop shipped ``.so`` bytes into the local cache (atomic)."""
    path = cache_dir() / f"{khash}.so"
    if not path.exists():
        _atomic_write(path, data)
        _prune_cache(cache_dir())
    return path


# -- loading --------------------------------------------------------------
class NativeKernel:
    """One dlopened kernel: hash-verified, ready for batch calls."""

    __slots__ = ("hash", "path", "min_features", "node_count",
                 "provenance", "_lib", "_batch", "_class")

    def __init__(self, path: Path, expect_hash: str) -> None:
        lib = ctypes.CDLL(str(path))
        lib.repro_kernel_api.restype = ctypes.c_int32
        lib.repro_kernel_hash.restype = ctypes.c_char_p
        lib.repro_kernel_min_features.restype = ctypes.c_int32
        lib.repro_kernel_node_count.restype = ctypes.c_int32
        api = int(lib.repro_kernel_api())
        if api != KERNEL_API:
            raise NativeUnavailable(
                f"kernel {path.name} speaks ABI {api}, "
                f"this runtime speaks {KERNEL_API}"
            )
        embedded = lib.repro_kernel_hash().decode("ascii")
        if embedded != expect_hash:
            raise NativeUnavailable(
                f"kernel {path.name} failed hash verification: embeds "
                f"{embedded}, expected {expect_hash}"
            )
        arg_types = [
            ctypes.POINTER(ctypes.c_double), ctypes.c_int64,
            ctypes.c_int64, ctypes.POINTER(ctypes.c_int32),
        ]
        for sym in ("repro_predict_batch", "repro_predict_class"):
            fn = getattr(lib, sym)
            fn.restype = None
            fn.argtypes = arg_types
        self.hash = expect_hash
        self.path = path
        self.min_features = int(lib.repro_kernel_min_features())
        self.node_count = int(lib.repro_kernel_node_count())
        self.provenance = _read_provenance(path)
        self._lib = lib
        self._batch = lib.repro_predict_batch
        self._class = lib.repro_predict_class

    def _call(self, fn, x: np.ndarray) -> np.ndarray:
        x = np.ascontiguousarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("kernels expect a 2-D matrix")
        if x.shape[1] < self.min_features:
            raise NativeUnavailable(
                f"kernel needs >= {self.min_features} features, "
                f"batch has {x.shape[1]}"
            )
        out = np.empty(x.shape[0], dtype=np.int32)
        if x.shape[0]:
            # ctypes releases the GIL for the duration of the call.
            fn(
                x.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
                x.shape[0], x.shape[1],
                out.ctypes.data_as(ctypes.POINTER(ctypes.c_int32)),
            )
        return out

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Preorder leaf id per row (``FlatTree.apply`` semantics)."""
        return self._call(self._batch, x)

    def predict_class(self, x: np.ndarray) -> np.ndarray:
        """Argmax class per row, gather baked into the kernel."""
        return self._call(self._class, x)

    def __repr__(self) -> str:
        return (f"NativeKernel(hash={self.hash}, nodes={self.node_count}, "
                f"path={str(self.path)!r})")


def _read_provenance(path: Path) -> Dict[str, Any]:
    try:
        meta = json.loads(path.with_suffix(".json").read_text())
        if isinstance(meta, dict):
            return meta
    except (OSError, ValueError):
        pass
    return {}


def _load_kernel(path: Path, expect_hash: str) -> Optional[NativeKernel]:
    try:
        return NativeKernel(path, expect_hash)
    except Exception as exc:  # noqa: BLE001 - any dlopen/verify failure
        _bump("load_failures")
        _note_error(f"load {path.name}: {exc}")
        return None


def compile_kernel(flat: Any, khash: Optional[str] = None) -> Path:
    """Emit + compile one kernel into the cache; returns the ``.so``.

    Raises :class:`NativeUnavailable` when there is no compiler or the
    compile fails — :func:`ensure_kernel` is the never-raising wrapper.
    """
    if khash is None:
        khash = kernel_hash(flat)
    compiler = find_compiler()
    if compiler is None:
        raise NativeUnavailable("no C compiler on PATH (cc/gcc/clang)")
    source = emit_kernel_source(flat, khash)
    root = cache_dir()
    so_path = root / f"{khash}.so"
    _atomic_write(root / f"{khash}.c", source.encode())
    command = compiler + _CC_FLAGS
    with tempfile.TemporaryDirectory(prefix="repro-kernel-") as tmp:
        tmp_so = Path(tmp) / f"{khash}.so"
        proc = subprocess.run(
            command + ["-o", str(tmp_so), "-x", "c", "-"],
            input=source.encode(),
            capture_output=True,
            timeout=120,
        )
        if proc.returncode != 0 or not tmp_so.exists():
            stderr = proc.stderr.decode(errors="replace").strip()
            raise NativeUnavailable(
                f"{command[0]} failed ({proc.returncode}): {stderr[:400]}"
            )
        _atomic_write(so_path, tmp_so.read_bytes())
    _atomic_write(
        root / f"{khash}.json",
        json.dumps({
            "hash": khash,
            "kernel_api": KERNEL_API,
            "kernel_version": KERNEL_VERSION,
            "compiler": command[0],
            "flags": _CC_FLAGS,
            "quantized": _quantizes_lossless(_bfs_tables(flat)["thr"]),
        }, indent=2).encode(),
    )
    _prune_cache(root)
    return so_path


def ensure_kernel(flat: Any, compile: bool = True) -> Optional[NativeKernel]:
    """Load (and optionally compile) the kernel for ``flat``.

    Never raises: any failure — unkernelable tree, missing compiler,
    compile error, corrupt cache entry — returns ``None`` after
    recording a counter, which is exactly the numpy-fallback contract
    the serve path relies on.
    """
    try:
        khash = kernel_hash(flat)
    except NativeUnavailable as exc:
        _bump("unkernelable")
        _note_error(str(exc))
        return None
    except Exception as exc:  # noqa: BLE001 - hash must never escape
        _bump("unkernelable")
        _note_error(f"hash: {exc}")
        return None
    path = cache_dir() / f"{khash}.so"
    if path.exists():
        kernel = _load_kernel(path, khash)
        if kernel is not None:
            _bump("cache_hits")
            _touch(path)
            return kernel
        # Corrupt or stale entry: fall through to a fresh compile.
    if not compile:
        return None
    try:
        so_path = compile_kernel(flat, khash)
    except NativeUnavailable as exc:
        _bump("compile_failures")
        _note_error(str(exc))
        return None
    except Exception as exc:  # noqa: BLE001 - compile must never escape
        _bump("compile_failures")
        _note_error(f"compile: {exc}")
        return None
    _bump("compiles")
    return _load_kernel(so_path, khash)
