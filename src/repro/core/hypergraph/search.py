"""Critical-connection search (§4.2, Fig. 6).

Optimize a fractional incidence mask ``W = I ∘ sigmoid(W')`` (the Eq. 9
gating) to minimize

    L(W) = D(Y_W, Y_I) + lambda1 * ||W|| + lambda2 * H(W)

where ``D`` keeps masked outputs close to the originals (KL for discrete,
MSE for continuous — Eq. 6), ``||W||`` is the conciseness L1 term (Eq. 7),
and ``H`` the determinism entropy term (Eq. 8).  High surviving mask
values mark the connections the system's decision actually depends on.

Systems plug in through :class:`MaskedSystem`, which must provide the
divergence and its gradient with respect to ``W``; a finite-difference
fallback (SPSA) is available for blackbox systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.hypergraph.structure import Hypergraph
from repro.nn.optim import Adam
from repro.utils.rng import SeedLike, as_rng

_EPS = 1e-9


class MaskedSystem:
    """Interface the search optimizes against.

    Subclasses wrap a concrete global system (routing, placement, ...)
    and expose how its output diverges when the incidence is masked.
    """

    #: The hypergraph being interpreted (defines I and the labels).
    hypergraph: Hypergraph

    def divergence_and_grad(self, w: np.ndarray) -> Tuple[float, np.ndarray]:
        """Return ``D(Y_W, Y_I)`` and ``dD/dW`` for a mask ``w``."""
        raise NotImplementedError

    def divergence(self, w: np.ndarray) -> float:
        """Divergence only (defaults to the gradient path)."""
        return self.divergence_and_grad(w)[0]


class SPSAMixin:
    """Simultaneous-perturbation gradient estimate for blackbox systems.

    Systems that cannot differentiate their output implement only
    ``divergence`` and inherit this mixin; two evaluations per call give
    an unbiased gradient estimate over every mask entry.
    """

    spsa_step: float = 0.01
    spsa_averages: int = 4
    _spsa_rng: Optional[np.random.Generator] = None

    def divergence_and_grad(self, w: np.ndarray) -> Tuple[float, np.ndarray]:
        if self._spsa_rng is None:
            self._spsa_rng = as_rng(0)
        rng = self._spsa_rng
        support = self.hypergraph.incidence > 0
        grad = np.zeros_like(w)
        base = self.divergence(w)
        for _ in range(self.spsa_averages):
            delta = rng.choice((-1.0, 1.0), size=w.shape) * support
            plus = np.clip(w + self.spsa_step * delta, 0.0, 1.0)
            minus = np.clip(w - self.spsa_step * delta, 0.0, 1.0)
            diff = self.divergence(plus) - self.divergence(minus)
            with np.errstate(divide="ignore", invalid="ignore"):
                g = diff / (2.0 * self.spsa_step * delta)
            g[~support] = 0.0
            g[~np.isfinite(g)] = 0.0
            grad += g
        return base, grad / self.spsa_averages


@dataclass
class MaskResult:
    """Outcome of one critical-connection search."""

    mask: np.ndarray
    hypergraph: Hypergraph
    loss_history: List[float]
    divergence: float
    l1: float
    entropy: float

    def mask_values(self) -> np.ndarray:
        """Mask values of the existing connections only (1-D)."""
        es, vs = np.nonzero(self.hypergraph.incidence)
        return self.mask[es, vs]

    def top_connections(self, k: int = 5) -> List[Tuple[str, float, int, int]]:
        """The k highest-valued connections as (label, value, e, v)."""
        conns = self.hypergraph.connections()
        scored = sorted(
            conns, key=lambda ev: self.mask[ev[0], ev[1]], reverse=True
        )[:k]
        return [
            (
                self.hypergraph.connection_label(e, v),
                float(self.mask[e, v]),
                e,
                v,
            )
            for e, v in scored
        ]

    def vertex_mask_sums(self) -> np.ndarray:
        """``sum_e W[e, v]`` per vertex (the Fig. 9b quantity)."""
        return self.mask.sum(axis=0)


@dataclass
class CriticalConnectionSearch:
    """Gradient search for the Fig. 6 optimization problem.

    Attributes:
        lambda1: conciseness weight (Eq. 7).
        lambda2: determinism weight (Eq. 8).
        lr: Adam step size on the logits ``W'``.
        steps: optimization iterations.
        init_logit: initial ``W'`` value.  The default 0 starts every
            connection at the entropy saddle ``W = 0.5``, where the
            determinism term exerts no pull; the divergence term then
            decides which pole each connection falls to (critical → 1,
            immaterial → 0) with the conciseness term breaking ties
            downward.
    """

    lambda1: float = 0.25
    lambda2: float = 1.0
    lr: float = 0.05
    steps: int = 300
    init_logit: float = 0.0

    def run(
        self, system: MaskedSystem, seed: SeedLike = 0,
        callback=None,
    ) -> MaskResult:
        """Optimize the mask for ``system``; returns the best-loss mask."""
        rng = as_rng(seed)
        incidence = system.hypergraph.incidence
        support = incidence > 0
        logits = np.full_like(incidence, self.init_logit)
        logits += 0.01 * rng.normal(size=logits.shape)
        opt = Adam(lr=self.lr)
        history: List[float] = []
        best_loss = np.inf
        best_mask = incidence.copy()
        for step in range(self.steps):
            sig = _sigmoid(logits)
            w = incidence * sig
            div, ddiv_dw = system.divergence_and_grad(w)
            l1 = float(np.abs(w).sum())
            entropy = _mask_entropy(w, support)
            loss = div + self.lambda1 * l1 + self.lambda2 * entropy
            history.append(float(loss))
            if loss < best_loss:
                best_loss = float(loss)
                best_mask = w.copy()
            grad_w = ddiv_dw + self.lambda1 * np.sign(w)
            grad_w += self.lambda2 * _entropy_grad(w, support)
            grad_logits = grad_w * incidence * sig * (1.0 - sig)
            grad_logits[~support] = 0.0
            opt.step([logits], [grad_logits])
            if callback is not None:
                callback(step, loss, w)
        sig = _sigmoid(logits)
        w = incidence * sig
        div, _ = system.divergence_and_grad(w)
        l1 = float(np.abs(w).sum())
        entropy = _mask_entropy(w, support)
        final_loss = div + self.lambda1 * l1 + self.lambda2 * entropy
        if final_loss < best_loss:
            best_mask = w
        return MaskResult(
            mask=best_mask,
            hypergraph=system.hypergraph,
            loss_history=history,
            divergence=float(system.divergence(best_mask)),
            l1=float(np.abs(best_mask).sum()),
            entropy=_mask_entropy(best_mask, support),
        )


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))


def _mask_entropy(w: np.ndarray, support: np.ndarray) -> float:
    """Eq. 8 over the existing connections."""
    wv = np.clip(w[support], _EPS, 1.0 - _EPS)
    return float(-(wv * np.log(wv) + (1.0 - wv) * np.log(1.0 - wv)).sum())


def _entropy_grad(w: np.ndarray, support: np.ndarray) -> np.ndarray:
    """d H / d W (zero off-support)."""
    grad = np.zeros_like(w)
    wv = np.clip(w[support], _EPS, 1.0 - _EPS)
    grad[support] = -np.log(wv / (1.0 - wv))
    return grad
