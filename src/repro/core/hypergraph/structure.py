"""Hypergraph structure and incidence matrices (§4.1).

A hypergraph is (vertices V, hyperedges E) with a 0/1 incidence matrix
``I`` of shape ``(|E|, |V|)`` — ``I[e, v] = 1`` iff hyperedge ``e`` covers
vertex ``v`` (Eq. 3).  Vertices and hyperedges may carry feature vectors
``F_V`` and ``F_E``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class Hypergraph:
    """A featured hypergraph.

    Attributes:
        vertex_labels: human-readable vertex identities (links, servers,
            users, job nodes ...).
        edge_labels: hyperedge identities (paths, NFs, base stations,
            dependencies ...).
        incidence: 0/1 matrix ``(|E|, |V|)``.
        vertex_features: optional ``(|V|, dv)`` feature matrix ``F_V``.
        edge_features: optional ``(|E|, de)`` feature matrix ``F_E``.
    """

    vertex_labels: List[Any]
    edge_labels: List[Any]
    incidence: np.ndarray
    vertex_features: Optional[np.ndarray] = None
    edge_features: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.incidence = np.asarray(self.incidence, dtype=float)
        if self.incidence.ndim != 2:
            raise ValueError("incidence must be 2-D")
        ne, nv = self.incidence.shape
        if len(self.edge_labels) != ne or len(self.vertex_labels) != nv:
            raise ValueError("label counts must match incidence shape")
        if not np.all(np.isin(self.incidence, (0.0, 1.0))):
            raise ValueError("incidence entries must be 0 or 1")
        if self.vertex_features is not None:
            self.vertex_features = np.asarray(self.vertex_features, dtype=float)
            if self.vertex_features.shape[0] != nv:
                raise ValueError("vertex feature rows must match |V|")
        if self.edge_features is not None:
            self.edge_features = np.asarray(self.edge_features, dtype=float)
            if self.edge_features.shape[0] != ne:
                raise ValueError("edge feature rows must match |E|")

    @property
    def n_vertices(self) -> int:
        return self.incidence.shape[1]

    @property
    def n_edges(self) -> int:
        return self.incidence.shape[0]

    def connections(self) -> List[Tuple[int, int]]:
        """All (edge index, vertex index) pairs with ``I[e, v] = 1``."""
        es, vs = np.nonzero(self.incidence)
        return list(zip(es.tolist(), vs.tolist()))

    def degree_vertices(self) -> np.ndarray:
        """Number of hyperedges covering each vertex."""
        return self.incidence.sum(axis=0)

    def degree_edges(self) -> np.ndarray:
        """Number of vertices each hyperedge covers."""
        return self.incidence.sum(axis=1)

    def connection_label(self, edge_idx: int, vertex_idx: int) -> str:
        return f"{self.edge_labels[edge_idx]} | {self.vertex_labels[vertex_idx]}"
