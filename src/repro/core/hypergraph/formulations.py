"""Hypergraph formulations of the other Table-2 scenarios (Appendix B).

Besides SDN routing (scenario #1, :mod:`routing_system`), the paper
formulates three more global systems as hypergraphs:

* **#2 NFV placement** (B.1): vertices are physical servers, hyperedges
  are network functions; ``I[e, v] = 1`` iff an instance of NF ``e`` runs
  on server ``v``.  The interpreted output is the per-server utilization
  vector (continuous → MSE divergence), with analytic mask gradients.
* **#3 ultra-dense cellular** (B.2): vertices are mobile users, hyperedges
  are base-station coverage areas.  The output is the per-user achieved
  rate under proportional sharing (continuous → MSE), interpreted through
  the SPSA blackbox path.
* **#4 cluster job scheduling** (B.3): vertices are job-DAG nodes,
  hyperedges are dependencies.  The output is the vector of smoothed node
  finish times (continuous → MSE), also via SPSA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.hypergraph.search import MaskedSystem, SPSAMixin
from repro.core.hypergraph.structure import Hypergraph
from repro.utils.rng import SeedLike, as_rng

_EPS = 1e-9


# ----------------------------------------------------------------------
# Scenario #2: NFV placement
# ----------------------------------------------------------------------
def nfv_placement_hypergraph(
    n_servers: int = 8,
    n_nfs: int = 6,
    instances_per_nf: Tuple[int, int] = (2, 4),
    seed: SeedLike = None,
) -> Hypergraph:
    """Random NFV placement: each NF gets 2-4 instances on distinct servers."""
    rng = as_rng(seed)
    incidence = np.zeros((n_nfs, n_servers))
    for e in range(n_nfs):
        k = int(rng.integers(instances_per_nf[0], instances_per_nf[1] + 1))
        servers = rng.choice(n_servers, size=min(k, n_servers), replace=False)
        incidence[e, servers] = 1.0
    capacities = rng.uniform(8.0, 16.0, size=(n_servers, 1))
    demands = rng.uniform(2.0, 10.0, size=(n_nfs, 1))
    return Hypergraph(
        vertex_labels=[f"server-{v}" for v in range(n_servers)],
        edge_labels=[f"NF-{e}" for e in range(n_nfs)],
        incidence=incidence,
        vertex_features=capacities,
        edge_features=demands,
    )


@dataclass
class NFVPlacementSystem(MaskedSystem):
    """Per-server utilization under mask-weighted traffic splitting.

    NF ``e``'s demand is split across its instances proportionally to the
    mask row, so suppressing a connection shifts that NF's traffic onto
    its other instances:

        util_v = (1 / cap_v) * sum_e demand_e * W_ev / sum_v' W_ev'

    Divergence is the MSE against the unmasked utilization (continuous
    output, Eq. 6); the gradient is analytic (quotient rule).
    """

    hypergraph: Hypergraph
    _reference: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self._demands = self.hypergraph.edge_features[:, 0]
        self._caps = self.hypergraph.vertex_features[:, 0]
        self._reference = self._utilization(self.hypergraph.incidence)

    def _utilization(self, w: np.ndarray) -> np.ndarray:
        row = np.maximum(w.sum(axis=1), _EPS)
        split = w / row[:, None]
        return (self._demands @ split) / self._caps

    def output(self, w: np.ndarray) -> np.ndarray:
        return self._utilization(w)

    def divergence(self, w: np.ndarray) -> float:
        diff = self._utilization(w) - self._reference
        return float(np.sum(diff**2))

    def divergence_and_grad(self, w: np.ndarray) -> Tuple[float, np.ndarray]:
        row = np.maximum(w.sum(axis=1), _EPS)
        util = (self._demands @ (w / row[:, None])) / self._caps
        diff = util - self._reference
        div = float(np.sum(diff**2))
        resid = 2.0 * diff / self._caps           # dD/d(pre-cap load)_v
        # d util_v / dW_ev = d_e * (delta - W_ev'/row) / row   (quotient rule)
        term1 = np.outer(self._demands / row, np.ones_like(resid)) * resid
        inner = (w * resid[None, :]).sum(axis=1)  # sum_v' W_ev' resid_v'
        term2 = (self._demands * inner / row**2)[:, None]
        grad = term1 - term2
        grad[self.hypergraph.incidence == 0] = 0.0
        return div, grad


# ----------------------------------------------------------------------
# Scenario #3: ultra-dense cellular association
# ----------------------------------------------------------------------
def udn_hypergraph(
    n_users: int = 20,
    n_stations: int = 6,
    coverage_prob: float = 0.4,
    seed: SeedLike = None,
) -> Hypergraph:
    """Random coverage: each base station covers a subset of users."""
    rng = as_rng(seed)
    incidence = (rng.random((n_stations, n_users)) < coverage_prob).astype(float)
    # Every user must be covered by at least one station.
    for v in range(n_users):
        if incidence[:, v].sum() == 0:
            incidence[int(rng.integers(n_stations)), v] = 1.0
    station_capacity = rng.uniform(50.0, 120.0, size=(n_stations, 1))
    user_demand = rng.uniform(1.0, 8.0, size=(n_users, 1))
    return Hypergraph(
        vertex_labels=[f"user-{v}" for v in range(n_users)],
        edge_labels=[f"bs-{e}" for e in range(n_stations)],
        incidence=incidence,
        vertex_features=user_demand,
        edge_features=station_capacity,
    )


@dataclass
class UDNAssociationSystem(SPSAMixin, MaskedSystem):
    """Per-user achieved rate under proportional station sharing.

    Each station divides its capacity across covered users proportionally
    to ``W_ev * demand_v``; a user's rate is the sum over covering
    stations, capped at its demand.  Blackbox (SPSA) gradients.
    """

    hypergraph: Hypergraph
    _reference: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self._caps = self.hypergraph.edge_features[:, 0]
        self._demand = self.hypergraph.vertex_features[:, 0]
        self._reference = self.output(self.hypergraph.incidence)

    def output(self, w: np.ndarray) -> np.ndarray:
        weighted = w * self._demand[None, :]
        row = np.maximum(weighted.sum(axis=1), _EPS)
        share = weighted / row[:, None] * self._caps[:, None]
        return np.minimum(share.sum(axis=0), self._demand)

    def divergence(self, w: np.ndarray) -> float:
        diff = self.output(w) - self._reference
        return float(np.sum(diff**2))


# ----------------------------------------------------------------------
# Scenario #4: cluster job scheduling
# ----------------------------------------------------------------------
def cluster_scheduling_hypergraph(
    n_nodes: int = 12,
    edge_prob: float = 0.3,
    seed: SeedLike = None,
) -> Hypergraph:
    """A random job DAG; each dependency is a 2-vertex hyperedge."""
    rng = as_rng(seed)
    deps: List[Tuple[int, int]] = []
    for child in range(1, n_nodes):
        parents = [p for p in range(child) if rng.random() < edge_prob]
        if not parents:
            parents = [int(rng.integers(child))]
        deps.extend((p, child) for p in parents)
    incidence = np.zeros((len(deps), n_nodes))
    for e, (p, c) in enumerate(deps):
        incidence[e, p] = 1.0
        incidence[e, c] = 1.0
    work = rng.uniform(1.0, 6.0, size=(n_nodes, 1))
    transfer = rng.uniform(0.2, 2.0, size=(len(deps), 1))
    return Hypergraph(
        vertex_labels=[f"node-{v}" for v in range(n_nodes)],
        edge_labels=[f"dep-{p}>{c}" for p, c in deps],
        incidence=incidence,
        vertex_features=work,
        edge_features=transfer,
    )


@dataclass
class ClusterSchedulingSystem(SPSAMixin, MaskedSystem):
    """Smoothed finish-time vector of the job DAG.

    Dependencies delay a child by the parent's finish time plus the data
    transfer, scaled by the mask; the max over parents is smoothed with a
    log-sum-exp so the SPSA estimate is informative.
    """

    hypergraph: Hypergraph
    smoothing: float = 0.5
    _deps: List[Tuple[int, int]] = field(init=False)
    _reference: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self._deps = []
        for label in self.hypergraph.edge_labels:
            # labels are "dep-<p>><c>"
            body = label.split("-", 1)[1]
            p, c = body.split(">")
            self._deps.append((int(p), int(c)))
        self._work = self.hypergraph.vertex_features[:, 0]
        self._transfer = self.hypergraph.edge_features[:, 0]
        self._reference = self.output(self.hypergraph.incidence)

    def output(self, w: np.ndarray) -> np.ndarray:
        n = self.hypergraph.n_vertices
        finish = np.zeros(n)
        beta = self.smoothing
        for child in range(n):
            terms = [0.0]
            for e, (p, c) in enumerate(self._deps):
                if c != child:
                    continue
                strength = w[e, p] * w[e, c]
                terms.append(strength * (finish[p] + self._transfer[e]))
            arr = np.asarray(terms) / beta
            ready = beta * (np.log(np.sum(np.exp(arr - arr.max()))) + arr.max())
            finish[child] = ready + self._work[child]
        return finish

    def divergence(self, w: np.ndarray) -> float:
        diff = self.output(w) - self._reference
        return float(np.sum(diff**2))
