"""Hypergraph interpretation of global systems (§4)."""

from repro.core.hypergraph.structure import Hypergraph
from repro.core.hypergraph.search import (
    CriticalConnectionSearch,
    MaskResult,
    MaskedSystem,
)
from repro.core.hypergraph.routing_system import RoutingMaskedSystem
from repro.core.hypergraph.formulations import (
    nfv_placement_hypergraph,
    udn_hypergraph,
    cluster_scheduling_hypergraph,
    NFVPlacementSystem,
    UDNAssociationSystem,
    ClusterSchedulingSystem,
)

__all__ = [
    "Hypergraph",
    "CriticalConnectionSearch",
    "MaskResult",
    "MaskedSystem",
    "RoutingMaskedSystem",
    "nfv_placement_hypergraph",
    "udn_hypergraph",
    "cluster_scheduling_hypergraph",
    "NFVPlacementSystem",
    "UDNAssociationSystem",
    "ClusterSchedulingSystem",
]
