"""Ad-hoc adjustment support (§6.5, Fig. 18).

When an operator must reroute a demand away from its current path ``p0``,
the candidates divert from ``p0`` at different nodes, and the operator
wants to know which candidate is better *without installing either*.
The paper's observation: mask values around the divergence points
predict the latency ordering of the candidates.

Two indicators are provided:

* ``"vertex-mass"`` (default) — candidates are compared on the links
  they do *not* share; each link is scored by the mask mass concentrated
  on it across all paths (``sum_e W_ev``, the Fig. 9b quantity that
  tracks congestion) plus a constant per-hop term.  Higher mask mass on
  a candidate's private links predicts higher latency for it.
* ``"divert-link"`` — the paper's literal reading: compare the mask of
  the single connection (p0, p0's next hop at the diverting node).  With
  our near-binary connection masks this indicator carries little signal
  (see EXPERIMENTS.md); it is kept for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.hypergraph.search import MaskResult
from repro.envs.routing.delay import Routing, routing_latencies
from repro.envs.routing.demands import TrafficMatrix
from repro.envs.routing.topology import Topology

#: Per-hop offset added to a link's mask-mass score, reflecting the fixed
#: per-hop latency component alongside the congestion component.
HOP_WEIGHT = 0.5


@dataclass
class ReroutePoint:
    """One (p0, p1, p2) comparison."""

    pair: Tuple[int, int]
    w_delta: float    # indicator difference (candidate 1 minus candidate 2)
    l_delta: float    # true latency difference l1 - l2 after rerouting
    p1: List[int]
    p2: List[int]


def _divert_connection(
    p0: List[int], candidate: List[int]
) -> Optional[Tuple[int, Tuple[int, int]]]:
    """(diverting node index in p0, p0's next-hop link at that node)."""
    limit = min(len(p0), len(candidate))
    for i in range(limit):
        if p0[i] != candidate[i]:
            if i == 0:
                return None  # different source: not a reroute candidate
            return i - 1, (p0[i - 1], p0[i])
    return None


def rerouting_scatter(
    topology: Topology,
    routing: Routing,
    traffic: TrafficMatrix,
    mask_result: MaskResult,
    sources: Optional[List[int]] = None,
    indicator: str = "vertex-mass",
) -> List[ReroutePoint]:
    """All Fig. 18a triples with their indicator and latency deltas.

    For each demand pair, every unordered pair of candidates (≤1 hop
    longer than the shortest path, diverting from the current path at
    *different* nodes) yields one scatter point.  ``l1``/``l2`` come from
    actually installing each candidate and recomputing the ground-truth
    latency of that demand.
    """
    if indicator not in ("vertex-mass", "divert-link"):
        raise ValueError(f"unknown indicator {indicator!r}")
    pairs = routing.pairs()
    edge_index = {pair: i for i, pair in enumerate(pairs)}
    vertex_mass = mask_result.vertex_mask_sums()

    def link_score(links) -> float:
        return float(sum(
            vertex_mass[topology.link_index(l)] + HOP_WEIGHT for l in links
        ))

    points: List[ReroutePoint] = []
    for pair in pairs:
        if sources is not None and pair[0] not in sources:
            continue
        p0 = routing.paths[pair]
        p0_links = set(Topology.path_links(p0))
        diverts = []
        for cand in topology.candidate_paths(*pair):
            if cand == p0:
                continue
            info = _divert_connection(p0, cand)
            if info is None:
                continue
            _, link = info
            diverts.append((cand, link))
        e = edge_index[pair]
        for i in range(len(diverts)):
            for j in range(i + 1, len(diverts)):
                cand1, link1 = diverts[i]
                cand2, link2 = diverts[j]
                if link1 == link2:
                    continue  # must divert at different nodes
                if indicator == "divert-link":
                    w1 = mask_result.mask[e, topology.link_index(link1)]
                    w2 = mask_result.mask[e, topology.link_index(link2)]
                    w_delta = float(w1 - w2)
                else:
                    links1 = set(Topology.path_links(cand1))
                    links2 = set(Topology.path_links(cand2))
                    w_delta = link_score(links1 - links2) - link_score(
                        links2 - links1
                    )
                l1 = _latency_after_reroute(
                    topology, routing, traffic, pair, cand1
                )
                l2 = _latency_after_reroute(
                    topology, routing, traffic, pair, cand2
                )
                points.append(
                    ReroutePoint(
                        pair=pair,
                        w_delta=w_delta,
                        l_delta=float(l1 - l2),
                        p1=cand1,
                        p2=cand2,
                    )
                )
    return points


def _latency_after_reroute(
    topology: Topology,
    routing: Routing,
    traffic: TrafficMatrix,
    pair: Tuple[int, int],
    new_path: List[int],
) -> float:
    paths = dict(routing.paths)
    paths[pair] = new_path
    rerouted = Routing(paths)
    return routing_latencies(topology, rerouted, traffic)[pair]


def quadrant_fractions(
    points: List[ReroutePoint],
    w_tolerance: float = 0.05,
    l_tolerance: float = 1e-3,
) -> Dict[str, float]:
    """Fraction of points in quadrants I/III (observation holds), near the
    axes, and in quadrants II/IV (violations)."""
    if not points:
        return {"consistent": 0.0, "near_axis": 0.0, "violations": 0.0}
    consistent = near = violations = 0
    for p in points:
        if abs(p.w_delta) <= w_tolerance or abs(p.l_delta) <= l_tolerance:
            near += 1
        elif p.w_delta * p.l_delta > 0:
            consistent += 1
        else:
            violations += 1
    n = len(points)
    return {
        "consistent": consistent / n,
        "near_axis": near / n,
        "violations": violations / n,
    }
