"""Masked-system wrapper for RouteNet* (scenario #1 of Table 2).

Hyperedges are the routing paths RouteNet* chose, vertices are directed
links; the system output compared under masking is the Boltzmann decision
distribution over candidate paths per demand (a *discrete* output, so the
Eq. 6 divergence is the KL divergence).  Gradients flow through the
message-passing network's manual backward pass, including the
load-feature coupling ``xv[:, 1] = W.T @ demand``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.hypergraph.search import MaskedSystem
from repro.core.hypergraph.structure import Hypergraph
from repro.envs.routing.delay import Routing
from repro.envs.routing.demands import TrafficMatrix
from repro.envs.routing.topology import Topology
from repro.teachers.routenet import RouteNetStar


def _fmt_path(path: List[int]) -> str:
    return "->".join(str(n) for n in path)


def routing_hypergraph(
    topology: Topology, routing: Routing, traffic: TrafficMatrix
) -> Hypergraph:
    """Build the paths-x-links hypergraph of a routing result (§4.1)."""
    pairs = routing.pairs()
    incidence = routing.incidence(topology)
    edge_labels = [_fmt_path(routing.paths[p]) for p in pairs]
    vertex_labels = [f"{u}->{v}" for u, v in topology.links]
    demands = np.asarray([[traffic.volume(*p)] for p in pairs])
    caps = topology.capacity_vector()[:, None]
    return Hypergraph(
        vertex_labels=vertex_labels,
        edge_labels=edge_labels,
        incidence=incidence,
        vertex_features=caps,
        edge_features=demands,
    )


@dataclass
class RoutingMaskedSystem(MaskedSystem):
    """Masked system over RouteNet*.

    Two output modes, matching the two branches of Eq. 6:

    * ``output_kind="decisions"`` (default) — the discrete decision
      distribution over candidate paths per demand, compared by KL.
      This is the §4.2 formulation used for the Table-3 interpretations.
    * ``output_kind="latency"`` — the continuous per-path latency
      predictions, compared by MSE.  Because the M/M/1-style delay curve
      is convex in load, this mode concentrates mask mass on heavily
      loaded links and reproduces the Fig. 9b mask-traffic correlation
      most cleanly.  Its divergence scale is larger, so experiments
      scale ``lambda1``/``lambda2`` down accordingly (≈ /5).
    """

    star: RouteNetStar
    routing: Routing
    traffic: TrafficMatrix
    output_kind: str = "decisions"
    hypergraph: Hypergraph = field(init=False)

    def __post_init__(self) -> None:
        if self.output_kind not in ("decisions", "latency"):
            raise ValueError(f"unknown output_kind {self.output_kind!r}")
        topo = self.star.topology
        self.hypergraph = routing_hypergraph(topo, self.routing, self.traffic)
        self._pairs = self.routing.pairs()
        self._demands = np.asarray(
            [self.traffic.volume(*p) for p in self._pairs]
        )
        inc = self.hypergraph.incidence
        self._xe = np.stack([self._demands, inc.sum(axis=1)], axis=1)
        self._caps = topo.capacity_vector()
        # Probe bundle: every candidate of every pair, flat.
        probe_rows, probe_feats, owner_idx = [], [], []
        self._cands: Dict[Tuple[int, int], List[List[int]]] = {}
        for i, pair in enumerate(self._pairs):
            cands = self.star.candidates(pair)
            self._cands[pair] = cands
            for cand in cands:
                row = np.zeros(topo.n_links)
                for link in Topology.path_links(cand):
                    row[topo.link_index(link)] = 1.0
                probe_rows.append(row)
                probe_feats.append([self.traffic.volume(*pair), len(cand) - 1])
                owner_idx.append(i)
        self._probe_w = np.asarray(probe_rows)
        self._probe_xe = np.asarray(probe_feats)
        self._owner = np.asarray(owner_idx, dtype=int)
        self._reference = self._distribution(inc)
        self._ref_lat = self._edge_latencies(inc)

    # ------------------------------------------------------------------
    @property
    def reference_distribution(self) -> List[np.ndarray]:
        """Per-pair decision distribution of the unmasked system (Y_I)."""
        return [p.copy() for p in self._reference]

    def _forward(self, w: np.ndarray) -> np.ndarray:
        loads = w.T @ self._demands
        xv = np.stack([self._caps, loads], axis=1)
        _, probe_lat = self.star.net.forward(
            xv, self._xe, w, probe_w=self._probe_w, probe_xe=self._probe_xe
        )
        return probe_lat

    def _distribution(self, w: np.ndarray) -> List[np.ndarray]:
        lat = self._forward(w)
        return self._softmax_by_owner(lat)

    def _edge_latencies(self, w: np.ndarray) -> np.ndarray:
        """Masked latency predictions for the chosen paths themselves."""
        loads = w.T @ self._demands
        xv = np.stack([self._caps, loads], axis=1)
        lat, _ = self.star.net.forward(xv, self._xe, w)
        return lat

    def _softmax_by_owner(self, lat: np.ndarray) -> List[np.ndarray]:
        out = []
        temp = self.star.temperature
        for i in range(len(self._pairs)):
            z = -lat[self._owner == i] / temp
            z -= z.max()
            e = np.exp(z)
            out.append(e / e.sum())
        return out

    # ------------------------------------------------------------------
    def divergence_and_grad(self, w: np.ndarray) -> Tuple[float, np.ndarray]:
        """Divergence and its mask gradient (mode-dependent)."""
        if self.output_kind == "latency":
            lat = self._edge_latencies(w)
            diff = lat - self._ref_lat
            _, dw, dxv = self.star.net.backward(2.0 * diff)
            dw = dw + np.outer(self._demands, dxv[:, 1])
            dw[self.hypergraph.incidence == 0] = 0.0
            return float(np.sum(diff**2)), dw
        lat = self._forward(w)
        dists = self._softmax_by_owner(lat)
        temp = self.star.temperature
        total = 0.0
        dlat_probe = np.zeros_like(lat)
        for i, (p, q) in enumerate(zip(dists, self._reference)):
            p_safe = np.clip(p, 1e-12, None)
            q_safe = np.clip(q, 1e-12, None)
            kl = float(np.sum(p_safe * np.log(p_safe / q_safe)))
            total += kl
            # dKL/dz through softmax, then z = -lat / temp.
            g = np.log(p_safe / q_safe) + 1.0
            dz = p * (g - float(np.sum(p * g)))
            dlat_probe[self._owner == i] = -dz / temp
        grads, dw, dxv = self.star.net.backward(
            np.zeros(len(self._pairs)), dlat_probe
        )
        dw = dw + np.outer(self._demands, dxv[:, 1])
        dw[self.hypergraph.incidence == 0] = 0.0
        return total, dw

    def divergence(self, w: np.ndarray) -> float:
        if self.output_kind == "latency":
            diff = self._edge_latencies(w) - self._ref_lat
            return float(np.sum(diff**2))
        lat = self._forward(w)
        dists = self._softmax_by_owner(lat)
        total = 0.0
        for p, q in zip(dists, self._reference):
            p_safe = np.clip(p, 1e-12, None)
            q_safe = np.clip(q, 1e-12, None)
            total += float(np.sum(p_safe * np.log(p_safe / q_safe)))
        return total
