"""The conversion methodology of §3.2 (VIPER-style teacher-student).

Step 1 — *trace collection*: follow the teacher's trajectories; on later
iterations roll the current student and let the teacher relabel the
visited states (DAgger), so the tree learns to recover from its own
deviations.

Step 2 — *resampling*: draw the training set with probability
``p(s, a) ∝ V(s) − min_a' Q(s, a')`` (Eq. 1), prioritizing states where
the action choice actually matters.

Step 3 — *pruning*: grow best-first under a leaf budget, then apply
cost-complexity pruning for the operator's requested size.

Step 4 — *deployment*: the resulting :class:`DistilledPolicy` exposes the
same interfaces as the teachers, so it drops into the ABR environment and
the fabric simulator unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.config import MetisConfig
from repro.core.distill.dataset import DistillDataset
from repro.core.distill.rollout import (
    collect_student_states_batch,
    collect_teacher_dataset_batch,
)
from repro.core.tree.cart import DecisionTreeClassifier, DecisionTreeRegressor
from repro.core.tree.pruning import prune_to_leaves
from repro.utils.rng import SeedLike, as_rng


@dataclass
class DistilledPolicy:
    """A decision-tree policy distilled from a discrete-action teacher."""

    tree: DecisionTreeClassifier
    name: str = "Metis"

    # -- ABRPolicy interface -------------------------------------------
    def reset(self) -> None:
        """Stateless."""

    def select(self, state: np.ndarray, env=None) -> int:
        # Single decision: plain traversal beats the vectorized engine's
        # numpy dispatch overhead; argmax over the same leaf value vector
        # keeps it exactly equivalent to ``predict``.
        return int(np.argmax(self.tree.predict_one(state)))

    # -- batch interfaces -------------------------------------------------
    def act_greedy_batch(self, states: np.ndarray) -> np.ndarray:
        return self.tree.predict(states)

    def action_probabilities(self, states: np.ndarray) -> np.ndarray:
        return self.tree.predict_proba(states)

    def decision_fn(self):
        """Adapter for the fabric simulator's central-decision hook."""

        def decide(flow, snapshot):
            return int(np.argmax(self.tree.predict_one(
                snapshot.feature_vector()
            )))

        return decide


@dataclass
class DistilledRegressor:
    """A regression-tree policy for continuous-action teachers (sRLA)."""

    tree: DecisionTreeRegressor
    name: str = "Metis"

    def predict(self, states: np.ndarray) -> np.ndarray:
        return self.tree.predict(states)


# ----------------------------------------------------------------------
def _greedy_step_fn(policy):
    """Per-step greedy query for the scalar fallback loop.

    Prefers the scalar hook; a policy that only exposes the batched
    interface is queried one row at a time.
    """
    act = getattr(policy, "act_greedy", None)
    if act is not None:
        return lambda state: int(act(state))
    act_batch = policy.act_greedy_batch
    return lambda state: int(
        np.asarray(act_batch(np.asarray(state, dtype=float)[None, :]))[0]
    )


def collect_teacher_dataset(
    env,
    teacher,
    episodes: int,
    rng: SeedLike = None,
) -> DistillDataset:
    """Roll the teacher greedily and record its (state, action) pairs.

    When the environment supports lockstep batching (``as_batch``) and
    the teacher exposes ``act_greedy_batch``, collection runs through the
    vectorized rollout engine — one batched teacher query per step across
    all live episodes.  The per-step scalar loop is only the fallback for
    environments or teachers without a batched interface; either path
    yields the identical dataset under the same seed.
    """
    rng = as_rng(rng)
    if hasattr(env, "as_batch") and hasattr(teacher, "act_greedy_batch"):
        return collect_teacher_dataset_batch(env, teacher, episodes, rng)
    step_fn = _greedy_step_fn(teacher)
    states: List[np.ndarray] = []
    actions: List[int] = []
    for _ in range(episodes):
        state = env.reset(rng)
        done = False
        while not done:
            action = step_fn(state)
            states.append(np.asarray(state, dtype=float))
            actions.append(action)
            state, _, done, _ = env.step(action)
    return DistillDataset(
        states=np.asarray(states), actions=np.asarray(actions, dtype=int)
    )


def collect_student_states(
    env,
    student: DistilledPolicy,
    episodes: int,
    rng: SeedLike = None,
) -> np.ndarray:
    """Roll the student and record the states it visits (for relabeling).

    Dispatches to the vectorized rollout engine whenever the environment
    is batchable (distilled students always expose a batched greedy
    query — it is one ``FlatTree.predict`` call).
    """
    rng = as_rng(rng)
    if hasattr(env, "as_batch") and hasattr(student, "act_greedy_batch"):
        return collect_student_states_batch(env, student, episodes, rng)
    states: List[np.ndarray] = []
    for _ in range(episodes):
        state = env.reset(rng)
        done = False
        while not done:
            action = student.select(state)
            states.append(np.asarray(state, dtype=float))
            state, _, done, _ = env.step(action)
    return np.asarray(states)


def distill_from_env(
    env,
    teacher,
    config: MetisConfig = None,
    episodes_per_iteration: int = 12,
    seed: SeedLike = 0,
    resample_weights=None,
) -> DistilledPolicy:
    """Full §3.2 conversion loop for a sequential-decision teacher.

    Args:
        env: gym-style environment (natural-unit states).
        teacher: must expose ``act_greedy(state)`` and
            ``act_greedy_batch(states)``; for resampling also
            ``q_values(states)`` (or pass ``resample_weights``).
        config: leaf budget, DAgger iterations, resampling toggle.
        episodes_per_iteration: rollouts collected per DAgger round.
        seed: RNG seed.
        resample_weights: optional callable ``states -> weights``
            overriding the Eq. 1 weights.
    """
    config = config if config is not None else MetisConfig()
    rng = as_rng(seed)
    dataset = collect_teacher_dataset(
        env, teacher, episodes_per_iteration, rng
    )
    student = _fit_student(dataset, teacher, config, rng, resample_weights)
    for _ in range(max(config.dagger_iterations - 1, 0)):
        visited = collect_student_states(
            env, student, episodes_per_iteration, rng
        )
        # One batched teacher query relabels the whole student rollout.
        relabeled = DistillDataset.from_policy(visited, teacher)
        dataset = dataset.merge(relabeled)
        student = _fit_student(dataset, teacher, config, rng, resample_weights)
    return student


def _fit_student(
    dataset: DistillDataset,
    teacher,
    config: MetisConfig,
    rng: np.random.Generator,
    resample_weights=None,
) -> DistilledPolicy:
    train = dataset
    if config.resample:
        if resample_weights is not None:
            weights = np.asarray(resample_weights(dataset.states), dtype=float)
        else:
            q = teacher.q_values(dataset.states)
            v = q.max(axis=1)
            weights = np.maximum(v - q.min(axis=1), 0.0)
            # Soften with a uniform mixture: our Q comes from post-hoc
            # fitted evaluation (the paper's comes from the RL training
            # itself), and raw Eq. 1 weights over-concentrate on its noise.
            weights = weights + weights.mean()
        train = dataset.resample(weights, rng=rng)
    n_actions = getattr(teacher, "n_actions", None)
    if n_actions is None:
        n_actions = int(np.max(train.actions)) + 1
    tree = DecisionTreeClassifier(
        n_classes=n_actions,
        max_leaf_nodes=config.leaf_nodes,
        min_samples_leaf=2,
        splitter=config.splitter,
        hist_bins=config.hist_bins,
    )
    tree.fit(train.states, train.actions.astype(int), sample_weight=train.weights)
    return DistilledPolicy(tree=tree)


# ----------------------------------------------------------------------
def distill_from_dataset(
    dataset: DistillDataset,
    leaf_nodes: int = 200,
    n_classes: Optional[int] = None,
    prune_leaves: Optional[int] = None,
    splitter: str = "presorted",
    hist_bins: int = 256,
) -> DistilledPolicy:
    """Fit a classification tree to a recorded teacher dataset (lRLA)."""
    tree = DecisionTreeClassifier(
        n_classes=n_classes, max_leaf_nodes=leaf_nodes, min_samples_leaf=2,
        splitter=splitter, hist_bins=hist_bins,
    )
    tree.fit(dataset.states, dataset.actions.astype(int),
             sample_weight=dataset.weights)
    if prune_leaves is not None and prune_leaves < tree.n_leaves:
        tree = prune_to_leaves(tree, prune_leaves)
    return DistilledPolicy(tree=tree)


def distill_regressor(
    states: np.ndarray,
    targets: np.ndarray,
    leaf_nodes: int = 200,
    sample_weight: Optional[np.ndarray] = None,
    splitter: str = "presorted",
    hist_bins: int = 256,
) -> DistilledRegressor:
    """Fit a (multi-output) regression tree to continuous teacher outputs
    (sRLA thresholds; the paper's regression-tree design for continuous
    outputs, §3.2 Step 3)."""
    tree = DecisionTreeRegressor(
        max_leaf_nodes=leaf_nodes, min_samples_leaf=2, splitter=splitter,
        hist_bins=hist_bins,
    )
    tree.fit(states, targets, sample_weight=sample_weight)
    return DistilledRegressor(tree=tree)
