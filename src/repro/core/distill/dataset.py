"""Distillation datasets: (state, teacher action, weight) triples.

The paper's Step 2 resamples the dataset according to the advantage
(Eq. 1); §6.3's debugging fix *oversamples* actions the teacher rarely
takes.  Both are dataset transforms and live here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng


@dataclass
class DistillDataset:
    """A weighted supervised dataset distilled from a teacher policy."""

    states: np.ndarray
    actions: np.ndarray
    weights: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.states = np.atleast_2d(np.asarray(self.states, dtype=float))
        self.actions = np.asarray(self.actions)
        if self.states.shape[0] != self.actions.shape[0]:
            raise ValueError("states/actions length mismatch")
        if self.weights is not None:
            self.weights = np.asarray(self.weights, dtype=float)
            if self.weights.shape[0] != self.actions.shape[0]:
                raise ValueError("weights length mismatch")

    def __len__(self) -> int:
        return int(self.actions.shape[0])

    @classmethod
    def from_policy(cls, states: np.ndarray, policy) -> "DistillDataset":
        """Label ``states`` with one batched policy query (DAgger relabel).

        ``policy`` is anything exposing ``act_greedy_batch`` — a teacher
        or a distilled tree; the whole state matrix goes through a single
        vectorized call instead of a per-row loop.
        """
        states = np.atleast_2d(np.asarray(states, dtype=float))
        actions = np.asarray(policy.act_greedy_batch(states))
        return cls(states=states, actions=actions)

    def agreement_with(self, policy) -> float:
        """Fraction of rows where ``policy``'s batched greedy action
        matches the recorded action (tree-vs-teacher fidelity)."""
        if len(self) == 0:
            return 0.0
        predicted = np.asarray(policy.act_greedy_batch(self.states))
        return float((predicted == self.actions).mean())

    def merge(self, other: "DistillDataset") -> "DistillDataset":
        """Concatenate two datasets (weights default to 1 where missing)."""
        w_self = self.weights if self.weights is not None else np.ones(len(self))
        w_other = (
            other.weights if other.weights is not None else np.ones(len(other))
        )
        return DistillDataset(
            states=np.concatenate([self.states, other.states]),
            actions=np.concatenate([self.actions, other.actions]),
            weights=np.concatenate([w_self, w_other]),
        )

    def resample(
        self, probabilities: np.ndarray, size: Optional[int] = None,
        rng: SeedLike = None,
    ) -> "DistillDataset":
        """Draw a bootstrap sample with the given per-row probabilities.

        This is the paper's Eq. 1 step: ``p(s, a)`` proportional to
        ``V(s) - min_a' Q(s, a')``.  Weights are reset to 1 after
        resampling (importance is now carried by duplication).
        """
        p = np.asarray(probabilities, dtype=float)
        if p.shape[0] != len(self):
            raise ValueError("probability vector length mismatch")
        if np.any(p < 0):
            raise ValueError("probabilities must be non-negative")
        total = p.sum()
        if total <= 0:
            p = np.ones(len(self)) / len(self)
        else:
            p = p / total
        rng = as_rng(rng)
        n = size if size is not None else len(self)
        idx = rng.choice(len(self), size=n, replace=True, p=p)
        return DistillDataset(
            states=self.states[idx], actions=self.actions[idx]
        )


def oversample_rare_actions(
    dataset: DistillDataset,
    target_frequency: float = 0.01,
    rng: SeedLike = None,
) -> DistillDataset:
    """Duplicate samples of rare actions up to ``target_frequency``.

    This is the §6.3 debugging fix (Metis+Pensieve-O): the conversion
    exposes the training set, so missing bitrates can simply be
    oversampled until their post-sampling frequency is ~1%.
    Only meaningful for integer (classification) actions.
    """
    if not 0 < target_frequency < 1:
        raise ValueError("target_frequency must be in (0, 1)")
    actions = dataset.actions.astype(int)
    rng = as_rng(rng)
    n = len(dataset)
    counts = np.bincount(actions)
    extra_states = [dataset.states]
    extra_actions = [actions]
    for a, count in enumerate(counts):
        if count == 0:
            continue  # never seen: nothing to duplicate
        frequency = count / n
        if frequency >= target_frequency:
            continue
        needed = int(np.ceil(target_frequency * n)) - count
        pool = np.nonzero(actions == a)[0]
        picks = rng.choice(pool, size=needed, replace=True)
        extra_states.append(dataset.states[picks])
        extra_actions.append(actions[picks])
    return DistillDataset(
        states=np.concatenate(extra_states),
        actions=np.concatenate(extra_actions),
    )
