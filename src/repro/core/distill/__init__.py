"""Teacher-student conversion of DNN policies into decision trees (§3.2)."""

from repro.core.distill.dataset import (
    DistillDataset,
    oversample_rare_actions,
)
from repro.core.distill.rollout import (
    collect_rollouts_batch,
    collect_student_states_batch,
    collect_teacher_dataset_batch,
)
from repro.core.distill.viper import (
    DistilledPolicy,
    DistilledRegressor,
    distill_from_env,
    distill_from_dataset,
    distill_regressor,
)
from repro.core.distill.metrics import fidelity_accuracy, fidelity_rmse

__all__ = [
    "DistillDataset",
    "oversample_rare_actions",
    "DistilledPolicy",
    "DistilledRegressor",
    "collect_rollouts_batch",
    "collect_student_states_batch",
    "collect_teacher_dataset_batch",
    "distill_from_env",
    "distill_from_dataset",
    "distill_regressor",
    "fidelity_accuracy",
    "fidelity_rmse",
]
