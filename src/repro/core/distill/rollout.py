"""Vectorized DAgger rollout collection (lockstep batch episodes).

The seed collected traces one episode at a time, one ``env.step`` and one
policy query per chunk — thousands of single-row numpy dispatches per
DAgger round.  This engine instead runs all requested episodes *in
lockstep* on a batch environment (``env.as_batch(n)``): each wall-clock
step advances every live episode at once and issues **one** batched
policy call (``act_greedy_batch`` — for a distilled tree that is a single
``FlatTree.predict``) across all live states.

Ordering contract: the returned dataset lists episode 0's states in step
order, then episode 1's, and so on — exactly the order the serial loop
produced — and the batch environment draws its reset randomness per
episode in episode order, so collection is bit-for-bit reproducible
against the serial path under the same seed (``tests/test_rollout.py``
pins this).

Duck-typed requirements: the environment must expose ``as_batch(n)``
(see :class:`repro.envs.abr.env.BatchABREnv` for the contract) and the
policy a batched greedy query.  ``repro.core.distill.viper`` falls back
to the scalar per-step loop when either half is missing.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.core.distill.dataset import DistillDataset
from repro.utils.rng import SeedLike, as_rng

__all__ = [
    "collect_rollouts_batch",
    "collect_teacher_dataset_batch",
    "collect_student_states_batch",
]


def collect_rollouts_batch(
    env,
    act_batch: Callable[[np.ndarray], np.ndarray],
    episodes: int,
    rng: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Roll ``episodes`` lockstep episodes greedily under ``act_batch``.

    Args:
        env: an environment exposing ``as_batch(n)``.
        act_batch: maps a ``(m, state_dim)`` matrix of live states to
            ``(m,)`` greedy actions; called once per lockstep step.
        episodes: number of parallel episodes.
        rng: seed or generator for the per-episode resets.

    Returns:
        ``(states, actions)`` in episode-major order (episode 0's steps
        first), matching the serial collection loop's layout.
    """
    rng = as_rng(rng)
    batch = env.as_batch(episodes)
    obs = batch.reset(rng)
    live = ~batch.done
    step_states = []
    step_actions = []
    step_live = []
    while live.any():
        if live.all():
            actions = np.asarray(act_batch(obs), dtype=int)
        else:
            actions = np.zeros(episodes, dtype=int)
            actions[live] = np.asarray(act_batch(obs[live]), dtype=int)
        step_states.append(obs)
        step_actions.append(actions)
        step_live.append(live)
        obs, _, done, _ = batch.step(actions)
        live = ~done
    states = np.stack(step_states)  # (T, n, state_dim)
    acts = np.stack(step_actions)  # (T, n)
    mask = np.stack(step_live)  # (T, n)
    # Re-interleave lockstep (step-major) records into episode-major
    # order so batched and serial collection yield identical datasets.
    states_out = np.concatenate(
        [states[mask[:, e], e] for e in range(episodes)]
    )
    actions_out = np.concatenate(
        [acts[mask[:, e], e] for e in range(episodes)]
    )
    return states_out, actions_out


def collect_teacher_dataset_batch(
    env,
    teacher,
    episodes: int,
    rng: SeedLike = None,
) -> DistillDataset:
    """Batched Step-1 trace collection: teacher rollouts as a dataset."""
    states, actions = collect_rollouts_batch(
        env, teacher.act_greedy_batch, episodes, rng
    )
    return DistillDataset(states=states, actions=actions)


def collect_student_states_batch(
    env,
    student,
    episodes: int,
    rng: SeedLike = None,
) -> np.ndarray:
    """Batched DAgger visitation: states the student's greedy policy
    reaches (to be relabeled by the teacher in one batched query)."""
    states, _ = collect_rollouts_batch(
        env, student.act_greedy_batch, episodes, rng
    )
    return states
