"""Fidelity metrics between a teacher policy and its interpretation.

Appendix E measures (i) accuracy: how often the interpretation picks the
teacher's action, and (ii) RMSE: how far the interpretation's output
vector (class probabilities or continuous action) is from the teacher's.
"""

from __future__ import annotations

import numpy as np


def fidelity_accuracy(
    teacher_actions: np.ndarray, student_actions: np.ndarray
) -> float:
    """Fraction of states where student and teacher choose alike."""
    a = np.asarray(teacher_actions)
    b = np.asarray(student_actions)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        return 0.0
    return float((a == b).mean())


def fidelity_rmse(
    teacher_outputs: np.ndarray, student_outputs: np.ndarray
) -> float:
    """Root mean squared error between output vectors."""
    a = np.asarray(teacher_outputs, dtype=float)
    b = np.asarray(student_outputs, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        return 0.0
    return float(np.sqrt(((a - b) ** 2).mean()))
