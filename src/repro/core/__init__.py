"""Metis core: decision-tree distillation for local systems (§3) and
hypergraph critical-connection search for global systems (§4)."""
