"""Lloyd's k-means (Appendix E clusters the state space before fitting
the per-cluster LIME/LEMNA surrogates)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng


def kmeans(
    x: np.ndarray,
    k: int,
    iterations: int = 50,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Cluster rows of ``x`` into ``k`` groups.

    Returns:
        (centroids ``(k, d)``, assignment ``(n,)``).  Empty clusters are
        re-seeded from the farthest points, so all ``k`` labels occur
        whenever ``n >= k``.
    """
    x = np.atleast_2d(np.asarray(x, dtype=float))
    n = x.shape[0]
    if k < 1:
        raise ValueError("k must be positive")
    k = min(k, n)
    rng = as_rng(seed)
    centroids = x[rng.choice(n, size=k, replace=False)].copy()
    assign = np.zeros(n, dtype=int)
    for _ in range(iterations):
        dists = ((x[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        new_assign = np.argmin(dists, axis=1)
        for c in range(k):
            members = x[new_assign == c]
            if members.shape[0] == 0:
                far = int(np.argmax(dists.min(axis=1)))
                centroids[c] = x[far]
                new_assign[far] = c
            else:
                centroids[c] = members.mean(axis=0)
        if np.array_equal(new_assign, assign):
            assign = new_assign
            break
        assign = new_assign
    return centroids, assign


def assign_clusters(x: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid assignment for new points."""
    x = np.atleast_2d(np.asarray(x, dtype=float))
    dists = ((x[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    return np.argmin(dists, axis=1)
