"""LEMNA-style baseline: mixture of linear regressions fit by EM.

LEMNA [Guo et al., CCS'18] explains deep models over sequential inputs
with a mixture-regression surrogate.  As in Appendix E, the state space
is first clustered; inside each cluster a K-component Gaussian mixture of
linear regressions is fit by expectation-maximization, and predictions
use the responsibility-weighted component mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.baselines.clustering import assign_clusters, kmeans
from repro.utils.rng import SeedLike, as_rng


@dataclass
class _Mixture:
    """One cluster's mixture of linear regressions."""

    coef: np.ndarray      # (components, d+1, k_out)
    variance: np.ndarray  # (components,)
    weight: np.ndarray    # (components,)


@dataclass
class LemnaInterpreter:
    """Clustered mixture-regression surrogate.

    Attributes:
        n_clusters: k-means groups.
        components: mixture components per cluster.
        em_iterations: EM steps per cluster.
        ridge: regression regularizer in the M-step.
    """

    n_clusters: int = 10
    components: int = 3
    em_iterations: int = 15
    ridge: float = 1e-3
    _centroids: Optional[np.ndarray] = field(default=None, repr=False)
    _mixtures: List[_Mixture] = field(default_factory=list, repr=False)

    def fit(
        self, states: np.ndarray, outputs: np.ndarray, seed: SeedLike = 0
    ) -> "LemnaInterpreter":
        states = np.atleast_2d(np.asarray(states, dtype=float))
        outputs = np.asarray(outputs, dtype=float)
        if outputs.ndim == 1:
            outputs = outputs[:, None]
        rng = as_rng(seed)
        self._centroids, assign = kmeans(states, self.n_clusters, seed=rng)
        self._mixtures = []
        for c in range(self._centroids.shape[0]):
            members = assign == c
            self._mixtures.append(
                self._fit_mixture(states[members], outputs[members], rng,
                                  outputs.mean(axis=0))
            )
        return self

    def _fit_mixture(
        self,
        x: np.ndarray,
        y: np.ndarray,
        rng: np.random.Generator,
        fallback: np.ndarray,
    ) -> _Mixture:
        k_out = y.shape[1] if y.ndim == 2 else 1
        d = x.shape[1]
        m = self.components
        if x.shape[0] < 2 * m:
            coef = np.zeros((m, d + 1, k_out))
            coef[:, -1, :] = fallback
            return _Mixture(
                coef=coef, variance=np.ones(m), weight=np.full(m, 1.0 / m)
            )
        xb = np.concatenate([x, np.ones((x.shape[0], 1))], axis=1)
        n = xb.shape[0]
        # Random responsibility init.
        resp = rng.dirichlet(np.ones(m), size=n)
        coef = np.zeros((m, d + 1, k_out))
        variance = np.ones(m)
        weight = np.full(m, 1.0 / m)
        for _ in range(self.em_iterations):
            # M-step: weighted ridge regression per component.
            for j in range(m):
                w = resp[:, j]
                gram = (xb * w[:, None]).T @ xb + self.ridge * np.eye(d + 1)
                coef[j] = np.linalg.solve(gram, (xb * w[:, None]).T @ y)
                err = y - xb @ coef[j]
                total = max(w.sum(), 1e-9)
                variance[j] = max(
                    float((w * (err**2).sum(axis=1)).sum() / (total * k_out)),
                    1e-6,
                )
                weight[j] = total / n
            # E-step: Gaussian responsibilities.
            log_resp = np.empty((n, m))
            for j in range(m):
                err = y - xb @ coef[j]
                sq = (err**2).sum(axis=1)
                log_resp[:, j] = (
                    np.log(max(weight[j], 1e-12))
                    - 0.5 * k_out * np.log(2 * np.pi * variance[j])
                    - 0.5 * sq / variance[j]
                )
            log_resp -= log_resp.max(axis=1, keepdims=True)
            resp = np.exp(log_resp)
            resp /= resp.sum(axis=1, keepdims=True)
        return _Mixture(coef=coef, variance=variance, weight=weight)

    def predict_outputs(self, states: np.ndarray) -> np.ndarray:
        """Mixture-weighted surrogate outputs for new states."""
        if self._centroids is None:
            raise RuntimeError("fit must be called first")
        states = np.atleast_2d(np.asarray(states, dtype=float))
        assign = assign_clusters(states, self._centroids)
        xb = np.concatenate([states, np.ones((states.shape[0], 1))], axis=1)
        k_out = self._mixtures[0].coef.shape[2]
        out = np.zeros((states.shape[0], k_out))
        for c in np.unique(assign):
            members = assign == c
            mix = self._mixtures[c]
            pred = np.zeros((members.sum(), k_out))
            for j in range(mix.coef.shape[0]):
                pred += mix.weight[j] * (xb[members] @ mix.coef[j])
            out[members] = pred
        return out

    def predict(self, states: np.ndarray) -> np.ndarray:
        """Argmax action prediction (classification fidelity)."""
        return np.argmax(self.predict_outputs(states), axis=1)
