"""LIME-style baseline: per-cluster local linear surrogates.

LIME [Ribeiro et al., KDD'16] explains a blackbox with a sparse linear
model around a sample.  Following the paper's Appendix E protocol, the
state space is first k-means-clustered and a ridge-regularized linear
model of the teacher's output is fit inside each cluster; predictions for
new states come from their cluster's surrogate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.baselines.clustering import assign_clusters, kmeans
from repro.utils.rng import SeedLike


@dataclass
class LimeInterpreter:
    """Clustered local linear surrogate of a teacher mapping.

    Attributes:
        n_clusters: number of k-means groups (Appendix E sweeps 1..50).
        ridge: L2 regularization of each local regression.
    """

    n_clusters: int = 10
    ridge: float = 1e-3
    _centroids: Optional[np.ndarray] = field(default=None, repr=False)
    _coef: List[np.ndarray] = field(default_factory=list, repr=False)

    def fit(
        self, states: np.ndarray, outputs: np.ndarray, seed: SeedLike = 0
    ) -> "LimeInterpreter":
        """Fit local surrogates of ``outputs`` (2-D: probs or actions)."""
        states = np.atleast_2d(np.asarray(states, dtype=float))
        outputs = np.asarray(outputs, dtype=float)
        if outputs.ndim == 1:
            outputs = outputs[:, None]
        self._centroids, assign = kmeans(
            states, self.n_clusters, seed=seed
        )
        self._coef = []
        for c in range(self._centroids.shape[0]):
            members = assign == c
            x = states[members]
            y = outputs[members]
            self._coef.append(self._ridge_fit(x, y, outputs.mean(axis=0)))
        return self

    def _ridge_fit(
        self, x: np.ndarray, y: np.ndarray, fallback: np.ndarray
    ) -> np.ndarray:
        """Solve (X'X + rI) beta = X'y with intercept; returns (d+1, k)."""
        if x.shape[0] == 0:
            coef = np.zeros((x.shape[1] + 1, fallback.size))
            coef[-1] = fallback
            return coef
        xb = np.concatenate([x, np.ones((x.shape[0], 1))], axis=1)
        gram = xb.T @ xb + self.ridge * np.eye(xb.shape[1])
        return np.linalg.solve(gram, xb.T @ y)

    def predict_outputs(self, states: np.ndarray) -> np.ndarray:
        """Surrogate output vectors for new states."""
        if self._centroids is None:
            raise RuntimeError("fit must be called first")
        states = np.atleast_2d(np.asarray(states, dtype=float))
        assign = assign_clusters(states, self._centroids)
        xb = np.concatenate(
            [states, np.ones((states.shape[0], 1))], axis=1
        )
        out = np.empty((states.shape[0], self._coef[0].shape[1]))
        for c in np.unique(assign):
            members = assign == c
            out[members] = xb[members] @ self._coef[c]
        return out

    def predict(self, states: np.ndarray) -> np.ndarray:
        """Argmax action prediction (classification fidelity)."""
        return np.argmax(self.predict_outputs(states), axis=1)
