"""Interpretation baselines compared against Metis in Appendix E."""

from repro.core.baselines.clustering import kmeans
from repro.core.baselines.lime import LimeInterpreter
from repro.core.baselines.lemna import LemnaInterpreter

__all__ = ["kmeans", "LimeInterpreter", "LemnaInterpreter"]
