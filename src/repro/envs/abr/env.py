"""Trace-driven ABR environment with Pensieve's state layout.

The observation is a 25-dimensional vector in *natural units* (the paper's
Pensieve state has 25 entries, Appendix C), so distilled decision-tree
thresholds read like Fig. 7 (``r_t < 1.53`` Mbps, ``B < 15.0`` s, ...):

====== ============================== =========
index  meaning                        unit
====== ============================== =========
0      last selected bitrate ``r_t``  Mbps
1      playback buffer ``B``          seconds
2–9    past 8 throughputs (9 = θ_t)   Mbps
10–17  past 8 download times (17=T_t) seconds
18–23  next chunk size per rung       MB
24     fraction of chunks remaining   —
====== ============================== =========

Teacher networks normalize internally; trees and heuristics consume the
vector as-is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.envs.abr.qoe import LinearQoE, QoEMetric
from repro.envs.abr.video import Video
from repro.envs.traces import BandwidthTrace
from repro.utils.rng import SeedLike, as_rng

#: Length of the throughput/download-time history window.
HISTORY = 8

IDX_LAST_BITRATE = 0
IDX_BUFFER = 1
THROUGHPUT_SLICE = slice(2, 2 + HISTORY)
DOWNLOAD_TIME_SLICE = slice(2 + HISTORY, 2 + 2 * HISTORY)
NEXT_SIZES_SLICE = slice(2 + 2 * HISTORY, 2 + 2 * HISTORY + 6)
IDX_CHUNKS_LEFT = 2 + 2 * HISTORY + 6

#: Total state dimensionality (matches the paper's "25 states").
STATE_DIM = IDX_CHUNKS_LEFT + 1

FEATURE_NAMES: Tuple[str, ...] = (
    ("r_t", "B")
    + tuple(f"theta_t-{HISTORY - 1 - i}" if i < HISTORY - 1 else "theta_t"
            for i in range(HISTORY))
    + tuple(f"T_t-{HISTORY - 1 - i}" if i < HISTORY - 1 else "T_t"
            for i in range(HISTORY))
    + tuple(f"size_{b}" for b in (300, 750, 1200, 1850, 2850, 4300))
    + ("chunks_left",)
)

#: Round-trip latency added to each chunk fetch (seconds).
RTT_SECONDS = 0.08

#: Fraction of link bandwidth usable as goodput (headers, TCP dynamics).
GOODPUT_RATIO = 0.95

#: Client buffer cap (seconds); the player idles above this.
MAX_BUFFER_SECONDS = 60.0


@dataclass
class ABRState:
    """Structured view of one observation (mainly for humans/tests)."""

    last_bitrate_mbps: float
    buffer_seconds: float
    throughputs_mbps: np.ndarray
    download_times_s: np.ndarray
    next_sizes_mb: np.ndarray
    chunks_left_frac: float

    @classmethod
    def from_vector(cls, vec: np.ndarray) -> "ABRState":
        vec = np.asarray(vec, dtype=float)
        if vec.shape != (STATE_DIM,):
            raise ValueError(f"expected shape ({STATE_DIM},), got {vec.shape}")
        return cls(
            last_bitrate_mbps=float(vec[IDX_LAST_BITRATE]),
            buffer_seconds=float(vec[IDX_BUFFER]),
            throughputs_mbps=vec[THROUGHPUT_SLICE].copy(),
            download_times_s=vec[DOWNLOAD_TIME_SLICE].copy(),
            next_sizes_mb=vec[NEXT_SIZES_SLICE].copy(),
            chunks_left_frac=float(vec[IDX_CHUNKS_LEFT]),
        )


class ABREnv:
    """Sequential bitrate-selection environment.

    Args:
        video: the chunked video being streamed.
        traces: candidate bandwidth traces; ``reset`` samples one.
        qoe: per-chunk reward metric.
        random_start: whether to start at a random trace offset.
    """

    def __init__(
        self,
        video: Video,
        traces: Sequence[BandwidthTrace],
        qoe: QoEMetric = None,
        random_start: bool = True,
    ) -> None:
        if not traces:
            raise ValueError("at least one trace is required")
        self.video = video
        self.traces = list(traces)
        self.qoe = qoe if qoe is not None else LinearQoE()
        self.random_start = random_start
        self._trace: Optional[BandwidthTrace] = None
        self._time = 0.0
        self._buffer = 0.0
        self._chunk = 0
        self._last_level = 0
        self._throughputs = np.zeros(HISTORY)
        self._download_times = np.zeros(HISTORY)

    # ------------------------------------------------------------------
    @property
    def n_actions(self) -> int:
        return self.video.n_bitrates

    @property
    def chunk_index(self) -> int:
        """Index of the chunk the *next* action will download."""
        return self._chunk

    @property
    def current_trace(self) -> BandwidthTrace:
        if self._trace is None:
            raise RuntimeError("reset() must be called first")
        return self._trace

    def reset(
        self, rng: SeedLike = None, trace: Optional[BandwidthTrace] = None
    ) -> np.ndarray:
        """Start a new streaming session; returns the initial observation."""
        rng = as_rng(rng)
        self._trace = trace if trace is not None else (
            self.traces[int(rng.integers(len(self.traces)))]
        )
        self._time = (
            float(rng.uniform(0.0, self._trace.duration))
            if self.random_start and trace is None
            else 0.0
        )
        self._buffer = 0.0
        self._chunk = 0
        self._last_level = 0
        self._throughputs[...] = 0.0
        self._download_times[...] = 0.0
        return self._observation()

    def step(self, action: int) -> Tuple[np.ndarray, float, bool, dict]:
        """Download chunk ``self.chunk_index`` at ladder index ``action``."""
        if self._trace is None:
            raise RuntimeError("reset() must be called first")
        if not 0 <= action < self.n_actions:
            raise ValueError(f"action {action} out of range")
        if self._chunk >= self.video.n_chunks:
            raise RuntimeError("episode already finished")

        size_kbits = self.video.chunk_size_kbits(self._chunk, action)
        download_time = self._simulate_download(size_kbits)

        rebuffer = max(0.0, download_time - self._buffer)
        self._buffer = max(self._buffer - download_time, 0.0)
        self._buffer += self.video.chunk_seconds
        if self._buffer > MAX_BUFFER_SECONDS:
            # Player pauses fetching; wall-clock advances while we idle.
            idle = self._buffer - MAX_BUFFER_SECONDS
            self._time += idle
            self._buffer = MAX_BUFFER_SECONDS

        throughput_mbps = (size_kbits / 1000.0) / max(download_time, 1e-9)
        self._push_history(throughput_mbps, download_time)

        bitrate = self.video.bitrates_kbps[action]
        last_bitrate = self.video.bitrates_kbps[self._last_level]
        reward = self.qoe.reward(bitrate, last_bitrate, rebuffer)

        self._last_level = action
        self._chunk += 1
        done = self._chunk >= self.video.n_chunks
        info = {
            "bitrate_kbps": bitrate,
            "rebuffer_s": rebuffer,
            "buffer_s": self._buffer,
            "download_time_s": download_time,
            "throughput_mbps": throughput_mbps,
            "chunk": self._chunk - 1,
        }
        return self._observation(), reward, done, info

    # ------------------------------------------------------------------
    def upcoming_sizes_kbits(self, horizon: int) -> np.ndarray:
        """Sizes of the next ``horizon`` chunks, shape ``(h, n_bitrates)``.

        Model-predictive baselines use this manifest information; it is
        clipped at the end of the video.
        """
        end = min(self._chunk + horizon, self.video.n_chunks)
        return self.video.sizes_kbits[self._chunk:end].copy()

    def _simulate_download(self, size_kbits: float) -> float:
        """Advance trace time while draining ``size_kbits``; returns seconds."""
        remaining = size_kbits
        elapsed = RTT_SECONDS
        t = self._time + RTT_SECONDS
        while remaining > 0:
            bw = self._trace.bandwidth_at(t) * GOODPUT_RATIO
            slot_left = 1.0 - (t % 1.0)
            can_send = bw * slot_left
            if can_send >= remaining:
                used = remaining / bw
                elapsed += used
                t += used
                remaining = 0.0
            else:
                remaining -= can_send
                elapsed += slot_left
                t += slot_left
        self._time = t
        return elapsed

    def _push_history(self, throughput_mbps: float, download_time: float) -> None:
        self._throughputs[:-1] = self._throughputs[1:]
        self._throughputs[-1] = throughput_mbps
        self._download_times[:-1] = self._download_times[1:]
        self._download_times[-1] = download_time

    def _observation(self) -> np.ndarray:
        vec = np.zeros(STATE_DIM)
        vec[IDX_LAST_BITRATE] = self.video.bitrates_kbps[self._last_level] / 1000.0
        vec[IDX_BUFFER] = self._buffer
        vec[THROUGHPUT_SLICE] = self._throughputs
        vec[DOWNLOAD_TIME_SLICE] = self._download_times
        if self._chunk < self.video.n_chunks:
            sizes = self.video.sizes_kbits[self._chunk] / 8.0 / 1000.0  # MB
        else:
            sizes = np.zeros(self.video.n_bitrates)
        vec[NEXT_SIZES_SLICE] = sizes
        vec[IDX_CHUNKS_LEFT] = (
            (self.video.n_chunks - self._chunk) / self.video.n_chunks
        )
        return vec
