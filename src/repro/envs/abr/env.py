"""Trace-driven ABR environment with Pensieve's state layout.

The observation is a 25-dimensional vector in *natural units* (the paper's
Pensieve state has 25 entries, Appendix C), so distilled decision-tree
thresholds read like Fig. 7 (``r_t < 1.53`` Mbps, ``B < 15.0`` s, ...):

====== ============================== =========
index  meaning                        unit
====== ============================== =========
0      last selected bitrate ``r_t``  Mbps
1      playback buffer ``B``          seconds
2–9    past 8 throughputs (9 = θ_t)   Mbps
10–17  past 8 download times (17=T_t) seconds
18–23  next chunk size per rung       MB
24     fraction of chunks remaining   —
====== ============================== =========

Teacher networks normalize internally; trees and heuristics consume the
vector as-is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.envs.abr.qoe import LinearQoE, QoEMetric
from repro.envs.abr.video import Video
from repro.envs.traces import BandwidthTrace
from repro.utils.rng import SeedLike, as_rng

#: Length of the throughput/download-time history window.
HISTORY = 8

IDX_LAST_BITRATE = 0
IDX_BUFFER = 1
THROUGHPUT_SLICE = slice(2, 2 + HISTORY)
DOWNLOAD_TIME_SLICE = slice(2 + HISTORY, 2 + 2 * HISTORY)
NEXT_SIZES_SLICE = slice(2 + 2 * HISTORY, 2 + 2 * HISTORY + 6)
IDX_CHUNKS_LEFT = 2 + 2 * HISTORY + 6

#: Total state dimensionality (matches the paper's "25 states").
STATE_DIM = IDX_CHUNKS_LEFT + 1

FEATURE_NAMES: Tuple[str, ...] = (
    ("r_t", "B")
    + tuple(f"theta_t-{HISTORY - 1 - i}" if i < HISTORY - 1 else "theta_t"
            for i in range(HISTORY))
    + tuple(f"T_t-{HISTORY - 1 - i}" if i < HISTORY - 1 else "T_t"
            for i in range(HISTORY))
    + tuple(f"size_{b}" for b in (300, 750, 1200, 1850, 2850, 4300))
    + ("chunks_left",)
)

#: Round-trip latency added to each chunk fetch (seconds).
RTT_SECONDS = 0.08

#: Fraction of link bandwidth usable as goodput (headers, TCP dynamics).
GOODPUT_RATIO = 0.95

#: Client buffer cap (seconds); the player idles above this.
MAX_BUFFER_SECONDS = 60.0


@dataclass
class ABRState:
    """Structured view of one observation (mainly for humans/tests)."""

    last_bitrate_mbps: float
    buffer_seconds: float
    throughputs_mbps: np.ndarray
    download_times_s: np.ndarray
    next_sizes_mb: np.ndarray
    chunks_left_frac: float

    @classmethod
    def from_vector(cls, vec: np.ndarray) -> "ABRState":
        vec = np.asarray(vec, dtype=float)
        if vec.shape != (STATE_DIM,):
            raise ValueError(f"expected shape ({STATE_DIM},), got {vec.shape}")
        return cls(
            last_bitrate_mbps=float(vec[IDX_LAST_BITRATE]),
            buffer_seconds=float(vec[IDX_BUFFER]),
            throughputs_mbps=vec[THROUGHPUT_SLICE].copy(),
            download_times_s=vec[DOWNLOAD_TIME_SLICE].copy(),
            next_sizes_mb=vec[NEXT_SIZES_SLICE].copy(),
            chunks_left_frac=float(vec[IDX_CHUNKS_LEFT]),
        )


class ABREnv:
    """Sequential bitrate-selection environment.

    Args:
        video: the chunked video being streamed.
        traces: candidate bandwidth traces; ``reset`` samples one.
        qoe: per-chunk reward metric.
        random_start: whether to start at a random trace offset.
    """

    def __init__(
        self,
        video: Video,
        traces: Sequence[BandwidthTrace],
        qoe: QoEMetric = None,
        random_start: bool = True,
    ) -> None:
        if not traces:
            raise ValueError("at least one trace is required")
        self.video = video
        self.traces = list(traces)
        self.qoe = qoe if qoe is not None else LinearQoE()
        self.random_start = random_start
        self._trace: Optional[BandwidthTrace] = None
        self._time = 0.0
        self._buffer = 0.0
        self._chunk = 0
        self._last_level = 0
        self._throughputs = np.zeros(HISTORY)
        self._download_times = np.zeros(HISTORY)

    # ------------------------------------------------------------------
    @property
    def n_actions(self) -> int:
        return self.video.n_bitrates

    @property
    def chunk_index(self) -> int:
        """Index of the chunk the *next* action will download."""
        return self._chunk

    @property
    def current_trace(self) -> BandwidthTrace:
        if self._trace is None:
            raise RuntimeError("reset() must be called first")
        return self._trace

    def reset(
        self, rng: SeedLike = None, trace: Optional[BandwidthTrace] = None
    ) -> np.ndarray:
        """Start a new streaming session; returns the initial observation."""
        rng = as_rng(rng)
        self._trace = trace if trace is not None else (
            self.traces[int(rng.integers(len(self.traces)))]
        )
        self._time = (
            float(rng.uniform(0.0, self._trace.duration))
            if self.random_start and trace is None
            else 0.0
        )
        self._buffer = 0.0
        self._chunk = 0
        self._last_level = 0
        self._throughputs[...] = 0.0
        self._download_times[...] = 0.0
        return self._observation()

    def step(self, action: int) -> Tuple[np.ndarray, float, bool, dict]:
        """Download chunk ``self.chunk_index`` at ladder index ``action``."""
        if self._trace is None:
            raise RuntimeError("reset() must be called first")
        if not 0 <= action < self.n_actions:
            raise ValueError(f"action {action} out of range")
        if self._chunk >= self.video.n_chunks:
            raise RuntimeError("episode already finished")

        size_kbits = self.video.chunk_size_kbits(self._chunk, action)
        download_time = self._simulate_download(size_kbits)

        rebuffer = max(0.0, download_time - self._buffer)
        self._buffer = max(self._buffer - download_time, 0.0)
        self._buffer += self.video.chunk_seconds
        if self._buffer > MAX_BUFFER_SECONDS:
            # Player pauses fetching; wall-clock advances while we idle.
            idle = self._buffer - MAX_BUFFER_SECONDS
            self._time += idle
            self._buffer = MAX_BUFFER_SECONDS

        throughput_mbps = (size_kbits / 1000.0) / max(download_time, 1e-9)
        self._push_history(throughput_mbps, download_time)

        bitrate = self.video.bitrates_kbps[action]
        last_bitrate = self.video.bitrates_kbps[self._last_level]
        reward = self.qoe.reward(bitrate, last_bitrate, rebuffer)

        self._last_level = action
        self._chunk += 1
        done = self._chunk >= self.video.n_chunks
        info = {
            "bitrate_kbps": bitrate,
            "rebuffer_s": rebuffer,
            "buffer_s": self._buffer,
            "download_time_s": download_time,
            "throughput_mbps": throughput_mbps,
            "chunk": self._chunk - 1,
        }
        return self._observation(), reward, done, info

    # ------------------------------------------------------------------
    def as_batch(self, n_envs: int) -> "BatchABREnv":
        """A lockstep batch view of this environment's configuration.

        The returned :class:`BatchABREnv` simulates ``n_envs``
        independent sessions over the same video/trace set with array
        state; drawing its reset randomness in episode order makes its
        trajectories bit-identical to ``n_envs`` sequential episodes of
        this environment under the same generator.
        """
        return BatchABREnv(
            self.video,
            self.traces,
            qoe=self.qoe,
            random_start=self.random_start,
            n_envs=n_envs,
        )

    # ------------------------------------------------------------------
    def upcoming_sizes_kbits(self, horizon: int) -> np.ndarray:
        """Sizes of the next ``horizon`` chunks, shape ``(h, n_bitrates)``.

        Model-predictive baselines use this manifest information; it is
        clipped at the end of the video.
        """
        end = min(self._chunk + horizon, self.video.n_chunks)
        return self.video.sizes_kbits[self._chunk:end].copy()

    def _simulate_download(self, size_kbits: float) -> float:
        """Advance trace time while draining ``size_kbits``; returns seconds."""
        remaining = size_kbits
        elapsed = RTT_SECONDS
        t = self._time + RTT_SECONDS
        while remaining > 0:
            bw = self._trace.bandwidth_at(t) * GOODPUT_RATIO
            slot_left = 1.0 - (t % 1.0)
            can_send = bw * slot_left
            if can_send >= remaining:
                used = remaining / bw
                elapsed += used
                t += used
                remaining = 0.0
            else:
                remaining -= can_send
                elapsed += slot_left
                t += slot_left
        self._time = t
        return elapsed

    def _push_history(self, throughput_mbps: float, download_time: float) -> None:
        self._throughputs[:-1] = self._throughputs[1:]
        self._throughputs[-1] = throughput_mbps
        self._download_times[:-1] = self._download_times[1:]
        self._download_times[-1] = download_time

    def _observation(self) -> np.ndarray:
        vec = np.zeros(STATE_DIM)
        vec[IDX_LAST_BITRATE] = self.video.bitrates_kbps[self._last_level] / 1000.0
        vec[IDX_BUFFER] = self._buffer
        vec[THROUGHPUT_SLICE] = self._throughputs
        vec[DOWNLOAD_TIME_SLICE] = self._download_times
        if self._chunk < self.video.n_chunks:
            sizes = self.video.sizes_kbits[self._chunk] / 8.0 / 1000.0  # MB
        else:
            sizes = np.zeros(self.video.n_bitrates)
        vec[NEXT_SIZES_SLICE] = sizes
        vec[IDX_CHUNKS_LEFT] = (
            (self.video.n_chunks - self._chunk) / self.video.n_chunks
        )
        return vec


class BatchABREnv:
    """``n_envs`` independent ABR sessions stepped in lockstep.

    All per-session state lives in arrays indexed by episode, and
    ``step`` advances every live session with vectorized operations —
    the trace drain loop iterates over 1-second slots *across* episodes
    instead of once per episode.  Per-episode arithmetic is the same
    float64 sequence as :class:`ABREnv`, so a batch rollout reproduces
    ``n_envs`` sequential serial rollouts bit for bit (the equivalence
    is pinned by ``tests/test_rollout.py``).

    Finished sessions ignore further ``step`` calls (their reward is 0
    and their observation frozen) so ragged episode lengths need no
    padding logic in callers.

    Args:
        video: the chunked video being streamed (shared by all sessions).
        traces: candidate bandwidth traces; ``reset`` samples one per
            session.
        qoe: per-chunk reward metric (batched via ``reward_batch``).
        random_start: whether sessions start at random trace offsets.
        n_envs: number of parallel sessions.
    """

    def __init__(
        self,
        video: Video,
        traces: Sequence[BandwidthTrace],
        qoe: QoEMetric = None,
        random_start: bool = True,
        n_envs: int = 1,
    ) -> None:
        if not traces:
            raise ValueError("at least one trace is required")
        if n_envs < 1:
            raise ValueError("n_envs must be at least 1")
        self.video = video
        self.traces = list(traces)
        self.qoe = qoe if qoe is not None else LinearQoE()
        self.random_start = random_start
        self.n_envs = n_envs
        # Trace table: one padded row per trace, plus per-trace duration
        # (indexing is always modulo the true duration, so the padding is
        # never read).
        max_len = max(tr.bandwidths_kbps.size for tr in self.traces)
        # Goodput-scaled up front: the serial path computes
        # ``bandwidth_at(t) * GOODPUT_RATIO`` per slot; scaling each table
        # entry once is the same two-operand product, so per-slot values
        # stay bit-identical while the hot loop saves a multiply.
        self._bw_goodput = np.zeros((len(self.traces), max_len))
        for i, tr in enumerate(self.traces):
            self._bw_goodput[i, : tr.bandwidths_kbps.size] = (
                tr.bandwidths_kbps * GOODPUT_RATIO
            )
        self._durations = np.asarray([tr.duration for tr in self.traces])
        self._ladder = np.asarray(video.bitrates_kbps, dtype=float)
        n = n_envs
        self._trace_ids = np.zeros(n, dtype=int)
        self._time = np.zeros(n)
        self._buffer = np.zeros(n)
        self._chunk = np.zeros(n, dtype=int)
        self._last_level = np.zeros(n, dtype=int)
        self._throughputs = np.zeros((n, HISTORY))
        self._download_times = np.zeros((n, HISTORY))
        self._finished = np.ones(n, dtype=bool)  # reset() must run first

    # ------------------------------------------------------------------
    @property
    def n_actions(self) -> int:
        return self.video.n_bitrates

    @property
    def done(self) -> np.ndarray:
        """Per-session finished flags (copy)."""
        return self._finished.copy()

    def reset(self, rng: SeedLike = None) -> np.ndarray:
        """Start ``n_envs`` sessions; returns observations ``(n, 25)``.

        The trace choice and start offset are drawn *per episode in
        episode order* — the same generator sequence ``n_envs``
        back-to-back ``ABREnv.reset`` calls would consume — which is
        what makes batch and serial rollouts comparable seed for seed.
        """
        rng = as_rng(rng)
        for i in range(self.n_envs):
            tid = int(rng.integers(len(self.traces)))
            self._trace_ids[i] = tid
            self._time[i] = (
                float(rng.uniform(0.0, self._durations[tid]))
                if self.random_start
                else 0.0
            )
        self._buffer[...] = 0.0
        self._chunk[...] = 0
        self._last_level[...] = 0
        self._throughputs[...] = 0.0
        self._download_times[...] = 0.0
        self._finished[...] = False
        return self._observations()

    def step(
        self, actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, dict]:
        """Advance every live session one chunk download.

        Args:
            actions: ladder indices, shape ``(n_envs,)``; entries for
                finished sessions are ignored.

        Returns:
            ``(observations, rewards, done, info)`` where rewards of
            finished sessions are 0 and ``info`` holds per-session
            arrays (meaningful at live positions only).
        """
        if self._finished.all() and self._chunk.max() == 0:
            raise RuntimeError("reset() must be called first")
        actions = np.asarray(actions, dtype=int)
        if actions.shape != (self.n_envs,):
            raise ValueError(
                f"actions must have shape ({self.n_envs},), "
                f"got {actions.shape}"
            )
        n = self.n_envs
        # Fast path: while no session has finished (always, for equal
        # length episodes) basic slices replace fancy-index copies.
        if not self._finished.any():
            live = slice(None)
            live_ids = np.arange(n)
            n_live = n
        else:
            live = np.nonzero(~self._finished)[0]
            live_ids = live
            n_live = live.size
        rewards = np.zeros(n)
        info = {}
        if n_live:
            acts = actions[live]
            if acts.min() < 0 or acts.max() >= self.n_actions:
                raise ValueError("action out of range")
            # Copy: on the slice path this would otherwise alias
            # ``self._chunk`` and silently advance with it below.
            chunks = self._chunk[live].copy()
            size_kbits = self.video.sizes_kbits[chunks, acts]
            download_time = self._simulate_download(size_kbits, live)

            buf = self._buffer[live]
            rebuffer = np.maximum(0.0, download_time - buf)
            buf = np.maximum(buf - download_time, 0.0)
            buf = buf + self.video.chunk_seconds
            over = buf > MAX_BUFFER_SECONDS
            idle = np.where(over, buf - MAX_BUFFER_SECONDS, 0.0)
            self._time[live] += idle
            buf = np.minimum(buf, MAX_BUFFER_SECONDS)
            self._buffer[live] = buf

            throughput_mbps = (size_kbits / 1000.0) / np.maximum(
                download_time, 1e-9
            )
            self._throughputs[live, :-1] = self._throughputs[live, 1:]
            self._throughputs[live, -1] = throughput_mbps
            self._download_times[live, :-1] = self._download_times[live, 1:]
            self._download_times[live, -1] = download_time

            bitrate = self._ladder[acts]
            last_bitrate = self._ladder[self._last_level[live]]
            rewards[live] = self.qoe.reward_batch(
                bitrate, last_bitrate, rebuffer
            )

            self._last_level[live] = acts
            self._chunk[live] = chunks + 1
            self._finished[live] = self._chunk[live] >= self.video.n_chunks
            info = {
                "bitrate_kbps": bitrate,
                "rebuffer_s": rebuffer,
                "buffer_s": buf,
                "download_time_s": download_time,
                "throughput_mbps": throughput_mbps,
                "chunk": chunks,
                "episodes": live_ids,
            }
        return self._observations(), rewards, self.done, info

    # ------------------------------------------------------------------
    def _simulate_download(
        self, size_kbits: np.ndarray, live: np.ndarray
    ) -> np.ndarray:
        """Drain ``size_kbits`` for the ``live`` sessions; returns seconds.

        Same slot-by-slot arithmetic as ``ABREnv._simulate_download``,
        but one iteration advances *every* still-draining session one
        trace slot, so the Python-level loop count is the slowest
        session's slot count instead of the sum over sessions.
        """
        tr = self._trace_ids[live]  # ``live`` is an index array or slice
        dur = self._durations[tr]
        remaining = np.asarray(size_kbits, dtype=float).copy()
        elapsed = np.full(tr.shape[0], RTT_SECONDS)
        t = self._time[live] + RTT_SECONDS
        active = remaining > 0.0
        while active.any():
            slot_idx = (t % dur).astype(np.int64)
            bw = self._bw_goodput[tr, slot_idx]
            slot_left = 1.0 - (t % 1.0)
            can_send = bw * slot_left
            finish = can_send >= remaining
            # Masked arithmetic instead of np.where chains: a finishing
            # session drains ``remaining`` to exactly 0.0 (x - x), an
            # inactive one advances by exactly 0.0 — per-element values
            # match the serial branchy updates bit for bit.
            advance = np.where(finish, remaining / bw, slot_left)
            advance *= active
            elapsed += advance
            t += advance
            send = np.where(finish, remaining, can_send)
            remaining -= send * active
            active = remaining > 0.0
        self._time[live] = t
        return elapsed

    def _observations(self) -> np.ndarray:
        obs = np.zeros((self.n_envs, STATE_DIM))
        obs[:, IDX_LAST_BITRATE] = self._ladder[self._last_level] / 1000.0
        obs[:, IDX_BUFFER] = self._buffer
        obs[:, THROUGHPUT_SLICE] = self._throughputs
        obs[:, DOWNLOAD_TIME_SLICE] = self._download_times
        in_video = self._chunk < self.video.n_chunks
        if np.any(in_video):
            obs[np.nonzero(in_video)[0], NEXT_SIZES_SLICE] = (
                self.video.sizes_kbits[self._chunk[in_video]] / 8.0 / 1000.0
            )
        obs[:, IDX_CHUNKS_LEFT] = (
            (self.video.n_chunks - self._chunk) / self.video.n_chunks
        )
        return obs
