"""Heuristic ABR baselines: BB, RB, FESTIVE, BOLA, RobustMPC, Fixed.

These are the comparison policies of Figs. 12–15 and Table 5.  Each policy
consumes the 25-dim observation vector of :mod:`repro.envs.abr.env` (plus,
for MPC, the manifest information the real algorithms also have) and
returns a ladder index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.envs.abr.env import (
    ABREnv,
    IDX_BUFFER,
    IDX_LAST_BITRATE,
    THROUGHPUT_SLICE,
)
from repro.utils.rng import SeedLike, as_rng


class ABRPolicy:
    """Interface for bitrate-selection policies."""

    name = "abr"

    def reset(self) -> None:
        """Clear per-session state (called before each trace)."""

    def select(self, state: np.ndarray, env: ABREnv) -> int:
        raise NotImplementedError


def _harmonic_mean(values: np.ndarray) -> float:
    """Harmonic mean of the positive entries (0 when none exist)."""
    positive = values[values > 0]
    if positive.size == 0:
        return 0.0
    return float(positive.size / np.sum(1.0 / positive))


def _max_level_below(bitrates_kbps: Sequence[int], budget_kbps: float) -> int:
    """Highest ladder index with bitrate <= budget (0 if none)."""
    level = 0
    for i, rate in enumerate(bitrates_kbps):
        if rate <= budget_kbps:
            level = i
    return level


class FixedLowest(ABRPolicy):
    """Always the lowest rung — the §6.4 resource-consumption control."""

    name = "Fixed"

    def select(self, state: np.ndarray, env: ABREnv) -> int:
        return 0


@dataclass
class BufferBased(ABRPolicy):
    """BB [Huang et al., SIGCOMM'14]: map buffer linearly to the ladder.

    Below ``reservoir`` seconds pick the lowest rung; above
    ``reservoir + cushion`` pick the highest; interpolate in between.
    """

    reservoir: float = 5.0
    cushion: float = 10.0
    name: str = "BB"

    def select(self, state: np.ndarray, env: ABREnv) -> int:
        buffer = state[IDX_BUFFER]
        n = env.n_actions
        if buffer <= self.reservoir:
            return 0
        if buffer >= self.reservoir + self.cushion:
            return n - 1
        frac = (buffer - self.reservoir) / self.cushion
        return int(np.clip(round(frac * (n - 1)), 0, n - 1))


@dataclass
class RateBased(ABRPolicy):
    """RB: highest bitrate below the harmonic-mean throughput estimate."""

    window: int = 5
    safety: float = 1.0
    name: str = "RB"

    def select(self, state: np.ndarray, env: ABREnv) -> int:
        history = state[THROUGHPUT_SLICE][-self.window:]
        estimate_kbps = _harmonic_mean(history) * 1000.0 * self.safety
        return _max_level_below(env.video.bitrates_kbps, estimate_kbps)


@dataclass
class Festive(ABRPolicy):
    """FESTIVE [Jiang et al., CoNEXT'12], simplified.

    Conservative throughput estimate (harmonic mean scaled by 0.85),
    stepwise switching only, and an upward switch requires the target to be
    sustained for ``patience`` consecutive decisions (stability term).
    """

    window: int = 5
    discount: float = 0.85
    patience: int = 2
    name: str = "FESTIVE"
    _up_count: int = field(default=0, repr=False)

    def reset(self) -> None:
        self._up_count = 0

    def select(self, state: np.ndarray, env: ABREnv) -> int:
        history = state[THROUGHPUT_SLICE][-self.window:]
        estimate_kbps = _harmonic_mean(history) * 1000.0 * self.discount
        target = _max_level_below(env.video.bitrates_kbps, estimate_kbps)
        current = _level_from_state(state, env)
        if target > current:
            self._up_count += 1
            if self._up_count >= self.patience:
                self._up_count = 0
                return current + 1
            return current
        self._up_count = 0
        if target < current:
            return current - 1
        return current


@dataclass
class Bola(ABRPolicy):
    """BOLA [Spiteri et al., INFOCOM'16], the buffer-only Lyapunov variant.

    Picks ``argmax_m (V * (utility_m + gamma_p) - B) / size_m`` whenever the
    numerator is positive, where utility is log-relative chunk size.
    """

    gamma_p: float = 5.0
    buffer_target: float = 25.0
    name: str = "BOLA"

    def select(self, state: np.ndarray, env: ABREnv) -> int:
        sizes = env.upcoming_sizes_kbits(1)
        if sizes.shape[0] == 0:
            return 0
        sizes = sizes[0]
        utilities = np.log(sizes / sizes[0])
        # Control parameter chosen so the top rung is sustainable at the
        # buffer target (standard BOLA-basic calibration).
        v = (self.buffer_target - env.video.chunk_seconds) / (
            utilities[-1] + self.gamma_p
        )
        buffer = state[IDX_BUFFER]
        scores = (v * (utilities + self.gamma_p) - buffer) / sizes
        if np.all(scores <= 0):
            return 0
        return int(np.argmax(scores))


@dataclass
class RobustMPC(ABRPolicy):
    """rMPC [Yin et al., SIGCOMM'15].

    Exhaustive look-ahead over all bitrate sequences of length ``horizon``
    with a robust (error-discounted) harmonic-mean throughput predictor,
    maximizing the same linear QoE the environment pays.
    """

    horizon: int = 5
    window: int = 5
    name: str = "rMPC"
    _past_errors: List[float] = field(default_factory=list, repr=False)
    _plans: Optional[np.ndarray] = field(default=None, repr=False)

    def reset(self) -> None:
        self._past_errors = []
        self._last_estimate: Optional[float] = None

    def select(self, state: np.ndarray, env: ABREnv) -> int:
        history = state[THROUGHPUT_SLICE][-self.window:]
        estimate = _harmonic_mean(history)  # Mbps
        actual = float(state[THROUGHPUT_SLICE][-1])
        if getattr(self, "_last_estimate", None) and actual > 0:
            err = abs(self._last_estimate - actual) / max(actual, 1e-9)
            self._past_errors.append(err)
            if len(self._past_errors) > self.window:
                self._past_errors.pop(0)
        self._last_estimate = estimate
        max_err = max(self._past_errors) if self._past_errors else 0.0
        robust_kbps = estimate * 1000.0 / (1.0 + max_err)
        if robust_kbps <= 0:
            return 0

        sizes = env.upcoming_sizes_kbits(self.horizon)  # (h, n)
        h = sizes.shape[0]
        if h == 0:
            return 0
        n = env.n_actions
        plans = self._plan_matrix(n, h)
        # Vectorized rollout of every plan.
        buffer = np.full(plans.shape[0], state[IDX_BUFFER])
        last_rate = np.full(
            plans.shape[0], state[IDX_LAST_BITRATE] * 1000.0
        )
        bitrates = np.asarray(env.video.bitrates_kbps, dtype=float)
        total = np.zeros(plans.shape[0])
        qoe = env.qoe
        for step in range(h):
            levels = plans[:, step]
            size = sizes[step][levels]
            dt = size / robust_kbps
            rebuffer = np.maximum(0.0, dt - buffer)
            buffer = np.maximum(buffer - dt, 0.0) + env.video.chunk_seconds
            rate = bitrates[levels]
            total += (
                rate / 1000.0
                - qoe.rebuffer_penalty * rebuffer
                - qoe.smoothness_penalty * np.abs(rate - last_rate) / 1000.0
            )
            last_rate = rate
        return int(plans[int(np.argmax(total)), 0])

    def _plan_matrix(self, n_actions: int, horizon: int) -> np.ndarray:
        if (
            self._plans is None
            or self._plans.shape[1] != horizon
            or self._plans.max() != n_actions - 1
        ):
            self._plans = np.asarray(
                list(product(range(n_actions), repeat=horizon)), dtype=int
            )
        return self._plans


def _level_from_state(state: np.ndarray, env: ABREnv) -> int:
    """Recover the ladder index of the last selected bitrate."""
    rate_kbps = state[IDX_LAST_BITRATE] * 1000.0
    ladder = np.asarray(env.video.bitrates_kbps, dtype=float)
    return int(np.argmin(np.abs(ladder - rate_kbps)))


@dataclass
class EpisodeResult:
    """Outcome of one streaming session."""

    qoe_total: float
    qoe_mean: float
    bitrates_kbps: np.ndarray
    rebuffer_s: float
    actions: np.ndarray
    states: np.ndarray
    rewards: np.ndarray


def run_policy(
    policy: ABRPolicy,
    env: ABREnv,
    trace=None,
    rng: SeedLike = None,
) -> EpisodeResult:
    """Stream the whole video once under ``policy`` and summarize."""
    rng = as_rng(rng)
    policy.reset()
    state = env.reset(rng, trace=trace)
    states, actions, rewards, bitrates = [], [], [], []
    rebuffer = 0.0
    done = False
    while not done:
        action = policy.select(state, env)
        states.append(state)
        next_state, reward, done, info = env.step(action)
        actions.append(action)
        rewards.append(reward)
        bitrates.append(info["bitrate_kbps"])
        rebuffer += info["rebuffer_s"]
        state = next_state
    rewards = np.asarray(rewards)
    return EpisodeResult(
        qoe_total=float(rewards.sum()),
        qoe_mean=float(rewards.mean()),
        bitrates_kbps=np.asarray(bitrates, dtype=float),
        rebuffer_s=rebuffer,
        actions=np.asarray(actions, dtype=int),
        states=np.asarray(states),
        rewards=rewards,
    )
