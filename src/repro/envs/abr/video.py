"""Chunked-video model.

The paper's Pensieve setup: 4-second chunks encoded at
{300, 750, 1200, 1850, 2850, 4300} kbps.  Chunk sizes are variable-bitrate
around the nominal ``bitrate * duration`` with a reproducible per-chunk
multiplier (real encoders produce scene-dependent sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_rng

#: Bitrate ladder used by Pensieve (kbit/s).
PENSIEVE_BITRATES_KBPS = (300, 750, 1200, 1850, 2850, 4300)

#: Chunk playback duration (seconds).
CHUNK_SECONDS = 4.0


@dataclass
class Video:
    """A video as a grid of chunk sizes: ``sizes_kbits[chunk, bitrate]``.

    Attributes:
        bitrates_kbps: encoding ladder, ascending.
        chunk_seconds: playtime per chunk.
        sizes_kbits: per-chunk, per-bitrate sizes in kilobits.
    """

    bitrates_kbps: Sequence[int] = PENSIEVE_BITRATES_KBPS
    chunk_seconds: float = CHUNK_SECONDS
    sizes_kbits: np.ndarray = field(default=None)

    def __post_init__(self) -> None:
        self.bitrates_kbps = tuple(self.bitrates_kbps)
        if list(self.bitrates_kbps) != sorted(self.bitrates_kbps):
            raise ValueError("bitrate ladder must be ascending")
        if self.sizes_kbits is None:
            raise ValueError("sizes_kbits is required; use Video.synthetic()")
        self.sizes_kbits = np.asarray(self.sizes_kbits, dtype=float)
        if self.sizes_kbits.ndim != 2:
            raise ValueError("sizes_kbits must be 2-D (chunks x bitrates)")
        if self.sizes_kbits.shape[1] != len(self.bitrates_kbps):
            raise ValueError("sizes_kbits columns must match ladder length")
        if np.any(self.sizes_kbits <= 0):
            raise ValueError("chunk sizes must be positive")

    @classmethod
    def synthetic(
        cls,
        n_chunks: int = 48,
        bitrates_kbps: Sequence[int] = PENSIEVE_BITRATES_KBPS,
        chunk_seconds: float = CHUNK_SECONDS,
        vbr_std: float = 0.10,
        seed: SeedLike = None,
    ) -> "Video":
        """Generate a VBR video.

        Each chunk gets one scene-complexity multiplier shared by all
        bitrates (complex scenes are bigger at every rung), clipped to
        keep sizes positive and bounded.
        """
        if n_chunks <= 0:
            raise ValueError("n_chunks must be positive")
        rng = as_rng(seed)
        nominal = np.asarray(bitrates_kbps, dtype=float) * chunk_seconds
        mult = np.clip(
            rng.normal(1.0, vbr_std, size=(n_chunks, 1)), 0.6, 1.5
        )
        return cls(
            bitrates_kbps=bitrates_kbps,
            chunk_seconds=chunk_seconds,
            sizes_kbits=nominal[None, :] * mult,
        )

    @property
    def n_chunks(self) -> int:
        return int(self.sizes_kbits.shape[0])

    @property
    def n_bitrates(self) -> int:
        return len(self.bitrates_kbps)

    @property
    def duration_seconds(self) -> float:
        return self.n_chunks * self.chunk_seconds

    def chunk_size_kbits(self, chunk: int, level: int) -> float:
        """Size of ``chunk`` encoded at ladder index ``level``."""
        return float(self.sizes_kbits[chunk, level])
