"""Quality-of-experience metrics for ABR.

The paper uses Pensieve's linear QoE:

    QoE = sum_k q(R_k) - mu * rebuffer_k - |q(R_k) - q(R_{k-1})|

with q(R) = R in Mbps and mu = 4.3 (the maximum bitrate in Mbps), i.e. one
second of stall costs as much as a chunk of top-rung quality.
"""

from __future__ import annotations

from dataclasses import dataclass


class QoEMetric:
    """Interface: per-chunk reward given bitrate decisions and stalls."""

    def reward(
        self,
        bitrate_kbps: float,
        last_bitrate_kbps: float,
        rebuffer_seconds: float,
    ) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class LinearQoE(QoEMetric):
    """Pensieve's QoE_lin: bitrate utility minus stall and smoothness terms.

    Attributes:
        rebuffer_penalty: Mbps-equivalent cost per stalled second (paper: 4.3).
        smoothness_penalty: weight on |bitrate change| in Mbps (paper: 1.0).
    """

    rebuffer_penalty: float = 4.3
    smoothness_penalty: float = 1.0

    def reward(
        self,
        bitrate_kbps: float,
        last_bitrate_kbps: float,
        rebuffer_seconds: float,
    ) -> float:
        if rebuffer_seconds < 0:
            raise ValueError("rebuffer time cannot be negative")
        quality = bitrate_kbps / 1000.0
        stall = self.rebuffer_penalty * rebuffer_seconds
        smooth = self.smoothness_penalty * abs(
            bitrate_kbps - last_bitrate_kbps
        ) / 1000.0
        return quality - stall - smooth
