"""Quality-of-experience metrics for ABR.

The paper uses Pensieve's linear QoE:

    QoE = sum_k q(R_k) - mu * rebuffer_k - |q(R_k) - q(R_{k-1})|

with q(R) = R in Mbps and mu = 4.3 (the maximum bitrate in Mbps), i.e. one
second of stall costs as much as a chunk of top-rung quality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class QoEMetric:
    """Interface: per-chunk reward given bitrate decisions and stalls."""

    def reward(
        self,
        bitrate_kbps: float,
        last_bitrate_kbps: float,
        rebuffer_seconds: float,
    ) -> float:
        raise NotImplementedError

    def reward_batch(
        self,
        bitrate_kbps: np.ndarray,
        last_bitrate_kbps: np.ndarray,
        rebuffer_seconds: np.ndarray,
    ) -> np.ndarray:
        """Vectorized rewards for many parallel sessions.

        The generic fallback loops over the scalar hook so any custom
        metric works with the batch environment; metrics with arithmetic
        reward shapes should override with array operations.
        """
        return np.asarray([
            self.reward(float(b), float(lb), float(r))
            for b, lb, r in zip(
                np.asarray(bitrate_kbps, dtype=float),
                np.asarray(last_bitrate_kbps, dtype=float),
                np.asarray(rebuffer_seconds, dtype=float),
            )
        ])


@dataclass(frozen=True)
class LinearQoE(QoEMetric):
    """Pensieve's QoE_lin: bitrate utility minus stall and smoothness terms.

    Attributes:
        rebuffer_penalty: Mbps-equivalent cost per stalled second (paper: 4.3).
        smoothness_penalty: weight on |bitrate change| in Mbps (paper: 1.0).
    """

    rebuffer_penalty: float = 4.3
    smoothness_penalty: float = 1.0

    def reward(
        self,
        bitrate_kbps: float,
        last_bitrate_kbps: float,
        rebuffer_seconds: float,
    ) -> float:
        if rebuffer_seconds < 0:
            raise ValueError("rebuffer time cannot be negative")
        quality = bitrate_kbps / 1000.0
        stall = self.rebuffer_penalty * rebuffer_seconds
        smooth = self.smoothness_penalty * abs(
            bitrate_kbps - last_bitrate_kbps
        ) / 1000.0
        return quality - stall - smooth

    def reward_batch(
        self,
        bitrate_kbps: np.ndarray,
        last_bitrate_kbps: np.ndarray,
        rebuffer_seconds: np.ndarray,
    ) -> np.ndarray:
        """Elementwise QoE_lin — the same float arithmetic as ``reward``,
        so batched rollouts reproduce serial rewards bit for bit."""
        bitrate_kbps = np.asarray(bitrate_kbps, dtype=float)
        last_bitrate_kbps = np.asarray(last_bitrate_kbps, dtype=float)
        rebuffer_seconds = np.asarray(rebuffer_seconds, dtype=float)
        if np.any(rebuffer_seconds < 0):
            raise ValueError("rebuffer time cannot be negative")
        quality = bitrate_kbps / 1000.0
        stall = self.rebuffer_penalty * rebuffer_seconds
        smooth = self.smoothness_penalty * np.abs(
            bitrate_kbps - last_bitrate_kbps
        ) / 1000.0
        return quality - stall - smooth
