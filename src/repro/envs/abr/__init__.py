"""Adaptive-bitrate (ABR) video streaming substrate (the Pensieve setting)."""

from repro.envs.abr.video import Video, PENSIEVE_BITRATES_KBPS, CHUNK_SECONDS
from repro.envs.abr.qoe import QoEMetric, LinearQoE
from repro.envs.abr.env import ABREnv, ABRState, BatchABREnv, FEATURE_NAMES
from repro.envs.abr.baselines import (
    ABRPolicy,
    BufferBased,
    RateBased,
    Festive,
    Bola,
    RobustMPC,
    FixedLowest,
    run_policy,
)

__all__ = [
    "Video",
    "PENSIEVE_BITRATES_KBPS",
    "CHUNK_SECONDS",
    "QoEMetric",
    "LinearQoE",
    "ABREnv",
    "ABRState",
    "BatchABREnv",
    "FEATURE_NAMES",
    "ABRPolicy",
    "BufferBased",
    "RateBased",
    "Festive",
    "Bola",
    "RobustMPC",
    "FixedLowest",
    "run_policy",
]
