"""Ground-truth latency model for routings.

The RouteNet dataset's labels come from an OMNeT++ queueing simulation;
here the ground truth is the standard analytic equivalent: each directed
link is an M/M/1-style server whose sojourn time grows as ``1/(C - load)``
(smoothly clipped near saturation), plus a fixed per-hop propagation cost.
Path latency is the sum over traversed links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.envs.routing.demands import TrafficMatrix
from repro.envs.routing.topology import Topology

#: Fixed propagation + processing latency per hop (time units).
HOP_COST = 0.05

#: Load is clipped at this fraction of capacity so delays stay finite.
MAX_UTILIZATION = 0.98


@dataclass
class Routing:
    """A routing: one node path per ordered src-dst demand pair."""

    paths: Dict[Tuple[int, int], List[int]]

    def __post_init__(self) -> None:
        for (s, d), path in self.paths.items():
            if not path or path[0] != s or path[-1] != d:
                raise ValueError(f"path for {(s, d)} must run src->dst: {path}")

    def pairs(self) -> List[Tuple[int, int]]:
        return sorted(self.paths)

    def path(self, src: int, dst: int) -> List[int]:
        return self.paths[(src, dst)]

    def incidence(self, topology: Topology) -> np.ndarray:
        """0/1 incidence matrix, hyperedges (paths) x vertices (links).

        Row order follows ``pairs()``; column order follows
        ``topology.links``.  This is exactly the paper's Eq. 3 matrix.
        """
        pairs = self.pairs()
        inc = np.zeros((len(pairs), topology.n_links))
        for row, pair in enumerate(pairs):
            for link in Topology.path_links(self.paths[pair]):
                inc[row, topology.link_index(link)] = 1.0
        return inc


def link_loads(
    topology: Topology, routing: Routing, traffic: TrafficMatrix
) -> np.ndarray:
    """Traffic volume per directed link under ``routing``."""
    loads = np.zeros(topology.n_links)
    for pair, path in routing.paths.items():
        volume = traffic.volume(*pair)
        for link in Topology.path_links(path):
            loads[topology.link_index(link)] += volume
    return loads


def link_delays(
    topology: Topology, routing: Routing, traffic: TrafficMatrix
) -> np.ndarray:
    """Per-directed-link queueing delay under ``routing``."""
    loads = link_loads(topology, routing, traffic)
    return delays_from_loads(loads, topology.capacity_vector())


def delays_from_loads(loads: np.ndarray, capacities: np.ndarray) -> np.ndarray:
    """M/M/1-style sojourn time with smooth clipping near saturation."""
    slack = np.maximum(capacities - loads, (1.0 - MAX_UTILIZATION) * capacities)
    return 1.0 / slack


def routing_latencies(
    topology: Topology, routing: Routing, traffic: TrafficMatrix
) -> Dict[Tuple[int, int], float]:
    """End-to-end latency per demand pair (queueing + per-hop cost)."""
    delays = link_delays(topology, routing, traffic)
    out: Dict[Tuple[int, int], float] = {}
    for pair, path in routing.paths.items():
        links = Topology.path_links(path)
        queueing = sum(delays[topology.link_index(l)] for l in links)
        out[pair] = float(queueing + HOP_COST * len(links))
    return out


def path_latency(
    path: Sequence[int], delays: np.ndarray, topology: Topology
) -> float:
    """Latency of an arbitrary path under fixed link delays."""
    links = Topology.path_links(list(path))
    queueing = sum(delays[topology.link_index(l)] for l in links)
    return float(queueing + HOP_COST * len(links))


def shortest_path_routing(topology: Topology) -> Routing:
    """Hop-count shortest paths for every pair (the optimizer's start)."""
    import networkx as nx

    paths = {}
    for s, d in topology.node_pairs():
        paths[(s, d)] = list(nx.shortest_path(topology.graph, s, d))
    return Routing(paths)
