"""Topologies for the routing experiments.

The paper uses the 14-node NSFNet topology with the 50 traffic samples of
the RouteNet dataset.  Links are *directed* here (each undirected fiber is
two directed links) because the paper's interpretations are directional
("link 6→7", Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import networkx as nx
import numpy as np

#: A directed link is an ordered node pair.
DirectedLink = Tuple[int, int]

#: NSFNet undirected edges (the 21-fiber layout used by RouteNet).
NSFNET_EDGES: Tuple[Tuple[int, int], ...] = (
    (0, 1), (0, 2), (0, 3), (1, 2), (1, 7), (2, 5), (3, 4), (3, 8),
    (4, 5), (4, 6), (5, 12), (5, 13), (6, 7), (7, 10), (8, 9), (8, 11),
    (9, 10), (9, 12), (10, 11), (10, 13), (11, 12),
)


@dataclass
class Topology:
    """A capacitated directed topology with candidate-path enumeration.

    Attributes:
        graph: the underlying undirected connectivity.
        capacities: per-directed-link capacity (traffic units).
        name: label for reports.
    """

    graph: nx.Graph
    capacities: Dict[DirectedLink, float]
    name: str = "topology"
    _links: List[DirectedLink] = field(default_factory=list, repr=False)
    _link_index: Dict[DirectedLink, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._links = sorted(self.capacities)
        self._link_index = {l: i for i, l in enumerate(self._links)}
        for u, v in self._links:
            if not self.graph.has_edge(u, v):
                raise ValueError(f"capacity given for non-edge {(u, v)}")

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def links(self) -> List[DirectedLink]:
        """All directed links in a stable order."""
        return list(self._links)

    @property
    def n_links(self) -> int:
        return len(self._links)

    def link_index(self, link: DirectedLink) -> int:
        return self._link_index[link]

    def capacity_vector(self) -> np.ndarray:
        return np.asarray([self.capacities[l] for l in self._links])

    @staticmethod
    def path_links(path: Sequence[int]) -> List[DirectedLink]:
        """Directed links traversed by a node path."""
        return [(path[i], path[i + 1]) for i in range(len(path) - 1)]

    # ------------------------------------------------------------------
    def node_pairs(self) -> List[Tuple[int, int]]:
        """All ordered src-dst pairs (the demand set)."""
        nodes = sorted(self.graph.nodes)
        return [(s, d) for s in nodes for d in nodes if s != d]

    def candidate_paths(
        self, src: int, dst: int, extra_hops: int = 1, max_candidates: int = 6
    ) -> List[List[int]]:
        """Loop-free candidate paths at most ``extra_hops`` longer than the
        shortest path (the paper's §6.5 candidate criterion)."""
        shortest_len = nx.shortest_path_length(self.graph, src, dst)
        out: List[List[int]] = []
        for path in nx.shortest_simple_paths(self.graph, src, dst):
            if len(path) - 1 > shortest_len + extra_hops:
                break
            out.append(list(path))
            if len(out) >= max_candidates:
                break
        return out


def nsfnet(
    capacity: float = 40.0,
    fat_links: Sequence[Tuple[int, int]] = ((7, 10), (9, 12), (0, 3)),
    fat_capacity: float = 80.0,
) -> Topology:
    """The NSFNet topology with mostly uniform capacities.

    A few backbone fibers get double capacity (``fat_links``) so routing
    decisions are not degenerate.
    """
    graph = nx.Graph()
    graph.add_nodes_from(range(14))
    graph.add_edges_from(NSFNET_EDGES)
    capacities: Dict[DirectedLink, float] = {}
    fat = {tuple(sorted(e)) for e in fat_links}
    for u, v in NSFNET_EDGES:
        cap = fat_capacity if tuple(sorted((u, v))) in fat else capacity
        capacities[(u, v)] = cap
        capacities[(v, u)] = cap
    return Topology(graph=graph, capacities=capacities, name="nsfnet")
