"""Gravity-model traffic matrices.

RouteNet ships 50 traffic samples per topology; we regenerate equivalent
samples with a gravity model: demand(s, d) proportional to the product of
per-node activity weights, scaled to a target mean link utilization under
shortest-path routing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx
import numpy as np

from repro.envs.routing.topology import Topology
from repro.utils.rng import SeedLike, as_rng, spawn_rngs


@dataclass
class TrafficMatrix:
    """Demand volume per ordered src-dst pair."""

    demands: Dict[Tuple[int, int], float]
    name: str = "tm"

    def volume(self, src: int, dst: int) -> float:
        return self.demands.get((src, dst), 0.0)

    def pairs(self) -> List[Tuple[int, int]]:
        return sorted(self.demands)

    def total(self) -> float:
        return float(sum(self.demands.values()))


def gravity_demands(
    topology: Topology,
    utilization: float = 0.5,
    seed: SeedLike = None,
    count: int = 1,
) -> List[TrafficMatrix]:
    """Generate ``count`` gravity-model traffic matrices.

    Args:
        topology: target network.
        utilization: mean directed-link utilization under shortest-path
            routing (the scaling anchor).
        seed: master seed.
        count: number of samples (paper: 50).
    """
    if not 0 < utilization < 1:
        raise ValueError("utilization must be in (0, 1)")
    rngs = spawn_rngs(seed, count)
    out = []
    for i, rng in enumerate(rngs):
        out.append(_one_sample(topology, utilization, rng, f"tm-{i}"))
    return out


def _one_sample(
    topology: Topology,
    utilization: float,
    rng: np.random.Generator,
    name: str,
) -> TrafficMatrix:
    nodes = sorted(topology.graph.nodes)
    weights = rng.lognormal(0.0, 0.6, size=len(nodes))
    raw: Dict[Tuple[int, int], float] = {}
    for si, s in enumerate(nodes):
        for di, d in enumerate(nodes):
            if s == d:
                continue
            raw[(s, d)] = float(weights[si] * weights[di]
                                * rng.uniform(0.7, 1.3))
    # Scale so mean link utilization under shortest-path routing hits the
    # target.
    loads = np.zeros(topology.n_links)
    for (s, d), volume in raw.items():
        path = nx.shortest_path(topology.graph, s, d)
        for link in Topology.path_links(path):
            loads[topology.link_index(link)] += volume
    caps = topology.capacity_vector()
    mean_util = float((loads / caps).mean())
    scale = utilization / max(mean_util, 1e-12)
    return TrafficMatrix(
        demands={k: v * scale for k, v in raw.items()}, name=name
    )
