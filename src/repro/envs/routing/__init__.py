"""SDN routing substrate (the RouteNet setting): NSFNet topology,
gravity-model traffic, candidate paths, and the M/M/1 delay ground truth."""

from repro.envs.routing.topology import (
    Topology,
    nsfnet,
    DirectedLink,
)
from repro.envs.routing.demands import TrafficMatrix, gravity_demands
from repro.envs.routing.delay import link_delays, routing_latencies, Routing

__all__ = [
    "Topology",
    "nsfnet",
    "DirectedLink",
    "TrafficMatrix",
    "gravity_demands",
    "link_delays",
    "routing_latencies",
    "Routing",
]
