"""Environment substrates: bandwidth traces, ABR video streaming,
datacenter flow scheduling, and SDN routing."""
