"""Synthetic bandwidth traces.

The paper evaluates Pensieve on 250 HSDPA (Norway 3G commute) traces and
205 FCC broadband traces.  Those datasets cannot be shipped offline, so
this module generates stochastic traces matched to their published
character:

* HSDPA-like: slowly wandering cellular throughput in roughly
  0.1–6 Mbps with occasional deep fades (tunnels, handovers), strong
  temporal autocorrelation.
* FCC-like: wired broadband with piecewise-constant regimes in roughly
  0.3–8 Mbps plus mild noise, modeling cross-traffic level shifts.

Both produce 1-second-granularity traces consumed by the chunk download
simulator.  ``fixed_trace`` reproduces the §6.3 fixed-bandwidth links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.utils.rng import SeedLike, as_rng, spawn_rngs


@dataclass
class BandwidthTrace:
    """A piecewise-constant bandwidth series.

    Attributes:
        bandwidths_kbps: bandwidth during each 1-second slot, kbit/s.
        name: human-readable identifier for reports.
    """

    bandwidths_kbps: np.ndarray
    name: str = "trace"

    def __post_init__(self) -> None:
        self.bandwidths_kbps = np.asarray(self.bandwidths_kbps, dtype=float)
        if self.bandwidths_kbps.ndim != 1 or self.bandwidths_kbps.size == 0:
            raise ValueError("trace must be a non-empty 1-D array")
        if np.any(self.bandwidths_kbps <= 0):
            raise ValueError("bandwidths must be strictly positive")

    @property
    def duration(self) -> float:
        """Total seconds covered (traces wrap around when exhausted)."""
        return float(self.bandwidths_kbps.size)

    def bandwidth_at(self, t: float) -> float:
        """Bandwidth (kbps) at absolute time ``t`` (wraps modulo duration)."""
        idx = int(t % self.duration)
        return float(self.bandwidths_kbps[idx])

    def mean_kbps(self) -> float:
        return float(self.bandwidths_kbps.mean())


def fixed_trace(bandwidth_kbps: float, duration_s: int = 2000) -> BandwidthTrace:
    """A constant-bandwidth link (the §6.3 debugging setup)."""
    if bandwidth_kbps <= 0:
        raise ValueError("bandwidth must be positive")
    return BandwidthTrace(
        np.full(duration_s, float(bandwidth_kbps)),
        name=f"fixed-{int(bandwidth_kbps)}kbps",
    )


def hsdpa_like_trace(
    duration_s: int = 320, seed: SeedLike = None, index: int = 0
) -> BandwidthTrace:
    """One HSDPA-like 3G trace.

    Mean-reverting log-bandwidth (Ornstein–Uhlenbeck) around a per-trace
    operating point, with occasional multiplicative deep fades.
    """
    rng = as_rng(seed)
    base = rng.uniform(400.0, 3200.0)  # per-trace operating point, kbps
    theta, sigma = 0.12, 0.22          # OU reversion speed / noise
    log_base = np.log(base)
    x = log_base + rng.normal(0.0, sigma)
    values = np.empty(duration_s)
    fade_left = 0
    for t in range(duration_s):
        x += theta * (log_base - x) + sigma * rng.normal()
        bw = np.exp(x)
        if fade_left > 0:
            bw *= 0.15
            fade_left -= 1
        elif rng.random() < 0.01:  # enter a fade (tunnel / handover)
            fade_left = int(rng.integers(2, 8))
        values[t] = np.clip(bw, 80.0, 6500.0)
    return BandwidthTrace(values, name=f"hsdpa-{index}")


def fcc_like_trace(
    duration_s: int = 320, seed: SeedLike = None, index: int = 0
) -> BandwidthTrace:
    """One FCC-like broadband trace: regime-switching levels plus noise."""
    rng = as_rng(seed)
    levels = rng.uniform(350.0, 8000.0, size=8)
    level = float(rng.choice(levels))
    values = np.empty(duration_s)
    for t in range(duration_s):
        if rng.random() < 0.03:  # cross-traffic level shift
            level = float(rng.choice(levels))
        noisy = level * (1.0 + 0.08 * rng.normal())
        values[t] = np.clip(noisy, 200.0, 9500.0)
    return BandwidthTrace(values, name=f"fcc-{index}")


def trace_set(
    kind: str,
    count: int,
    duration_s: int = 320,
    seed: SeedLike = None,
) -> List[BandwidthTrace]:
    """Generate a reproducible set of traces.

    Args:
        kind: "hsdpa" or "fcc".
        count: number of traces (paper: 250 HSDPA, 205 FCC).
        duration_s: seconds per trace.
        seed: master seed; each trace gets an independent child RNG.
    """
    makers = {"hsdpa": hsdpa_like_trace, "fcc": fcc_like_trace}
    if kind not in makers:
        raise ValueError(f"unknown trace kind {kind!r}")
    rngs = spawn_rngs(seed, count)
    return [
        makers[kind](duration_s=duration_s, seed=rngs[i], index=i)
        for i in range(count)
    ]
