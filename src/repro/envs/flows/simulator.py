"""Fluid event-driven simulation of a single bottleneck fabric.

The paper's AuTO testbed is 16 servers behind one switch; its FCT
behaviour is a queueing phenomenon, which this simulator reproduces with
a fluid model of the bottleneck link:

* strict priority across queues, processor sharing within a queue;
* MLFQ demotion of flows by sent bytes (thresholds from sRLA);
* optional *central decisions*: a scheduler callback assigns an explicit
  priority to a flow, but the decision only takes effect
  ``decision_latency`` seconds after arrival — flows that finish earlier
  were never covered (the §6.4 coverage experiment).

Events: flow arrival, flow completion, threshold crossing, decision
activation.  Between events the allocation is constant, so the simulation
advances analytically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.envs.flows.mlfq import MLFQConfig
from repro.envs.flows.workloads import Flow

#: Signature of a central per-flow scheduler: receives (flow, fabric state
#: snapshot) and returns a priority index, or None to leave MLFQ in charge.
DecisionFn = Callable[[Flow, "FabricSnapshot"], Optional[int]]


@dataclass
class FabricSnapshot:
    """What a central scheduler can observe when deciding for a flow."""

    time: float
    queue_counts: np.ndarray          # active flows per queue
    queue_remaining_bytes: np.ndarray  # remaining bytes per queue
    flow_bytes_sent: float
    flow_size_bytes: float

    def feature_vector(self) -> np.ndarray:
        """Numeric features consumed by lRLA and its distilled tree."""
        return np.concatenate([
            [np.log10(max(self.flow_size_bytes, 1.0))],
            [np.log10(max(self.flow_bytes_sent, 1.0))],
            self.queue_counts.astype(float),
            np.log10(self.queue_remaining_bytes + 1.0),
        ])


@dataclass
class SimulationResult:
    """Completed-flow accounting for one run."""

    flows: List[Flow]
    capacity_bps: float
    duration: float

    def fcts(self) -> np.ndarray:
        return np.asarray([f.fct for f in self.flows])

    def slowdowns(self) -> np.ndarray:
        return np.asarray([f.slowdown(self.capacity_bps) for f in self.flows])

    def mean_fct(self) -> float:
        return float(self.fcts().mean()) if self.flows else 0.0

    def p99_fct(self) -> float:
        return float(np.percentile(self.fcts(), 99)) if self.flows else 0.0

    def subset(self, predicate) -> "SimulationResult":
        """Result restricted to flows satisfying ``predicate``."""
        return SimulationResult(
            [f for f in self.flows if predicate(f)],
            self.capacity_bps,
            self.duration,
        )


class FabricSimulator:
    """Single-bottleneck fluid simulator with MLFQ + central decisions.

    Args:
        capacity_bps: bottleneck bandwidth (bits per second).
        mlfq: demotion thresholds.
        decision_fn: optional central scheduler (lRLA / distilled tree).
        decision_latency_s: delay before a central decision takes effect.
        decision_min_bytes: only flows at least this large are sent to the
            central scheduler (AuTO only schedules long flows centrally).
    """

    def __init__(
        self,
        capacity_bps: float = 1e9,
        mlfq: MLFQConfig = None,
        decision_fn: Optional[DecisionFn] = None,
        decision_latency_s: float = 0.0,
        decision_min_bytes: float = 0.0,
    ) -> None:
        if capacity_bps <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bps = capacity_bps
        self.mlfq = mlfq if mlfq is not None else MLFQConfig()
        self.decision_fn = decision_fn
        self.decision_latency_s = decision_latency_s
        self.decision_min_bytes = decision_min_bytes
        #: Recorded (features, priority) pairs for each central decision —
        #: the distillation dataset.
        self.decision_log: List = []

    # ------------------------------------------------------------------
    def run(self, flows: Sequence[Flow], horizon_s: float = None) -> SimulationResult:
        """Simulate until every flow completes (or ``horizon_s``)."""
        pending = sorted(
            (Flow(f.flow_id, f.arrival, f.size_bytes) for f in flows),
            key=lambda f: f.arrival,
        )
        for f in pending:
            if (
                self.decision_fn is not None
                and f.size_bytes >= self.decision_min_bytes
            ):
                f.decision_ready_at = f.arrival + self.decision_latency_s
        active: List[Flow] = []
        done: List[Flow] = []
        t = 0.0
        next_idx = 0
        n = len(pending)
        guard = 0
        max_events = 200 * max(n, 1) + 10_000
        while (next_idx < n or active) and guard < max_events:
            guard += 1
            if horizon_s is not None and t >= horizon_s:
                break
            # Activate any pending central decisions due now.
            for f in active:
                if f.assigned_priority < 0 and f.decision_ready_at <= t:
                    self._apply_decision(f, t, active)
            shares = self._allocate(active)
            dt = self._time_to_next_event(t, active, shares, pending, next_idx)
            if dt == float("inf"):
                break
            # Advance fluid state.
            for f, share in zip(active, shares):
                if share > 0:
                    f.bytes_sent += share * dt / 8.0
            t += dt
            # Completions.
            still_active = []
            for f in active:
                if f.remaining <= 1e-6:
                    f.completion = t
                    done.append(f)
                else:
                    still_active.append(f)
            active = still_active
            # Arrivals at the new time.
            while next_idx < n and pending[next_idx].arrival <= t + 1e-12:
                active.append(pending[next_idx])
                next_idx += 1
        duration = t
        done.sort(key=lambda f: f.flow_id)
        return SimulationResult(done, self.capacity_bps, duration)

    # ------------------------------------------------------------------
    def _priority_of(self, flow: Flow) -> int:
        if flow.assigned_priority >= 0:
            return flow.assigned_priority
        return self.mlfq.queue_of(flow.bytes_sent)

    def _allocate(self, active: List[Flow]) -> List[float]:
        """Strict priority, equal share within the served queue (bps)."""
        if not active:
            return []
        priorities = [self._priority_of(f) for f in active]
        served = min(priorities)
        members = priorities.count(served)
        share = self.capacity_bps / members
        return [share if p == served else 0.0 for p in priorities]

    def _time_to_next_event(
        self,
        t: float,
        active: List[Flow],
        shares: List[float],
        pending: List[Flow],
        next_idx: int,
    ) -> float:
        dt = float("inf")
        if next_idx < len(pending):
            dt = min(dt, max(pending[next_idx].arrival - t, 0.0))
        for f, share in zip(active, shares):
            if f.assigned_priority < 0 and f.decision_ready_at > t:
                dt = min(dt, f.decision_ready_at - t)
            if share <= 0:
                continue
            dt = min(dt, f.remaining * 8.0 / share)
            if f.assigned_priority < 0:
                to_demote = self.mlfq.bytes_to_demotion(f.bytes_sent)
                if to_demote != float("inf"):
                    dt = min(dt, to_demote * 8.0 / share)
        return max(dt, 1e-9)

    def _apply_decision(self, flow: Flow, t: float, active: List[Flow]) -> None:
        snapshot = self._snapshot(t, flow, active)
        priority = self.decision_fn(flow, snapshot)
        if priority is None:
            flow.decision_ready_at = float("inf")
            return
        n_q = self.mlfq.n_queues
        flow.assigned_priority = int(np.clip(priority, 0, n_q - 1))
        self.decision_log.append(
            (snapshot.feature_vector(), flow.assigned_priority)
        )

    def _snapshot(self, t: float, flow: Flow, active: List[Flow]) -> FabricSnapshot:
        n_q = self.mlfq.n_queues
        counts = np.zeros(n_q)
        remaining = np.zeros(n_q)
        for f in active:
            if f is flow:
                continue
            q = self._priority_of(f)
            counts[q] += 1
            remaining[q] += f.remaining
        return FabricSnapshot(
            time=t,
            queue_counts=counts,
            queue_remaining_bytes=remaining,
            flow_bytes_sent=flow.bytes_sent,
            flow_size_bytes=flow.size_bytes,
        )
