"""Datacenter workloads: flow-size distributions and Poisson arrivals.

The paper evaluates AuTO on the web-search (DCTCP [Alizadeh et al.,
SIGCOMM'10]) and data-mining (VL2 [Greenberg et al., SIGCOMM'09]) traces.
We use the standard empirical CDFs from those papers (as tabulated in the
pFabric literature) with log-linear interpolation between knots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng


@dataclass(frozen=True)
class FlowSizeDistribution:
    """Empirical flow-size CDF with log-linear inverse interpolation.

    Attributes:
        name: workload label.
        knots: (size_bytes, cumulative_probability) pairs, ascending, the
            last probability being 1.0.
    """

    name: str
    knots: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        sizes = [k[0] for k in self.knots]
        probs = [k[1] for k in self.knots]
        if sizes != sorted(sizes) or probs != sorted(probs):
            raise ValueError("CDF knots must be ascending")
        if abs(probs[-1] - 1.0) > 1e-9:
            raise ValueError("last knot must have probability 1.0")

    def sample(self, rng: SeedLike = None, size: int = 1) -> np.ndarray:
        """Draw ``size`` flow sizes (bytes)."""
        rng = as_rng(rng)
        u = rng.uniform(0.0, 1.0, size=size)
        return self.quantile(u)

    def quantile(self, u: np.ndarray) -> np.ndarray:
        """Inverse CDF, log-linear in size between knots."""
        u = np.atleast_1d(np.asarray(u, dtype=float))
        sizes = np.log(np.array([k[0] for k in self.knots]))
        probs = np.array([k[1] for k in self.knots])
        # Prepend an implicit (min_size, 0) anchor.
        probs0 = np.concatenate([[0.0], probs])
        sizes0 = np.concatenate([[sizes[0]], sizes])
        return np.exp(np.interp(u, probs0, sizes0))

    def mean_bytes(self, samples: int = 200_000, seed: int = 0) -> float:
        """Monte-Carlo mean flow size (cached sampling would be overkill)."""
        return float(self.sample(as_rng(seed), samples).mean())


#: DCTCP web-search workload: mix of short queries and medium responses.
WEB_SEARCH = FlowSizeDistribution(
    "web-search",
    (
        (6_000, 0.15),
        (13_000, 0.20),
        (19_000, 0.30),
        (33_000, 0.40),
        (53_000, 0.53),
        (133_000, 0.60),
        (667_000, 0.70),
        (1_467_000, 0.80),
        (3_333_000, 0.90),
        (6_667_000, 0.97),
        (20_000_000, 1.00),
    ),
)

#: VL2 data-mining workload: heavy-tailed, dominated by a few huge flows.
DATA_MINING = FlowSizeDistribution(
    "data-mining",
    (
        (100, 0.50),
        (1_000, 0.60),
        (10_000, 0.70),
        (100_000, 0.80),
        (1_000_000, 0.90),
        (10_000_000, 0.95),
        (100_000_000, 0.98),
        (1_000_000_000, 1.00),
    ),
)

WORKLOADS = {"websearch": WEB_SEARCH, "datamining": DATA_MINING}


@dataclass
class Flow:
    """One flow through the fabric.

    Mutable simulation fields are managed by the simulator.
    """

    flow_id: int
    arrival: float
    size_bytes: float
    # -- simulation state ------------------------------------------------
    bytes_sent: float = 0.0
    assigned_priority: int = -1  # -1 = MLFQ-governed
    decision_ready_at: float = field(default=float("inf"))
    completion: float = field(default=float("nan"))

    @property
    def remaining(self) -> float:
        return self.size_bytes - self.bytes_sent

    @property
    def fct(self) -> float:
        return self.completion - self.arrival

    def ideal_fct(self, capacity_bps: float) -> float:
        """FCT with the whole bottleneck to itself."""
        return self.size_bytes * 8.0 / capacity_bps

    def slowdown(self, capacity_bps: float) -> float:
        """FCT normalized by the ideal transfer time (>= 1 in theory)."""
        return self.fct / max(self.ideal_fct(capacity_bps), 1e-9)


def generate_flows(
    workload: FlowSizeDistribution,
    load: float,
    capacity_bps: float,
    duration_s: float,
    seed: SeedLike = None,
) -> List[Flow]:
    """Poisson flow arrivals at target utilization ``load``.

    The arrival rate is ``load * capacity / mean_size`` so the offered
    traffic equals ``load`` of the bottleneck capacity in expectation.
    """
    if not 0 < load < 1:
        raise ValueError("load must be in (0, 1)")
    rng = as_rng(seed)
    mean_size_bits = workload.mean_bytes(samples=50_000, seed=1) * 8.0
    rate = load * capacity_bps / mean_size_bits  # flows per second
    flows: List[Flow] = []
    t = 0.0
    fid = 0
    while True:
        t += float(rng.exponential(1.0 / rate))
        if t > duration_s:
            break
        size = float(workload.sample(rng, 1)[0])
        flows.append(Flow(flow_id=fid, arrival=t, size_bytes=size))
        fid += 1
    return flows
