"""Datacenter flow-scheduling substrate (the AuTO setting)."""

from repro.envs.flows.workloads import (
    FlowSizeDistribution,
    WEB_SEARCH,
    DATA_MINING,
    generate_flows,
    Flow,
)
from repro.envs.flows.mlfq import MLFQConfig, DEFAULT_THRESHOLDS_BYTES
from repro.envs.flows.simulator import FabricSimulator, SimulationResult

__all__ = [
    "FlowSizeDistribution",
    "WEB_SEARCH",
    "DATA_MINING",
    "generate_flows",
    "Flow",
    "MLFQConfig",
    "DEFAULT_THRESHOLDS_BYTES",
    "FabricSimulator",
    "SimulationResult",
]
