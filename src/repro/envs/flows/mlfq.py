"""Multi-level feedback queue (MLFQ) configuration.

AuTO schedules short flows with MLFQ on the switches: a flow starts in the
highest-priority queue and is demoted each time its sent-byte count
crosses a threshold.  The sRLA agent's whole job is choosing these
thresholds; this module holds the queue logic shared by the simulator and
the agents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

#: Default demotion thresholds (bytes) — a PIAS-style geometric ladder.
DEFAULT_THRESHOLDS_BYTES: Tuple[float, ...] = (20_000, 100_000, 500_000, 2_000_000)


@dataclass(frozen=True)
class MLFQConfig:
    """Demotion thresholds defining ``len(thresholds) + 1`` queues.

    Queue 0 is the highest priority; a flow with ``bytes_sent`` in
    ``[thresholds[i-1], thresholds[i])`` sits in queue ``i``.
    """

    thresholds_bytes: Tuple[float, ...] = DEFAULT_THRESHOLDS_BYTES

    def __post_init__(self) -> None:
        t = list(self.thresholds_bytes)
        if not t:
            raise ValueError("at least one threshold is required")
        if t != sorted(t) or len(set(t)) != len(t):
            raise ValueError("thresholds must be strictly increasing")
        if t[0] <= 0:
            raise ValueError("thresholds must be positive")

    @property
    def n_queues(self) -> int:
        return len(self.thresholds_bytes) + 1

    def queue_of(self, bytes_sent: float) -> int:
        """Queue index for a flow that has sent ``bytes_sent`` so far."""
        return int(np.searchsorted(self.thresholds_bytes, bytes_sent, side="right"))

    def bytes_to_demotion(self, bytes_sent: float) -> float:
        """Bytes until the next demotion (inf from the lowest queue)."""
        q = self.queue_of(bytes_sent)
        if q >= len(self.thresholds_bytes):
            return float("inf")
        return float(self.thresholds_bytes[q] - bytes_sent)

    @classmethod
    def from_log2(cls, log2_thresholds: Sequence[float]) -> "MLFQConfig":
        """Build from log2-byte values (the sRLA action space), sorted and
        de-duplicated with a minimal separation to stay strictly increasing."""
        raw = np.sort(np.asarray(log2_thresholds, dtype=float))
        bytes_ = np.power(2.0, raw)
        for i in range(1, bytes_.size):
            if bytes_[i] <= bytes_[i - 1]:
                bytes_[i] = bytes_[i - 1] * 1.0001
        return cls(tuple(float(b) for b in bytes_))
