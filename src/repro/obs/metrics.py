"""Process-wide metrics hub: typed instruments behind one schema.

Design constraints, in order:

* **dependency-free** — Prometheus text exposition format is a stable,
  trivially rendered line protocol; no client library is needed to
  emit it, and any scraper (or ``curl``) can read it;
* **cheap on the hot path** — recording into a counter or histogram is
  a dict lookup plus an integer add under one small lock; percentile
  math happens only at read time;
* **percentiles that never freeze** — latencies stream into
  *log-bucketed* histograms (:class:`LogHistogram`): constant memory,
  any number of observations, quantiles estimated by interpolating
  the cumulative bucket counts.  This is what fixes the
  ``ServerMetrics`` retention-cap freeze — a histogram has no cap to
  hit;
* **mergeable snapshots** — a hub serializes to a plain-dict
  :meth:`MetricsHub.snapshot` that survives the cluster wire codec,
  and :func:`render_text` renders any number of snapshots into one
  exposition page.  The sharded service ships worker snapshots over
  the control channel (``metrics_snapshot`` op) and renders them
  under per-shard labels next to its own.

Instrument naming scheme (see ``docs/observability.md``): every series
is ``repro_<subsystem>_<quantity>[_total|_seconds|_bytes]`` with labels
for the dimension that varies (``model``, ``shard``, ``backend``,
``stage``, ``kind``).  Counters are monotonic and end in ``_total``;
gauges are point-in-time readings; histograms expose
``_bucket``/``_sum``/``_count`` triplets in the standard Prometheus
shape.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

#: Default log-bucket boundaries for latency-like quantities (seconds):
#: 1 µs to ~67 s doubling per bucket — 4 decades in 27 buckets, fine
#: enough that interpolated percentiles land within a factor of 2 and
#: in practice (smooth latency distributions) within a few percent.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = tuple(
    1e-6 * 2.0 ** i for i in range(27)
)

#: Default buckets for size-like quantities (batch sizes, queue depths).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = tuple(
    float(2 ** i) for i in range(15)
)


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_labels(labels: Iterable[Tuple[str, str]]) -> str:
    pairs = [f'{k}="{_escape(v)}"' for k, v in labels]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class LogHistogram:
    """Streaming histogram over fixed log-spaced bucket boundaries.

    Standalone by design (no hub required): :class:`ServerMetrics`
    embeds one per model so snapshot percentiles stop freezing at the
    old retention cap, and the hub wraps it for labeled families.

    ``boundaries[i]`` is the *inclusive upper* edge of bucket ``i``
    (Prometheus ``le`` semantics); one implicit overflow bucket catches
    everything larger.  ``observe`` costs one bisect + one add;
    ``observe_many`` vectorizes with ``np.searchsorted``.  Not
    thread-safe on its own — callers (the hub, ``ServerMetrics``)
    already serialize writes under their locks.
    """

    __slots__ = ("boundaries", "counts", "total", "sum", "min", "max")

    def __init__(
        self, boundaries: Iterable[float] = DEFAULT_TIME_BUCKETS
    ) -> None:
        bounds = [float(b) for b in boundaries]
        if not bounds or sorted(bounds) != bounds:
            raise ValueError("boundaries must be non-empty and ascending")
        self.boundaries: List[float] = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.total += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values: Iterable[float]) -> None:
        arr = np.asarray(list(values) if not isinstance(
            values, np.ndarray) else values, dtype=float)
        if arr.size == 0:
            return
        idx = np.searchsorted(self.boundaries, arr, side="left")
        bins = np.bincount(idx, minlength=len(self.counts))
        for i, count in enumerate(bins):
            if count:
                self.counts[i] += int(count)
        self.total += int(arr.size)
        self.sum += float(arr.sum())
        low, high = float(arr.min()), float(arr.max())
        if low < self.min:
            self.min = low
        if high > self.max:
            self.max = high

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1) by linear interpolation of
        the cumulative counts inside the target bucket.

        0.0 with no observations.  Within a bucket the estimate
        interpolates between the bucket's edges (the lowest bucket
        interpolates up from the observed minimum, the overflow bucket
        from its lower edge to the observed maximum), clamped to the
        observed ``[min, max]`` so an estimate can never leave the
        data's range — which also keeps quantiles monotone in ``q``.
        """
        if self.total == 0:
            return 0.0
        target = q * self.total
        cum = 0.0
        for i, count in enumerate(self.counts):
            if count == 0:
                continue
            if cum + count >= target:
                fraction = (target - cum) / count
                lo = self.boundaries[i - 1] if i > 0 else min(
                    self.min, self.boundaries[0]
                )
                hi = (self.boundaries[i] if i < len(self.boundaries)
                      else self.max)
                estimate = lo + (hi - lo) * fraction
                return float(min(max(estimate, self.min), self.max))
            cum += count
        return float(self.max)

    def copy(self) -> "LogHistogram":
        """Cheap snapshot copy (bucket counts + scalars) so readers can
        do quantile math outside the writer's lock."""
        clone = LogHistogram.__new__(LogHistogram)
        clone.boundaries = self.boundaries
        clone.counts = list(self.counts)
        clone.total = self.total
        clone.sum = self.sum
        clone.min = self.min
        clone.max = self.max
        return clone

    def state(self) -> Dict[str, Any]:
        """Wire-friendly dump (used by hub snapshots and merging)."""
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "min": self.min if self.total else None,
            "max": self.max if self.total else None,
        }


class _Instrument:
    """One concrete labeled series of a family."""

    __slots__ = ("family", "labels")

    def __init__(self, family: "_Family", labels: Dict[str, str]) -> None:
        self.family = family
        self.labels = labels


class _Counter(_Instrument):
    __slots__ = ("value",)

    def __init__(self, family, labels) -> None:
        super().__init__(family, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters are monotonic; inc() must be >= 0")
        with self.family.hub._lock:
            self.value += amount


class _Gauge(_Instrument):
    __slots__ = ("value",)

    def __init__(self, family, labels) -> None:
        super().__init__(family, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self.family.hub._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class _Histogram(_Instrument):
    __slots__ = ("hist",)

    def __init__(self, family, labels) -> None:
        super().__init__(family, labels)
        self.hist = LogHistogram(family.buckets)

    def observe(self, value: float) -> None:
        with self.family.hub._lock:
            self.hist.observe(value)

    def observe_many(self, values: Iterable[float]) -> None:
        with self.family.hub._lock:
            self.hist.observe_many(values)

    def quantile(self, q: float) -> float:
        with self.family.hub._lock:
            return self.hist.quantile(q)


class _Family:
    """A named metric family: HELP/TYPE plus its labeled children."""

    __slots__ = ("hub", "name", "help", "kind", "buckets", "children")

    def __init__(self, hub: "MetricsHub", name: str, help_text: str,
                 kind: str, buckets: Optional[Iterable[float]]) -> None:
        self.hub = hub
        self.name = name
        self.help = help_text
        self.kind = kind
        self.buckets = tuple(buckets) if buckets is not None else None
        self.children: Dict[tuple, _Instrument] = {}

    def labels(self, **labels: str) -> Any:
        key = _label_key({k: str(v) for k, v in labels.items()})
        with self.hub._lock:
            child = self.children.get(key)
            if child is None:
                clean = dict(key)
                if self.kind == "counter":
                    child = _Counter(self, clean)
                elif self.kind == "gauge":
                    child = _Gauge(self, clean)
                else:
                    child = _Histogram(self, clean)
                self.children[key] = child
        return child


class MetricsHub:
    """Registry of typed metric families with Prometheus rendering.

    One hub per serving tier instance (``PolicyServer`` /
    ``ShardedPolicyService`` / each cluster worker) keeps tests and
    co-hosted servers isolated; :func:`get_hub` provides the
    process-wide hub for genuinely global counters (the native-kernel
    compile/cache story).

    ``register_collector`` adds a zero-argument callback invoked right
    before every render/snapshot — the idiom for *pull* metrics that
    are cheap to read but wasteful to push (queue depth, adaptive-delay
    fill, shard EWMAs, shadow agreement): the callback reads the live
    object and ``set``s gauges.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: Dict[str, _Family] = {}
        self._collectors: List[Callable[[], None]] = []

    # -- instrument constructors ------------------------------------------
    def _family(self, name: str, help_text: str, kind: str,
                buckets: Optional[Iterable[float]] = None) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(self, name, help_text, kind, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family.kind}, not {kind}"
                )
            return family

    def counter(self, name: str, help_text: str = "") -> _Family:
        """Monotonic counter family (Prometheus type ``counter``)."""
        return self._family(name, help_text, "counter")

    def gauge(self, name: str, help_text: str = "") -> _Family:
        """Point-in-time gauge family (Prometheus type ``gauge``)."""
        return self._family(name, help_text, "gauge")

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
    ) -> _Family:
        """Log-bucketed streaming histogram family."""
        return self._family(name, help_text, "histogram", buckets)

    def register_collector(self, collector: Callable[[], None]) -> None:
        """Run ``collector()`` before every render/snapshot (pull-style
        gauges).  A raising collector is dropped from that render, not
        fatal — observability must never take the server down."""
        with self._lock:
            self._collectors.append(collector)

    # -- reading -----------------------------------------------------------
    def _collect(self) -> None:
        for collector in list(self._collectors):
            try:
                collector()
            except Exception:  # noqa: BLE001 - never fail a scrape
                pass

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict dump of every family and series.

        The schema is the merge/render interchange format: it survives
        the cluster wire codec, and :func:`render_text` accepts any
        number of snapshots.  ``{"families": [{name, help, kind,
        series: [{labels, ...state}]}]}``.
        """
        self._collect()
        families = []
        with self._lock:
            for family in self._families.values():
                series = []
                for child in family.children.values():
                    entry: Dict[str, Any] = {"labels": dict(child.labels)}
                    if family.kind == "histogram":
                        entry.update(child.hist.state())
                    else:
                        entry["value"] = child.value
                    series.append(entry)
                families.append({
                    "name": family.name,
                    "help": family.help,
                    "kind": family.kind,
                    "series": series,
                })
        return {"families": families}

    def render(self) -> str:
        """This hub alone, in Prometheus text exposition format."""
        return render_text(self.snapshot())


# -- module-global hub -----------------------------------------------------
_GLOBAL_HUB: Optional[MetricsHub] = None
_GLOBAL_LOCK = threading.Lock()


def get_hub() -> MetricsHub:
    """The process-wide hub (lazily created) for cross-server counters
    such as the native-kernel compile/cache/fallback story."""
    global _GLOBAL_HUB
    with _GLOBAL_LOCK:
        if _GLOBAL_HUB is None:
            _GLOBAL_HUB = MetricsHub()
        return _GLOBAL_HUB


def reset_hub() -> None:
    """Test helper: discard the process-wide hub (and its collectors)."""
    global _GLOBAL_HUB
    with _GLOBAL_LOCK:
        _GLOBAL_HUB = None


# -- snapshot algebra ------------------------------------------------------
def with_labels(snapshot: Dict[str, Any],
                extra: Dict[str, str]) -> Dict[str, Any]:
    """A copy of ``snapshot`` with ``extra`` labels stamped onto every
    series — how the cluster parent scopes worker snapshots to
    ``shard="N"`` before rendering them next to its own."""
    out = {"families": []}
    for family in snapshot.get("families", []):
        series = []
        for entry in family.get("series", []):
            merged = dict(entry)
            merged["labels"] = {**entry.get("labels", {}),
                                **{k: str(v) for k, v in extra.items()}}
            series.append(merged)
        out["families"].append({**family, "series": series})
    return out


def render_text(*snapshots: Dict[str, Any]) -> str:
    """Render one or more hub snapshots as one Prometheus text page.

    Families with the same name merge under a single HELP/TYPE header
    (first snapshot's help text wins); duplicate series (same name and
    identical label set) keep the first occurrence — the exposition
    format forbids duplicates, and ``tools/check_metrics.py`` lints
    for them.
    """
    order: List[str] = []
    merged: Dict[str, Dict[str, Any]] = {}
    for snapshot in snapshots:
        for family in snapshot.get("families", []):
            name = family["name"]
            if name not in merged:
                merged[name] = {"help": family.get("help", ""),
                                "kind": family["kind"], "series": []}
                order.append(name)
            merged[name]["series"].extend(family.get("series", []))
    lines: List[str] = []
    for name in order:
        family = merged[name]
        kind = family["kind"]
        lines.append(f"# HELP {name} {family['help'] or name}")
        lines.append(f"# TYPE {name} {kind}")
        seen: set = set()
        for entry in family["series"]:
            labels = entry.get("labels", {})
            key = _label_key(labels)
            if key in seen:
                continue
            seen.add(key)
            base = sorted(labels.items())
            if kind == "histogram":
                cum = 0
                boundaries = entry["boundaries"]
                for edge, count in zip(boundaries, entry["counts"]):
                    cum += count
                    le = base + [("le", _format_value(edge))]
                    lines.append(
                        f"{name}_bucket{_format_labels(le)} {cum}"
                    )
                cum += entry["counts"][len(boundaries)]
                inf = base + [("le", "+Inf")]
                lines.append(f"{name}_bucket{_format_labels(inf)} {cum}")
                lines.append(
                    f"{name}_sum{_format_labels(base)} "
                    f"{_format_value(entry['sum'])}"
                )
                lines.append(
                    f"{name}_count{_format_labels(base)} {entry['total']}"
                )
            else:
                lines.append(
                    f"{name}{_format_labels(base)} "
                    f"{_format_value(entry['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
