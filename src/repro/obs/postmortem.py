"""Black-box postmortem capture: atomic incident bundles on disk.

When something breaks — a shard dies, a publish rolls back, a
page-severity alert fires — the moment to collect evidence is *then*,
not when an operator shows up.  A :class:`FlightRecorder` snapshots
everything the serving tier knows into one JSON bundle:

* the newest journal events (the "what happened" sequence),
* the full metrics page (Prometheus text — lintable and diffable),
* the recent trace ring (per-request latency decomposition),
* tier state (shard membership, splits, registry fingerprint).

Bundles are written atomically (temp file + ``os.replace``) under
``REPRO_POSTMORTEM_DIR`` (or an explicit directory), pruned to a
retention cap oldest-first, and pretty-printed / diffed by
``tools/postmortem.py``.  Capture is **opt-in**: with neither an
explicit directory nor the environment variable set, the recorder is
disabled and every :meth:`FlightRecorder.capture` is a no-op — chaos
tests and benchmarks must not litter the working tree.  Capture never
raises: a full disk must not take down the serving path that is
already having a bad day.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

__all__ = ["FlightRecorder", "POSTMORTEM_DIR_ENV", "load_bundle"]

#: Environment variable naming the bundle directory (opt-in switch).
POSTMORTEM_DIR_ENV = "REPRO_POSTMORTEM_DIR"

#: Bundle schema version, bumped on incompatible layout changes.
BUNDLE_SCHEMA = 1


def _slug(reason: str) -> str:
    out = "".join(
        ch if ch.isalnum() or ch in "-_" else "-" for ch in reason
    ).strip("-")
    return out[:64] or "capture"


class FlightRecorder:
    """Dump incident bundles for one serving tier.

    Args:
        directory: bundle directory; ``None`` falls back to
            ``$REPRO_POSTMORTEM_DIR``, and if that is unset too the
            recorder is disabled (captures no-op and return ``None``).
        retain: newest bundles kept; older ones are pruned at capture.
        journal: optional :class:`~repro.obs.events.EventJournal`
            whose newest ``events_tail`` events land in the bundle.
        metrics_fn: optional zero-arg callable returning the metrics
            page (typically the tier's ``render_metrics``).
        tracer: optional :class:`~repro.obs.trace.Tracer` whose
            finished-trace ring is included.
        state_fn: optional zero-arg callable returning a JSON-friendly
            tier state dict (shard membership, splits, registry).
        events_tail: journal events per bundle.
        clock: epoch-seconds source (overridable in tests).
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        retain: int = 8,
        journal: Any = None,
        metrics_fn: Optional[Callable[[], str]] = None,
        tracer: Any = None,
        state_fn: Optional[Callable[[], Dict[str, Any]]] = None,
        events_tail: int = 256,
        clock=time.time,
    ) -> None:
        if retain < 1:
            raise ValueError("retain must be at least 1")
        if directory is None:
            directory = os.environ.get(POSTMORTEM_DIR_ENV) or None
        self.directory = Path(directory) if directory else None
        self.retain = retain
        self._journal = journal
        self._metrics_fn = metrics_fn
        self._tracer = tracer
        self._state_fn = state_fn
        self._events_tail = events_tail
        self._clock = clock
        self._lock = threading.Lock()
        self._counter = 0

    @property
    def enabled(self) -> bool:
        return self.directory is not None

    # -- capture ----------------------------------------------------------
    def capture(self, reason: str,
                extra: Optional[Dict[str, Any]] = None) -> Optional[Path]:
        """Write one bundle; returns its path, or ``None`` when the
        recorder is disabled or the write failed (capture never
        raises — the incident path must not gain failure modes)."""
        if self.directory is None:
            return None
        try:
            return self._capture(reason, extra)
        except Exception:  # noqa: BLE001 - black box must not crash host
            return None

    def _capture(self, reason: str,
                 extra: Optional[Dict[str, Any]]) -> Path:
        now = self._clock()
        bundle: Dict[str, Any] = {
            "schema": BUNDLE_SCHEMA,
            "reason": reason,
            "ts": now,
            "iso": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(now)),
            "pid": os.getpid(),
        }
        if extra:
            bundle["extra"] = dict(extra)
        if self._journal is not None:
            try:
                bundle["events"] = self._journal.tail(self._events_tail)
            except Exception:  # noqa: BLE001 - partial bundles still help
                bundle["events"] = []
        if self._metrics_fn is not None:
            try:
                bundle["metrics"] = self._metrics_fn()
            except Exception:  # noqa: BLE001
                bundle["metrics"] = ""
        if self._tracer is not None:
            try:
                bundle["traces"] = self._tracer.traces()
            except Exception:  # noqa: BLE001
                bundle["traces"] = []
        if self._state_fn is not None:
            try:
                bundle["state"] = self._state_fn()
            except Exception:  # noqa: BLE001
                bundle["state"] = None
        with self._lock:
            self._counter += 1
            # Millisecond timestamp + per-process counter: names sort
            # chronologically and two captures in one millisecond (a
            # death and its alert) still get distinct files.
            name = (f"pm-{int(now * 1000):013d}-{self._counter:04d}"
                    f"-{_slug(reason)}.json")
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.directory / name
            tmp = self.directory / (name + ".tmp")
            tmp.write_text(
                json.dumps(bundle, sort_keys=True, default=str, indent=1)
            )
            os.replace(tmp, path)  # readers only ever see whole bundles
            self._prune_locked()
        return path

    def _prune_locked(self) -> None:
        bundles = sorted(self.directory.glob("pm-*.json"))
        for stale in bundles[:-self.retain]:
            try:
                stale.unlink()
            except OSError:
                pass

    # -- reading ----------------------------------------------------------
    def bundles(self) -> List[Path]:
        """Bundle paths on disk, oldest first (empty when disabled)."""
        if self.directory is None or not self.directory.exists():
            return []
        return sorted(self.directory.glob("pm-*.json"))


def load_bundle(path: Any) -> Dict[str, Any]:
    """Parse one bundle file, validating its schema marker."""
    bundle = json.loads(Path(path).read_text())
    if not isinstance(bundle, dict) or "schema" not in bundle:
        raise ValueError(f"{path}: not a postmortem bundle")
    if bundle["schema"] > BUNDLE_SCHEMA:
        raise ValueError(
            f"{path}: bundle schema {bundle['schema']} is newer than "
            f"this reader ({BUNDLE_SCHEMA})"
        )
    return bundle
