"""SLO burn-rate alert engine over the metrics spine.

The serving stack records symptoms (latency windows, error ratios,
shadow agreement, kernel fallbacks, queue depth); this module turns
them into *verdicts*: declarative :class:`AlertRule` predicates
evaluated by a :class:`HealthMonitor` ticker with hysteresis, so a
transient blip never pages and a sustained breach always does.

The state machine per rule follows the Prometheus/Google-SRE shape:

``inactive`` → (predicate true) → ``pending`` → (still true after
``for_s``) → ``firing`` → (predicate false) → resolved → ``inactive``
(re-arming only after ``cooldown_s``).

Transitions are journaled (``slo_breach`` on pending entry,
``alert_fire`` / ``alert_resolve`` on the firing edge), mirrored into
``repro_alerts_active{rule}`` gauges, and fanned out to subscribed
callbacks — the hook a future auto-canary controller consumes instead
of re-deriving SLO state.  A rule firing at ``page`` severity triggers
the black-box :class:`~repro.obs.postmortem.FlightRecorder`.

Multi-window burn-rate rules (:func:`burn_rate_rule`) require the
breach over a fast *and* a slow window simultaneously — fast-only
ignores old incidents, slow-only reacts too late; both together is the
standard SRE-workbook construction.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "AlertRule",
    "HealthMonitor",
    "burn_rate_rule",
    "standard_rules",
]


@dataclass
class AlertRule:
    """One declarative health verdict.

    ``predicate`` is any zero-argument callable returning truthy while
    the condition is breached — typically a closure over
    :class:`~repro.serve.server.ServerMetrics` windows or a
    :class:`~repro.obs.metrics.MetricsHub` snapshot.  A raising
    predicate counts as "not breached" (monitoring must never take the
    service down), but the failure is counted in the monitor's
    ``predicate_errors``.
    """

    name: str
    predicate: Callable[[], bool]
    severity: str = "warn"
    #: Breach must persist this long before the rule fires (hysteresis
    #: against flapping); 0 fires on the first breached tick.
    for_s: float = 0.0
    #: After resolving, the rule cannot re-enter pending until this
    #: much time has passed (dampens fire/resolve oscillation).
    cooldown_s: float = 0.0
    labels: Dict[str, str] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        from repro.obs.events import SEVERITIES

        if not self.name:
            raise ValueError("alert rules need a non-empty name")
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r} "
                f"(not in {SEVERITIES})"
            )
        if self.for_s < 0 or self.cooldown_s < 0:
            raise ValueError("for_s and cooldown_s must be >= 0")

    @property
    def key(self) -> str:
        """Dedup identity: rule name + sorted labels."""
        if not self.labels:
            return self.name
        tags = ",".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
        return f"{self.name}{{{tags}}}"


def burn_rate_rule(
    name: str,
    value_fn: Callable[[float], float],
    threshold: float,
    fast_window_s: float = 60.0,
    slow_window_s: float = 1800.0,
    **kwargs: Any,
) -> AlertRule:
    """Multi-window burn-rate rule: breached only while
    ``value_fn(window)`` exceeds ``threshold`` over *both* the fast and
    the slow window.

    ``value_fn`` takes a window length in seconds and returns the
    signal over that window — e.g. ``metrics.p95_ms`` or
    ``metrics.error_ratio``.  Extra keyword arguments (``severity``,
    ``for_s``, ``cooldown_s``, ``labels``, ``description``) pass
    through to :class:`AlertRule`.
    """
    if fast_window_s <= 0 or slow_window_s <= 0:
        raise ValueError("burn-rate windows must be positive")
    if fast_window_s > slow_window_s:
        raise ValueError("fast window must not exceed the slow window")

    def predicate() -> bool:
        return (value_fn(fast_window_s) > threshold
                and value_fn(slow_window_s) > threshold)

    kwargs.setdefault(
        "description",
        f"{name}: signal > {threshold} over {fast_window_s:g}s "
        f"and {slow_window_s:g}s windows",
    )
    return AlertRule(name=name, predicate=predicate, **kwargs)


class _RuleState:
    __slots__ = ("phase", "pending_since", "fired_at", "resolved_at")

    def __init__(self) -> None:
        self.phase = "inactive"  # inactive | pending | firing
        self.pending_since: Optional[float] = None
        self.fired_at: Optional[float] = None
        self.resolved_at: Optional[float] = None


class HealthMonitor:
    """Evaluate :class:`AlertRule`\\ s on a background ticker.

    Args:
        rules: initial rule set (more via :meth:`add_rule`).
        journal: optional :class:`~repro.obs.events.EventJournal` that
            receives ``slo_breach`` / ``alert_fire`` / ``alert_resolve``
            events.
        hub: optional metrics hub for ``repro_alerts_active{rule}``
            gauges (1 while firing, 0 otherwise; series appear at
            registration so dashboards see every known rule).
        interval_s: ticker period for :meth:`start`.
        recorder: optional
            :class:`~repro.obs.postmortem.FlightRecorder`; a rule
            firing at ``page`` severity captures a bundle.
        clock: monotonic-seconds source (overridable so tests drive
            the state machine deterministically via :meth:`tick`).
    """

    def __init__(
        self,
        rules: Optional[List[AlertRule]] = None,
        journal: Any = None,
        hub: Any = None,
        interval_s: float = 1.0,
        recorder: Any = None,
        clock=time.monotonic,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = interval_s
        self._journal = journal
        self._recorder = recorder
        self._clock = clock
        self._lock = threading.Lock()
        self._rules: Dict[str, AlertRule] = {}
        self._states: Dict[str, _RuleState] = {}
        self._callbacks: List[Callable[[AlertRule, str, dict], Any]] = []
        self._gauge = None
        if hub is not None:
            self._gauge = hub.gauge(
                "repro_alerts_active",
                "1 while the alert rule is firing, 0 otherwise",
            )
        self.ticks = 0
        self.predicate_errors = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        for rule in rules or []:
            self.add_rule(rule)

    # -- configuration ----------------------------------------------------
    def add_rule(self, rule: AlertRule) -> None:
        with self._lock:
            if rule.key in self._rules:
                raise ValueError(f"duplicate alert rule {rule.key!r}")
            self._rules[rule.key] = rule
            self._states[rule.key] = _RuleState()
        if self._gauge is not None:
            self._gauge.labels(rule=rule.name, **rule.labels).set(0)

    def subscribe(
        self, callback: Callable[[AlertRule, str, dict], Any]
    ) -> None:
        """Register ``callback(rule, transition, event)`` for
        ``"fire"`` / ``"resolve"`` transitions (the auto-canary hook).
        A raising callback is swallowed — observers must not break the
        monitor."""
        with self._lock:
            self._callbacks.append(callback)

    # -- evaluation -------------------------------------------------------
    def tick(self, now: Optional[float] = None) -> List[dict]:
        """Evaluate every rule once; returns the transitions taken as
        ``[{"rule", "transition", "at"}, ...]`` (empty when quiet)."""
        if now is None:
            now = self._clock()
        with self._lock:
            rules = list(self._rules.values())
        transitions: List[dict] = []
        for rule in rules:
            try:
                breached = bool(rule.predicate())
            except Exception:  # noqa: BLE001 - a broken probe never pages
                self.predicate_errors += 1
                breached = False
            state = self._states[rule.key]
            if breached:
                if state.phase == "inactive":
                    if (rule.cooldown_s > 0
                            and state.resolved_at is not None
                            and now - state.resolved_at < rule.cooldown_s):
                        continue  # still in cooldown: stay quiet
                    state.phase = "pending"
                    state.pending_since = now
                    self._emit("slo_breach", rule, "info", phase="pending")
                if (state.phase == "pending"
                        and now - state.pending_since >= rule.for_s):
                    state.phase = "firing"
                    state.fired_at = now
                    event = self._emit(
                        "alert_fire", rule, rule.severity,
                        pending_s=round(now - state.pending_since, 6),
                    )
                    if self._gauge is not None:
                        self._gauge.labels(
                            rule=rule.name, **rule.labels
                        ).set(1)
                    if (self._recorder is not None
                            and rule.severity == "page"):
                        try:
                            self._recorder.capture(
                                f"alert_{rule.name}",
                                extra={"rule": rule.key},
                            )
                        except Exception:  # noqa: BLE001 - best effort
                            pass
                    self._notify(rule, "fire", event)
                    transitions.append(
                        {"rule": rule.key, "transition": "fire", "at": now}
                    )
            else:
                if state.phase == "pending":
                    state.phase = "inactive"
                    state.pending_since = None
                elif state.phase == "firing":
                    state.phase = "inactive"
                    state.resolved_at = now
                    event = self._emit(
                        "alert_resolve", rule, "info",
                        firing_s=round(now - state.fired_at, 6),
                    )
                    if self._gauge is not None:
                        self._gauge.labels(
                            rule=rule.name, **rule.labels
                        ).set(0)
                    self._notify(rule, "resolve", event)
                    transitions.append(
                        {"rule": rule.key, "transition": "resolve",
                         "at": now}
                    )
        self.ticks += 1
        return transitions

    def _emit(self, kind: str, rule: AlertRule, severity: str,
              **fields: Any) -> dict:
        fields.setdefault("description", rule.description)
        event = {"kind": kind, "severity": severity,
                 "labels": {"rule": rule.name, **rule.labels},
                 "fields": fields}
        if self._journal is not None:
            try:
                event = self._journal.emit(
                    kind, severity=severity,
                    labels={"rule": rule.name, **rule.labels}, **fields,
                )
            except Exception:  # noqa: BLE001 - journaling best effort
                pass
        return event

    def _notify(self, rule: AlertRule, transition: str,
                event: dict) -> None:
        with self._lock:
            callbacks = list(self._callbacks)
        for callback in callbacks:
            try:
                callback(rule, transition, event)
            except Exception:  # noqa: BLE001 - observer errors stay theirs
                pass

    # -- introspection ----------------------------------------------------
    def active_alerts(self) -> List[str]:
        """Keys of rules currently firing."""
        with self._lock:
            return sorted(
                key for key, state in self._states.items()
                if state.phase == "firing"
            )

    def states(self) -> Dict[str, str]:
        """Rule key -> phase (``inactive`` / ``pending`` / ``firing``)."""
        with self._lock:
            return {key: state.phase
                    for key, state in self._states.items()}

    # -- lifecycle --------------------------------------------------------
    def start(self) -> "HealthMonitor":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="repro-obs-health", daemon=True
            )
            self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.tick()
            except Exception:  # noqa: BLE001 - the ticker must survive
                pass

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "HealthMonitor":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()


def standard_rules(
    metrics: Any,
    slo_p95_ms: Optional[float] = None,
    max_error_ratio: Optional[float] = 0.1,
    fast_window_s: float = 60.0,
    slow_window_s: float = 1800.0,
    for_s: float = 5.0,
    queue_depth_fn: Optional[Callable[[], int]] = None,
    max_queue_depth: int = 1024,
    shadow_report_fn: Optional[Callable[[], Dict[str, dict]]] = None,
    min_shadow_agreement: float = 0.98,
    min_shadow_requests: int = 100,
    backend_report_fn: Optional[Callable[[], Dict[str, Any]]] = None,
    max_fallback_ratio: float = 0.01,
) -> List[AlertRule]:
    """The serving stack's stock rule set, closed over a tier's live
    signal sources.

    * ``p95_slo_burn`` (page): p95 latency above ``slo_p95_ms`` over
      both burn windows — only built when an SLO is given;
    * ``error_ratio_burn`` (page): error ratio above
      ``max_error_ratio`` over both windows;
    * ``shadow_agreement_floor`` (warn): any shadow split's agreement
      below ``min_shadow_agreement`` once it has seen
      ``min_shadow_requests`` mirrored requests;
    * ``native_fallback_ratio`` (warn): numpy-served fallback rows
      exceed ``max_fallback_ratio`` of native-served rows;
    * ``queue_depth_ceiling`` (warn): batcher backlog above
      ``max_queue_depth``.
    """
    rules: List[AlertRule] = []
    if slo_p95_ms is not None:
        rules.append(burn_rate_rule(
            "p95_slo_burn", metrics.p95_ms, float(slo_p95_ms),
            fast_window_s=fast_window_s, slow_window_s=slow_window_s,
            severity="page", for_s=for_s,
            description=f"p95 latency above {slo_p95_ms:g} ms SLO",
        ))
    if max_error_ratio is not None:
        rules.append(burn_rate_rule(
            "error_ratio_burn", metrics.error_ratio,
            float(max_error_ratio),
            fast_window_s=fast_window_s, slow_window_s=slow_window_s,
            severity="page", for_s=for_s,
            description=f"error ratio above {max_error_ratio:g}",
        ))
    if shadow_report_fn is not None:
        def shadow_low() -> bool:
            for row in shadow_report_fn().values():
                if (row.get("requests", 0) >= min_shadow_requests
                        and row.get("agreement_rate", 1.0)
                        < min_shadow_agreement):
                    return True
            return False

        rules.append(AlertRule(
            "shadow_agreement_floor", shadow_low, severity="warn",
            for_s=for_s,
            description=(
                f"shadow agreement below {min_shadow_agreement:g} "
                f"after {min_shadow_requests} mirrored requests"
            ),
        ))

    if backend_report_fn is not None:
        def fallback_high() -> bool:
            report = backend_report_fn() or {}
            native_rows = fallback_rows = 0
            for row in (report.get("models") or {}).values():
                native_rows += int(row.get("native_rows", 0))
                fallback_rows += int(row.get("fallback_rows", 0))
            total = native_rows + fallback_rows
            return (total > 0
                    and fallback_rows / total > max_fallback_ratio)

        rules.append(AlertRule(
            "native_fallback_ratio", fallback_high, severity="warn",
            for_s=for_s,
            description=(
                f"numpy fallback rows above {max_fallback_ratio:g} of "
                f"tree-served rows"
            ),
        ))
    if queue_depth_fn is not None:
        rules.append(AlertRule(
            "queue_depth_ceiling",
            lambda: queue_depth_fn() > max_queue_depth,
            severity="warn", for_s=for_s,
            description=f"batcher backlog above {max_queue_depth}",
        ))
    return rules
