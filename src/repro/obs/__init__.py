"""Unified observability spine for the serving stack.

Metis's pitch is making opaque DL-driven systems interpretable; this
package applies the same standard to the serving system itself.  Before
it existed every tier grew its own ad-hoc report dict
(``ServerMetrics.snapshot``, ``cluster_metrics()``,
``native.native_stats()``, ``shadow_report``) with no shared schema, no
time dimension, and no way to answer "where did this request's 4 ms
go?" across batcher → router → wire → worker → kernel.  Three modules
close those gaps with zero new dependencies:

* :mod:`repro.obs.metrics` — :class:`MetricsHub`, a process-wide
  registry of typed instruments (monotonic counters, gauges,
  log-bucketed streaming histograms) carrying labels and rendered in
  Prometheus text exposition format.  The existing report dicts are
  thin views over it;
* :mod:`repro.obs.trace` — :class:`Tracer`, sampled per-request
  tracing: a trace id minted at ``submit`` rides the microbatcher's
  flush groups and the cluster wire frames, and the finished trace
  decomposes end-to-end latency into queue-wait / batch-assembly /
  wire / worker-service / kernel spans, exportable as Chrome
  ``trace_event`` JSON for flamegraph viewing;
* :mod:`repro.obs.exporter` — :class:`MetricsExporter`, an opt-in
  ``http.server`` thread exposing ``/metrics``, ``/traces``,
  ``/events``, and ``/healthz`` on both serving tiers.

PR 9 adds the *health engine* on top of the measurement spine — the
layer that interprets the signals instead of just exposing them:

* :mod:`repro.obs.events` — :class:`EventJournal`, a bounded ring of
  typed, timestamped control-plane and lifecycle events (publishes,
  shard deaths/heals, autoscale actions, canary changes, kernel
  fallbacks, alerts) with a monotonic sequence number; worker journals
  merge into the cluster parent's over the wire;
* :mod:`repro.obs.health` — :class:`HealthMonitor` evaluating
  declarative :class:`AlertRule`\\ s (including multi-window SLO
  burn-rate rules) with pending→firing→resolved hysteresis, journaled
  transitions, ``repro_alerts_active`` gauges and subscriber
  callbacks;
* :mod:`repro.obs.postmortem` — :class:`FlightRecorder`, black-box
  incident bundles (events + metrics + traces + tier state) written
  atomically on shard death, publish rollback, or page-severity
  alerts.
"""

from repro.obs.events import (
    EVENT_KINDS,
    SEVERITIES,
    EventJournal,
    events_to_jsonl,
)
from repro.obs.exporter import MetricsExporter
from repro.obs.health import (
    AlertRule,
    HealthMonitor,
    burn_rate_rule,
    standard_rules,
)
from repro.obs.metrics import (
    LogHistogram,
    MetricsHub,
    get_hub,
    render_text,
    with_labels,
)
from repro.obs.postmortem import FlightRecorder, load_bundle
from repro.obs.trace import Span, TraceRecord, Tracer

__all__ = [
    "MetricsHub",
    "LogHistogram",
    "get_hub",
    "render_text",
    "with_labels",
    "Tracer",
    "Span",
    "TraceRecord",
    "MetricsExporter",
    "EventJournal",
    "EVENT_KINDS",
    "SEVERITIES",
    "events_to_jsonl",
    "AlertRule",
    "HealthMonitor",
    "burn_rate_rule",
    "standard_rules",
    "FlightRecorder",
    "load_bundle",
]
