"""Sampled per-request tracing across batcher, wire, and worker.

A trace answers "where did this request's 4 ms go?".  The lifecycle:

1. ``MicroBatcher.submit`` asks the tier's :class:`Tracer` for a
   :class:`TraceRecord` — ``None`` for unsampled requests, so the hot
   path pays one float compare when tracing is off or unsampled;
2. the record rides the request slot through the flush group.  The
   batcher stamps ``t_flush`` (queue wait ends, batch assembly
   begins); the cluster dispatcher stamps ``t_send`` just before the
   frame hits the socket and forwards the trace id in the frame's
   optional trace field (``WIRE_VERSION`` 2);
3. the worker continues the trace id inside ``handle_frame`` and
   returns *durations* (``service_s``, ``kernel_s``) in the reply —
   durations, not timestamps, because parent and worker clocks are
   not synchronized and ``time.perf_counter`` is explicitly
   process-local;
4. on completion the parent decomposes end-to-end latency into spans
   that **sum exactly** to the client-observed latency::

       queue_wait     = t_flush - t_submit
       batch_assembly = t_send  - t_flush
       wire           = (t_done - t_send) - service_s
       worker_service = service_s - kernel_s
       kernel         = kernel_s

   (the in-process tier has no wire; its decomposition is queue_wait /
   batch_assembly / kernel with service folded into kernel's bracket).

Finished traces land in a bounded ring (old traces evicted FIFO) and
export as Chrome ``trace_event`` JSON — load the file at
``chrome://tracing`` or https://ui.perfetto.dev for a flamegraph.
"""

from __future__ import annotations

import itertools
import json
import random
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

__all__ = ["Span", "TraceRecord", "Tracer"]

#: Canonical stage names, in pipeline order.  ``docs/observability.md``
#: documents these; the /traces endpoint and Chrome export use them
#: verbatim.
STAGES: Tuple[str, ...] = (
    "queue_wait", "batch_assembly", "wire", "worker_service", "kernel",
)


class Span:
    """One named stage of a trace: offset + duration, both seconds
    relative to the trace's ``t_submit``."""

    __slots__ = ("name", "start_s", "duration_s")

    def __init__(self, name: str, start_s: float, duration_s: float) -> None:
        self.name = name
        self.start_s = start_s
        self.duration_s = duration_s

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, +{self.start_s:.6f}s, {self.duration_s:.6f}s)"


class TraceRecord:
    """A single sampled request, from ``submit`` to completion.

    Mutable while in flight (the batcher/dispatcher stamp timestamps
    onto it); frozen into spans by :meth:`finish`.  All timestamps are
    ``time.perf_counter()`` readings from the *parent* process only.
    """

    __slots__ = (
        "trace_id", "model", "t_submit", "t_flush", "t_send",
        "t_done", "service_s", "kernel_s", "shard", "batch_size",
        "ok", "spans", "total_s",
    )

    def __init__(self, trace_id: int, model: str, t_submit: float) -> None:
        self.trace_id = trace_id
        self.model = model
        self.t_submit = t_submit
        self.t_flush: Optional[float] = None
        self.t_send: Optional[float] = None
        self.t_done: Optional[float] = None
        self.service_s: float = 0.0
        self.kernel_s: float = 0.0
        self.shard: Optional[int] = None
        self.batch_size: int = 0
        self.ok: bool = True
        self.spans: List[Span] = []
        self.total_s: float = 0.0

    # -- in-flight stamps (called by batcher / dispatcher) ----------------
    def mark_flush(self, now: Optional[float] = None) -> None:
        self.t_flush = time.perf_counter() if now is None else now

    def mark_send(self, now: Optional[float] = None) -> None:
        self.t_send = time.perf_counter() if now is None else now

    def finish(
        self,
        *,
        service_s: float = 0.0,
        kernel_s: float = 0.0,
        shard: Optional[int] = None,
        batch_size: int = 0,
        ok: bool = True,
        now: Optional[float] = None,
    ) -> "TraceRecord":
        """Close the trace and decompose it into stage spans.

        Spans partition ``[t_submit, t_done]`` exactly: each stage
        starts where the previous ended and the durations sum to
        ``total_s`` to float precision.  Worker-reported durations are
        clamped into the available wall-clock budget so a skewed or
        garbage reply can never produce negative spans.
        """
        self.t_done = time.perf_counter() if now is None else now
        self.shard = shard
        self.batch_size = batch_size
        self.ok = ok
        self.total_s = max(0.0, self.t_done - self.t_submit)

        t_flush = self.t_flush if self.t_flush is not None else self.t_submit
        t_flush = min(max(t_flush, self.t_submit), self.t_done)
        spans: List[Span] = []
        cursor = 0.0
        queue_wait = t_flush - self.t_submit
        spans.append(Span("queue_wait", cursor, queue_wait))
        cursor += queue_wait

        if self.t_send is not None:
            t_send = min(max(self.t_send, t_flush), self.t_done)
            assembly = t_send - t_flush
            spans.append(Span("batch_assembly", cursor, assembly))
            cursor += assembly
            round_trip = self.t_done - t_send
            service = min(max(service_s, 0.0), round_trip)
            kernel = min(max(kernel_s, 0.0), service)
            wire = round_trip - service
            spans.append(Span("wire", cursor, wire))
            cursor += wire
            spans.append(Span("worker_service", cursor, service - kernel))
            cursor += service - kernel
            spans.append(Span("kernel", cursor, kernel))
        else:
            # In-process tier: no wire hop; service brackets the kernel.
            in_proc = self.t_done - t_flush
            service = min(max(service_s, 0.0), in_proc)
            kernel = min(max(kernel_s, 0.0), service)
            assembly = in_proc - service
            spans.append(Span("batch_assembly", cursor, assembly))
            cursor += assembly
            spans.append(Span("worker_service", cursor, service - kernel))
            cursor += service - kernel
            spans.append(Span("kernel", cursor, kernel))
        self.spans = spans
        return self

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "model": self.model,
            "shard": self.shard,
            "batch_size": self.batch_size,
            "ok": self.ok,
            "total_s": self.total_s,
            "spans": [span.as_dict() for span in self.spans],
        }


class Tracer:
    """Sampling trace collector with a bounded completed-trace ring.

    ``sample_rate`` is the probability a ``submit`` is traced (0
    disables tracing entirely; 1 traces everything — useful in tests).
    Sampling uses a private :class:`random.Random` so tracing never
    perturbs user-visible randomness (the splitter's hash routing, the
    global seed).
    """

    def __init__(self, sample_rate: float = 0.0, capacity: int = 256,
                 seed: Optional[int] = None) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be within [0, 1]")
        self.sample_rate = float(sample_rate)
        self.capacity = int(capacity)
        self._rng = random.Random(seed)
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._done: Deque[TraceRecord] = deque(maxlen=self.capacity)
        self.started = 0
        self.finished = 0

    @property
    def enabled(self) -> bool:
        return self.sample_rate > 0.0

    def maybe_start(self, model: str,
                    now: Optional[float] = None) -> Optional[TraceRecord]:
        """Mint a trace for this request, or ``None`` if unsampled."""
        if self.sample_rate <= 0.0:
            return None
        if self.sample_rate < 1.0 and self._rng.random() >= self.sample_rate:
            return None
        with self._lock:
            trace_id = next(self._ids)
            self.started += 1
        t_submit = time.perf_counter() if now is None else now
        return TraceRecord(trace_id, model, t_submit)

    def record(self, trace: TraceRecord) -> None:
        """File a finished trace into the ring."""
        with self._lock:
            self._done.append(trace)
            self.finished += 1

    def traces(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Most-recent-first finished traces as plain dicts."""
        with self._lock:
            records = list(self._done)
        records.reverse()
        if limit is not None:
            records = records[:limit]
        return [record.as_dict() for record in records]

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "sample_rate": self.sample_rate,
                "capacity": self.capacity,
                "started": self.started,
                "finished": self.finished,
                "stored": len(self._done),
            }

    def chrome_trace(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """Chrome ``trace_event`` JSON for the stored traces.

        Each trace renders as one timeline row (``tid`` = trace id)
        of complete ("ph": "X") events, one per span, with
        microsecond offsets — the format chrome://tracing and
        Perfetto ingest directly.
        """
        events: List[Dict[str, Any]] = []
        for record in self.traces(limit):
            meta = {
                "model": record["model"],
                "shard": record["shard"],
                "batch_size": record["batch_size"],
                "ok": record["ok"],
            }
            for span in record["spans"]:
                events.append({
                    "name": span["name"],
                    "cat": "serve",
                    "ph": "X",
                    "pid": 1,
                    "tid": record["trace_id"],
                    "ts": round(span["start_s"] * 1e6, 3),
                    "dur": round(span["duration_s"] * 1e6, 3),
                    "args": meta,
                })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def chrome_trace_json(self, limit: Optional[int] = None) -> str:
        return json.dumps(self.chrome_trace(limit))
