"""Zero-dependency HTTP exporter for metrics and traces.

A :class:`MetricsExporter` is a daemon :class:`ThreadingHTTPServer`
serving three endpoints:

* ``GET /metrics``  — Prometheus text exposition (``text/plain``),
  rendered fresh per scrape from the provided callback so collectors
  run and gauges are current;
* ``GET /traces``   — finished sampled traces as JSON; pass
  ``?format=chrome`` for Chrome ``trace_event`` JSON, ``?limit=N`` to
  cap the count;
* ``GET /events``   — the structured event journal as JSON Lines
  (``?since=SEQ`` returns only events with a larger sequence number —
  the incremental-poll contract); served only when the tier wires an
  ``events_fn`` in;
* ``GET /healthz``  — liveness probe, ``200 ok``.

Opt-in by construction: the serving tiers only start one when given
``exporter_port`` (0 picks an ephemeral port — the norm in tests; read
the bound port back from :attr:`MetricsExporter.port`).  The server
binds ``127.0.0.1`` by default; exposing it wider is an explicit
caller decision.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional
from urllib.parse import parse_qs, urlparse

__all__ = ["MetricsExporter"]


class _Handler(BaseHTTPRequestHandler):
    # The exporter handler is stateless; all state lives on the server.
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # never spam the serving process's stderr

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        exporter: "MetricsExporter" = self.server.exporter  # type: ignore[attr-defined]
        try:
            if route == "/metrics":
                body = exporter.render_metrics().encode()
                self._send(200, "text/plain; version=0.0.4; charset=utf-8",
                           body)
            elif route == "/traces":
                query = parse_qs(parsed.query)
                limit = None
                if "limit" in query:
                    limit = max(0, int(query["limit"][0]))
                fmt = query.get("format", ["json"])[0]
                payload = exporter.render_traces(limit=limit, chrome=(
                    fmt == "chrome"))
                self._send(200, "application/json",
                           json.dumps(payload).encode())
            elif route == "/events":
                query = parse_qs(parsed.query)
                since = 0
                if "since" in query:
                    since = max(0, int(query["since"][0]))
                body = exporter.render_events(since=since)
                self._send(200, "application/x-ndjson; charset=utf-8",
                           body.encode())
            elif route == "/healthz":
                self._send(200, "text/plain; charset=utf-8", b"ok\n")
            else:
                self._send(404, "text/plain; charset=utf-8",
                           b"not found\n")
        except Exception as exc:  # noqa: BLE001 - scrape must not kill server
            detail = f"exporter error: {type(exc).__name__}: {exc}\n"
            try:
                self._send(500, "text/plain; charset=utf-8",
                           detail.encode())
            except Exception:  # noqa: BLE001 - client already gone
                pass


class MetricsExporter:
    """Serve ``/metrics``, ``/traces``, ``/healthz`` from a daemon thread.

    ``render_metrics`` returns the exposition page (callers typically
    pass ``hub.render`` or a closure merging per-shard snapshots);
    ``tracer`` is optional — without one, ``/traces`` serves an empty
    list.  Construction binds the socket but :meth:`start` spins up
    the serving thread, so a caller can read :attr:`port` (and
    :attr:`url`) before any request is served.
    """

    def __init__(
        self,
        render_metrics: Callable[[], str],
        tracer: Optional[Any] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        events_fn: Optional[Callable[[int], List[Dict[str, Any]]]] = None,
    ) -> None:
        self._render_metrics = render_metrics
        self._tracer = tracer
        self._events_fn = events_fn
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.exporter = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self.host = self._server.server_address[0]
        self.port = int(self._server.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def render_metrics(self) -> str:
        return self._render_metrics()

    def render_traces(self, limit: Optional[int] = None,
                      chrome: bool = False) -> Any:
        if self._tracer is None:
            return {"traceEvents": []} if chrome else {"traces": []}
        if chrome:
            return self._tracer.chrome_trace(limit)
        return {
            "traces": self._tracer.traces(limit),
            **self._tracer.snapshot(),
        }

    def render_events(self, since: int = 0) -> str:
        if self._events_fn is None:
            return ""
        from repro.obs.events import events_to_jsonl

        return events_to_jsonl(self._events_fn(since))

    def start(self) -> "MetricsExporter":
        """Spin up the serving thread.  One-shot: a second ``start``
        (the thread is already serving) or a ``start`` after ``close``
        (the socket is gone) raises :class:`RuntimeError` instead of
        silently leaking a duplicate or serving on a dead socket."""
        if self._closed:
            raise RuntimeError(
                "MetricsExporter is closed; construct a new one instead "
                "of restarting it"
            )
        if self._thread is not None:
            raise RuntimeError(
                f"MetricsExporter already serving on {self.url}; "
                f"start() is one-shot"
            )
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-obs-exporter",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()
