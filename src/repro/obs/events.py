"""Structured event journal: the serving stack's flight log.

Metrics answer "how much"; the journal answers "what happened, and in
what order".  Every control-plane and lifecycle transition — a publish
landing, a shard dying, the autoscaler actuating, an alert firing —
is recorded as one typed, timestamped, structured event in a bounded
in-memory ring with a monotonic sequence number, so operators (and the
health engine in :mod:`repro.obs.health`) can reconstruct an incident
without having scraped at the right moment.

Design points:

* **Process-local and thread-safe.**  Each serving tier owns one
  :class:`EventJournal`; every emitter (registry, splitter,
  autoscaler, native-kernel fallbacks) appends under one lock.  Worker
  processes keep their own journals, which the cluster parent drains
  over the control channel (the append-only ``events_since`` wire op)
  and re-sequences into its own journal via :meth:`EventJournal.ingest`
  with a ``shard`` label — so the merged stream still carries one
  globally monotonic ``seq``.
* **Typed.**  ``kind`` must come from :data:`EVENT_KINDS` and
  ``severity`` from :data:`SEVERITIES`; a typo in an emitter is a bug
  the journal refuses, not a silently unqueryable event.
* **Bounded.**  The ring holds the newest ``capacity`` events; the
  sequence number keeps counting, so a reader that asks
  ``events_since(seq)`` after an overflow can detect the gap.
* **Metrics-mirrored.**  With a hub bound, every emit increments
  ``repro_events_total{kind,severity}`` — the cheap aggregate view
  that alerting and dashboards consume without reading the ring.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "EVENT_KINDS",
    "SEVERITIES",
    "EventJournal",
    "events_to_jsonl",
]

#: The complete event vocabulary.  Emitters must use one of these —
#: consumers (alert rules, postmortem tooling, dashboards) key off the
#: kind, so an open-ended namespace would rot into unqueryable strings.
EVENT_KINDS = (
    "publish",          # a model version landed in a registry
    "rollback",         # a just-published version was rolled back
    "alias_move",       # an alias was installed or repointed
    "shard_spawn",      # a worker replica process came up
    "shard_death",      # a worker replica died (crash or removal)
    "shard_heal",       # a replacement replica finished log replay
    "autoscale_up",     # the autoscaler grew the fleet
    "autoscale_down",   # the autoscaler shrank the fleet
    "canary_change",    # a traffic split was installed/updated/cleared
    "kernel_fallback",  # native kernel rows served by numpy instead
    "slo_breach",       # an alert predicate first went true (pending)
    "alert_fire",       # an alert survived its for_s window
    "alert_resolve",    # a firing alert's predicate went false again
)

#: Severity ladder; ``page`` is the postmortem-capture trigger level.
SEVERITIES = ("info", "warn", "error", "page")


class EventJournal:
    """Thread-safe bounded ring of structured events.

    Args:
        capacity: ring size; the newest that-many events are kept
            (sequence numbers keep counting past evictions).
        hub: optional :class:`repro.obs.metrics.MetricsHub` to mirror
            emits into as ``repro_events_total{kind,severity}``; may
            also be attached later via :meth:`bind_hub`.
        clock: epoch-seconds source (overridable for tests).
    """

    def __init__(self, capacity: int = 2048, hub: Any = None,
                 clock=time.time) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=capacity)
        self._seq = 0
        self._clock = clock
        self._counter = None
        if hub is not None:
            self.bind_hub(hub)

    def bind_hub(self, hub: Any) -> None:
        """Mirror every subsequent emit into ``hub`` as
        ``repro_events_total{kind,severity}``."""
        self._counter = hub.counter(
            "repro_events_total",
            "Structured journal events, per kind and severity",
        )

    # -- writing ----------------------------------------------------------
    def emit(
        self,
        kind: str,
        severity: str = "info",
        labels: Optional[Dict[str, str]] = None,
        **fields: Any,
    ) -> Dict[str, Any]:
        """Append one event; returns the stored record (with its seq).

        ``labels`` are short low-cardinality identifiers (model, shard,
        ref, rule) — what consumers match on; ``fields`` carry the
        free-form payload (versions, counts, reasons).
        """
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {kind!r} (not in EVENT_KINDS)"
            )
        if severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {severity!r} (not in SEVERITIES)"
            )
        record = {
            "ts": float(self._clock()),
            "kind": kind,
            "severity": severity,
            "labels": {str(k): str(v) for k, v in (labels or {}).items()},
            "fields": dict(fields),
        }
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            self._ring.append(record)
        if self._counter is not None:
            self._counter.labels(kind=kind, severity=severity).inc()
        return record

    def ingest(
        self,
        events: Iterable[Dict[str, Any]],
        extra_labels: Optional[Dict[str, str]] = None,
    ) -> List[Dict[str, Any]]:
        """Re-sequence foreign events (a worker journal's drain) into
        this journal.

        Each event keeps its original timestamp, kind, severity, labels
        and fields; ``extra_labels`` (typically ``{"shard": id}``) are
        merged over its labels, its original sequence number is
        preserved as ``origin_seq``, and it gets a fresh ``seq`` here —
        so the merged stream stays globally monotonic.
        """
        out: List[Dict[str, Any]] = []
        stamped = {str(k): str(v)
                   for k, v in (extra_labels or {}).items()}
        for event in events:
            if not isinstance(event, dict) or "kind" not in event:
                continue
            record = {
                "ts": float(event.get("ts", self._clock())),
                "kind": str(event["kind"]),
                "severity": str(event.get("severity", "info")),
                "labels": {**dict(event.get("labels") or {}), **stamped},
                "fields": dict(event.get("fields") or {}),
            }
            if "seq" in event:
                record["fields"]["origin_seq"] = int(event["seq"])
            with self._lock:
                self._seq += 1
                record["seq"] = self._seq
                self._ring.append(record)
            if self._counter is not None:
                self._counter.labels(
                    kind=record["kind"], severity=record["severity"]
                ).inc()
            out.append(record)
        return out

    # -- reading ----------------------------------------------------------
    @property
    def last_seq(self) -> int:
        """Sequence number of the newest event (0 before any emit)."""
        with self._lock:
            return self._seq

    def events_since(self, seq: int = 0,
                     limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Events with ``seq`` strictly greater than the given one,
        oldest first (the incremental-drain / ``/events?since=`` read).

        A reader that falls more than ``capacity`` events behind sees a
        gap: the first returned seq exceeds ``since + 1``.
        """
        with self._lock:
            out = [dict(e) for e in self._ring if e["seq"] > seq]
        if limit is not None:
            out = out[-limit:]
        return out

    def tail(self, n: int) -> List[Dict[str, Any]]:
        """The newest ``n`` events, oldest first."""
        if n <= 0:
            return []
        with self._lock:
            ring = list(self._ring)
        return [dict(e) for e in ring[-n:]]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


def events_to_jsonl(events: Iterable[Dict[str, Any]]) -> str:
    """Serialize events as JSON Lines (one compact object per line) —
    the ``/events`` endpoint's body format."""
    return "".join(
        json.dumps(event, sort_keys=True, default=str) + "\n"
        for event in events
    )
