"""Decision-latency models and micro-benchmarks.

The paper's §6.4 numbers come from real deployments: AuTO's DNN takes
~62 ms per decision (Python + TF serving stack) while the distilled tree
takes ~2.3 ms, and a tree compiled onto a Netronome SmartNIC answers in
~9.4 µs.  Those stacks are not available offline, so this module provides

* **device profiles** — documented per-operation cost constants
  calibrated to the paper's reported absolute numbers, so experiments can
  reproduce the reported *ratios* on modeled hardware, and
* **wall-clock micro-benchmarks** of our own numpy MLP vs tree
  implementations, which measure the same asymmetry directly, and
* a **measured-mode report** (:func:`serving_latency_report`) sourcing
  throughput and tail-latency percentiles from a live
  :class:`~repro.serve.server.PolicyServer` next to the modeled numbers,
  and
* a **cluster-mode report** (:func:`cluster_latency_report`) doing the
  same for a :class:`~repro.serve.cluster.ShardedPolicyService` —
  end-to-end percentiles, per-shard service times, and aggregate
  multi-process throughput.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.tree.cart import _BaseTree
from repro.nn.mlp import MLP
from repro.utils.rng import SeedLike, as_rng


@dataclass(frozen=True)
class DeviceProfile:
    """Per-decision cost model: ``latency = overhead + ops * per_op``.

    Attributes:
        name: profile label.
        overhead_s: fixed per-invocation cost (framework, syscall, RPC).
        per_op_s: marginal cost per primitive op (MAC for DNNs, branch
            comparison for trees).
    """

    name: str
    overhead_s: float
    per_op_s: float

    def latency(self, ops: float) -> float:
        if ops < 0:
            raise ValueError("ops must be non-negative")
        return self.overhead_s + ops * self.per_op_s


#: AuTO's serving stack: ~62 ms per decision for a ~15k-parameter MLP.
#: Nearly all of it is framework overhead, which is exactly why the paper
#: can cut 26.8x by swapping the model under the same stack.
SERVER_DNN = DeviceProfile("server-dnn", overhead_s=0.058, per_op_s=1.1e-6)

#: Same server running the distilled tree: ~2.3 ms dominated by the
#: (much smaller) invocation overhead; tree traversal itself is ~10 ops.
SERVER_TREE = DeviceProfile("server-tree", overhead_s=2.2e-3, per_op_s=1e-5)

#: Tree compiled to branch instructions on a Netronome NFP-4000:
#: ~9.4 us per decision (§6.4 on-device implementation).
SMARTNIC_TREE = DeviceProfile("smartnic-tree", overhead_s=9.0e-6, per_op_s=3e-8)


def decision_latency_dnn(
    net: MLP, profile: DeviceProfile = SERVER_DNN, jitter_rng: SeedLike = None
) -> float:
    """Modeled per-decision latency of an MLP on ``profile``.

    Op count is the multiply-accumulate count (= parameter count).  With
    a jitter RNG, a +/-20% lognormal factor models serving variance.
    """
    base = profile.latency(net.num_parameters())
    if jitter_rng is None:
        return base
    return base * float(as_rng(jitter_rng).lognormal(0.0, 0.2))


def decision_latency_tree(
    tree: _BaseTree,
    profile: DeviceProfile = SERVER_TREE,
    jitter_rng: SeedLike = None,
) -> float:
    """Modeled per-decision latency of a decision tree on ``profile``."""
    base = profile.latency(tree.depth)
    if jitter_rng is None:
        return base
    return base * float(as_rng(jitter_rng).lognormal(0.0, 0.2))


def measure_wallclock_latency(
    predict_fn,
    states: np.ndarray,
    repeats: int = 200,
) -> float:
    """Measured seconds per single-state decision for ``predict_fn``.

    Runs single-sample predictions (deployment makes one decision at a
    time) and returns the mean wall-clock latency.
    """
    states = np.atleast_2d(states)
    n = states.shape[0]
    # Warm up caches / allocation paths.
    predict_fn(states[0:1])
    start = time.perf_counter()
    for i in range(repeats):
        predict_fn(states[i % n:i % n + 1])
    return (time.perf_counter() - start) / repeats


def serving_latency_report(
    server,
    model: str,
    tree: Optional[_BaseTree] = None,
    net: Optional[MLP] = None,
) -> List[dict]:
    """§6.4 report in *measured* mode: live server metrics next to the
    ``DeviceProfile`` model numbers.

    Args:
        server: a live :class:`repro.serve.server.PolicyServer` (anything
            with a ``metrics()`` snapshot), or the snapshot dict itself.
        model: canonical model name to read measured percentiles for.
        tree: optional tree to add modeled server/SmartNIC rows for.
        net: optional MLP to add the modeled DNN-server row for.

    Returns:
        Rows of ``{"source", "model", "mean_ms", "p50_ms", "p95_ms",
        "p99_ms", "throughput_rps", "requests"}`` — measured first, then
        the modeled profiles (modeled rows have no percentiles or
        throughput: the cost model is a constant per decision).
    """
    snapshot = server.metrics() if hasattr(server, "metrics") else dict(server)
    if model not in snapshot:
        raise KeyError(
            f"model {model!r} has no recorded serving metrics; "
            f"known: {sorted(snapshot)}"
        )
    stats = snapshot[model]
    rows = [_measured_row("measured", model, stats)]
    rows.extend(_modeled_rows(tree, net))
    return rows


def _measured_row(source: str, model: str, stats: dict) -> dict:
    latency_ms = stats["latency_ms"]
    return {
        "source": source,
        "model": model,
        "mean_ms": latency_ms["mean"],
        "p50_ms": latency_ms["p50"],
        "p95_ms": latency_ms["p95"],
        "p99_ms": latency_ms["p99"],
        "throughput_rps": stats["throughput_rps"],
        "requests": stats["requests"],
    }


def _modeled_rows(
    tree: Optional[_BaseTree], net: Optional[MLP]
) -> List[dict]:
    def modeled(label: str, seconds: float) -> dict:
        return {
            "source": "modeled",
            "model": label,
            "mean_ms": seconds * 1e3,
            "p50_ms": None,
            "p95_ms": None,
            "p99_ms": None,
            "throughput_rps": None,
            "requests": None,
        }

    rows: List[dict] = []
    if net is not None:
        rows.append(modeled(SERVER_DNN.name, decision_latency_dnn(net)))
    if tree is not None:
        rows.append(modeled(SERVER_TREE.name, decision_latency_tree(tree)))
        rows.append(modeled(
            SMARTNIC_TREE.name, decision_latency_tree(tree, SMARTNIC_TREE)
        ))
    return rows


def cluster_latency_report(
    service,
    model: str,
    tree: Optional[_BaseTree] = None,
    net: Optional[MLP] = None,
) -> List[dict]:
    """§6.4 report in *cluster* mode: end-to-end percentiles next to
    per-shard service times and the modeled device profiles.

    Args:
        service: a live
            :class:`~repro.serve.cluster.ShardedPolicyService` (anything
            with a ``cluster_metrics()`` view), or that view itself.
        model: canonical model name to report on.
        tree / net: optional policies for the modeled rows.

    Returns:
        Rows in the :func:`serving_latency_report` schema.  The
        ``measured-cluster`` row carries the client-observed (queue +
        IPC + service) percentiles — the SLO number; ``shard-<i>`` rows
        carry each worker's service-time view; ``aggregate-shards``
        sums shard throughput, the multi-core scaling headline.
    """
    view = (
        service.cluster_metrics()
        if hasattr(service, "cluster_metrics") else dict(service)
    )
    cluster = view["cluster"]
    if model not in cluster:
        raise KeyError(
            f"model {model!r} has no recorded cluster metrics; "
            f"known: {sorted(cluster)}"
        )
    rows = [_measured_row("measured-cluster", model, cluster[model])]
    aggregate = view["aggregate"].get(model)
    if aggregate is not None:
        rows.append({
            "source": "aggregate-shards",
            "model": model,
            "mean_ms": None,
            "p50_ms": None,
            "p95_ms": None,
            "p99_ms": None,
            "throughput_rps": aggregate["throughput_rps"],
            "requests": aggregate["requests"],
        })
    for shard in view["shards"]:
        stats = shard["models"].get(model)
        if stats is not None:
            rows.append(_measured_row(
                f"shard-{shard['shard']}", model, stats
            ))
    rows.extend(_modeled_rows(tree, net))
    return rows


def elasticity_report(service) -> dict:
    """Operational summary of an elastic cluster's control plane.

    The companion to :func:`cluster_latency_report`'s data-plane rows:
    capacity (target vs live shard count), the router and each shard's
    load signals (in-flight groups, EWMA service time), resident
    shared-memory artifact footprint, and the autoscaler's event
    history when one is configured.

    Args:
        service: a live
            :class:`~repro.serve.cluster.ShardedPolicyService`
            (anything with a ``cluster_metrics()`` view), or that view
            itself.

    Returns:
        ``{"n_shards", "live_shards", "routing", "shm", "autoscale"}``
        — plain JSON-friendly dicts, ready for the benchmark records
        and the docs examples.
    """
    view = (
        service.cluster_metrics()
        if hasattr(service, "cluster_metrics") else dict(service)
    )
    return {
        "n_shards": view["n_shards"],
        "live_shards": view["live_shards"],
        "routing": view.get("routing"),
        "shm": view.get("shm"),
        "autoscale": view.get("autoscale"),
    }


def measure_batch_throughput(
    predict_fn,
    states: np.ndarray,
    repeats: int = 3,
) -> float:
    """Measured rows/second for one-shot batch prediction.

    The serving-side counterpart of :func:`measure_wallclock_latency`:
    the whole state matrix goes through ``predict_fn`` in a single call
    (the flat-tree engine's vectorized path) and the best of ``repeats``
    runs is reported, so transient interference does not understate
    throughput.
    """
    states = np.atleast_2d(states)
    if states.shape[0] == 0:
        raise ValueError("states must contain at least one row")
    predict_fn(states)  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        predict_fn(states)
        best = min(best, time.perf_counter() - start)
    return states.shape[0] / best
