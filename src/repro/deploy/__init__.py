"""Deployment cost models and micro-benchmarks (§6.4)."""

from repro.deploy.latency import (
    DeviceProfile,
    SERVER_DNN,
    SERVER_TREE,
    SMARTNIC_TREE,
    cluster_latency_report,
    elasticity_report,
    decision_latency_dnn,
    decision_latency_tree,
    measure_wallclock_latency,
    serving_latency_report,
)
from repro.deploy.resources import (
    dnn_bundle_bytes,
    tree_bundle_bytes,
    page_load_seconds,
    dnn_runtime_memory_bytes,
    tree_runtime_memory_bytes,
)

__all__ = [
    "DeviceProfile",
    "SERVER_DNN",
    "SERVER_TREE",
    "SMARTNIC_TREE",
    "decision_latency_dnn",
    "decision_latency_tree",
    "measure_wallclock_latency",
    "serving_latency_report",
    "cluster_latency_report",
    "elasticity_report",
    "dnn_bundle_bytes",
    "tree_bundle_bytes",
    "page_load_seconds",
    "dnn_runtime_memory_bytes",
    "tree_runtime_memory_bytes",
]
