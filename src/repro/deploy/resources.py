"""Resource-consumption models: page size, load time, runtime memory.

§6.4 measures the client-side cost of Pensieve-in-the-browser: the tf.js
DNN adds ~1370 KB of page weight (runtime + weights) and several MB of JS
heap, while the distilled tree adds almost nothing.  These closed-form
models reproduce that accounting from first principles (bytes per weight,
bytes per tree node) with documented constants.
"""

from __future__ import annotations

from repro.core.tree.cart import _BaseTree
from repro.nn.mlp import MLP

#: Bytes per DNN weight in the shipped bundle (float32).
BYTES_PER_WEIGHT = 4

#: Size of the tf.js-style runtime that must ship with any DNN (bytes).
DNN_RUNTIME_BYTES = 1_100_000

#: Serialized size of one tree node (feature id, threshold, child refs).
BYTES_PER_TREE_NODE = 28

#: JS implementation of tree traversal (bytes of script).
TREE_RUNTIME_BYTES = 2_000

#: Activation/tensor workspace multiplier for DNN inference memory.
DNN_MEMORY_MULTIPLIER = 6.0

#: Baseline player memory unrelated to the ABR algorithm (bytes).
PLAYER_BASE_MEMORY = 5_000_000


def dnn_bundle_bytes(net: MLP) -> int:
    """Page weight added by shipping the DNN (runtime + weights)."""
    return DNN_RUNTIME_BYTES + net.num_parameters() * BYTES_PER_WEIGHT


def tree_bundle_bytes(tree: _BaseTree) -> int:
    """Page weight added by shipping the decision tree."""
    return TREE_RUNTIME_BYTES + tree.node_count * BYTES_PER_TREE_NODE


def page_load_seconds(extra_bytes: int, bandwidth_kbps: float) -> float:
    """Additional page-load time for ``extra_bytes`` at ``bandwidth_kbps``."""
    if bandwidth_kbps <= 0:
        raise ValueError("bandwidth must be positive")
    return extra_bytes * 8.0 / (bandwidth_kbps * 1000.0)


def dnn_runtime_memory_bytes(net: MLP) -> int:
    """JS heap attributable to DNN inference (weights + workspaces)."""
    return int(
        net.num_parameters() * BYTES_PER_WEIGHT * DNN_MEMORY_MULTIPLIER
    )


def tree_runtime_memory_bytes(tree: _BaseTree) -> int:
    """JS heap attributable to tree inference (the node table)."""
    return tree.node_count * BYTES_PER_TREE_NODE
