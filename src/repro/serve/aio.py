"""Asyncio front end for the serving stack.

The threaded client story (one blocking ``future.result()`` per
request) needs a thread per concurrent client — exactly the
thread-per-connection pattern the microbatcher was built to absorb, and
at hundreds of clients the GIL spends more time context-switching than
serving.  :class:`AsyncPolicyClient` drives the *same* batcher from a
single event loop: submissions land on the same queue, and completions
resolve awaitables instead of waking threads.

Works over anything with the server surface — a
:class:`~repro.serve.server.PolicyServer` or a
:class:`~repro.serve.cluster.ShardedPolicyService` — and automatically
uses the cluster's bulk ``submit_batch`` path for ``predict_many`` when
the backend offers one.

:class:`AsyncWorkerClient` (PR 6) is the other side of the socket
transport: a socket-mode shard worker runs an asyncio TCP server
speaking the :mod:`repro.serve.cluster.wire` protocol, and this client
connects to it *directly* — the same frames the parent sends, without
going through the parent at all.  ``ShardedPolicyService
.worker_endpoints()`` lists where to connect.
"""

from __future__ import annotations

import asyncio
from typing import Any, List, Sequence, Tuple

import numpy as np

from repro.serve.batcher import ServeResult
from repro.serve.server import ServeError


class AsyncPolicyClient:
    """Awaitable decision client over a running policy server.

    Args:
        server: any backend exposing ``submit(model, state)`` returning
            a ``concurrent.futures.Future`` (PolicyServer,
            ShardedPolicyService, or a bare MicroBatcher).

    Usage::

        client = AsyncPolicyClient(server)
        result = await client.predict("abr", state)      # ServeResult
        results = await client.predict_many("abr", states)
        action = await client.act("abr", state)          # or ServeError
    """

    def __init__(self, server: Any) -> None:
        if not callable(getattr(server, "submit", None)):
            raise TypeError("server must expose submit(model, state)")
        self._server = server
        self._submit_batch = getattr(server, "submit_batch", None)

    async def predict(self, model: str, state: Any) -> ServeResult:
        """One microbatched decision; errors arrive as data
        (``ServeResult.ok`` is False), never as exceptions."""
        return await asyncio.wrap_future(self._server.submit(model, state))

    async def predict_many(
        self, model: str, states: Sequence[Any]
    ) -> List[ServeResult]:
        """A stack of decisions, in request order.

        On a cluster backend this is one bulk submission (rows shipped
        to shards as arrays); elsewhere it fans out per-row submissions
        that the batcher coalesces.
        """
        if self._submit_batch is not None:
            return await asyncio.wrap_future(
                self._submit_batch(model, states)
            )
        rows = np.atleast_2d(np.asarray(states, dtype=float))
        return list(await asyncio.gather(*[
            asyncio.wrap_future(self._server.submit(model, row))
            for row in rows
        ]))

    async def act(self, model: str, state: Any) -> Any:
        """The action alone; raises :class:`ServeError` on failure."""
        result = await self.predict(model, state)
        if not result.ok:
            raise ServeError(
                f"{model}: {result.error} ({result.detail})"
            )
        return result.action


class AsyncWorkerClient:
    """Direct wire-protocol connection to one socket-mode shard worker.

    The worker's asyncio server multiplexes any number of connections
    (dispatch stays serialized on its loop), so an out-of-band client
    can probe or read a worker the parent is actively driving.  Only
    *read-side* ops make sense from here — ``ping``, ``describe``,
    ``metrics``, ``predict`` — because control mutations must go
    through the parent's lockstep broadcast or the replicas diverge.

    Requests run strictly sequentially per client (an asyncio lock
    serializes them): the wire protocol correlates replies by
    ``msg_id``, but one connection is FIFO anyway, and a worker serves
    one request at a time.

    Usage::

        host, port = service.worker_endpoints()[0]
        client = await AsyncWorkerClient.connect(host, port)
        try:
            state = await client.describe()
        finally:
            await client.close()
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()
        self._msg_id = 0

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncWorkerClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, op: str, payload: Any = None) -> Any:
        """One wire round-trip; raises :class:`ServeError` when the
        worker replies with an error frame."""
        from repro.serve.cluster.wire import (
            HEADER_SIZE, Request, decode_frame, encode_request,
            frame_size,
        )

        async with self._lock:
            self._msg_id += 1
            msg_id = self._msg_id
            self._writer.write(
                encode_request(Request(msg_id, op, payload))
            )
            await self._writer.drain()
            header = await self._reader.readexactly(HEADER_SIZE)
            body = await self._reader.readexactly(
                frame_size(header) - HEADER_SIZE
            )
        reply = decode_frame(header + body)
        if reply.msg_id != msg_id:
            raise ServeError(
                f"worker answered msg {reply.msg_id}, expected {msg_id}"
            )
        if not reply.ok:
            raise ServeError(f"worker rejected {op!r}: {reply.payload}")
        return reply.payload

    async def ping(self) -> Tuple[str, int]:
        """Liveness probe: ``("pong", shard_id)``."""
        return await self.request("ping")

    async def describe(self) -> dict:
        """The worker's control-state fingerprint (same payload the
        parent's ``replica_states()`` collects)."""
        return await self.request("describe")

    async def metrics(self) -> dict:
        """The worker's per-model service metrics snapshot."""
        return await self.request("metrics")

    async def predict(self, ref: str, x: Any) -> dict:
        """Serve a batch on the worker, bypassing the parent's
        batcher/router (``x`` is a 2-D float array)."""
        rows = np.atleast_2d(np.asarray(x, dtype=float))
        return await self.request("predict", (ref, rows))

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


__all__ = ["AsyncPolicyClient", "AsyncWorkerClient"]
