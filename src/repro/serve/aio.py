"""Asyncio front end for the serving stack.

The threaded client story (one blocking ``future.result()`` per
request) needs a thread per concurrent client — exactly the
thread-per-connection pattern the microbatcher was built to absorb, and
at hundreds of clients the GIL spends more time context-switching than
serving.  :class:`AsyncPolicyClient` drives the *same* batcher from a
single event loop: submissions land on the same queue, and completions
resolve awaitables instead of waking threads.

Works over anything with the server surface — a
:class:`~repro.serve.server.PolicyServer` or a
:class:`~repro.serve.cluster.ShardedPolicyService` — and automatically
uses the cluster's bulk ``submit_batch`` path for ``predict_many`` when
the backend offers one.
"""

from __future__ import annotations

import asyncio
from typing import Any, List, Sequence

import numpy as np

from repro.serve.batcher import ServeResult
from repro.serve.server import ServeError


class AsyncPolicyClient:
    """Awaitable decision client over a running policy server.

    Args:
        server: any backend exposing ``submit(model, state)`` returning
            a ``concurrent.futures.Future`` (PolicyServer,
            ShardedPolicyService, or a bare MicroBatcher).

    Usage::

        client = AsyncPolicyClient(server)
        result = await client.predict("abr", state)      # ServeResult
        results = await client.predict_many("abr", states)
        action = await client.act("abr", state)          # or ServeError
    """

    def __init__(self, server: Any) -> None:
        if not callable(getattr(server, "submit", None)):
            raise TypeError("server must expose submit(model, state)")
        self._server = server
        self._submit_batch = getattr(server, "submit_batch", None)

    async def predict(self, model: str, state: Any) -> ServeResult:
        """One microbatched decision; errors arrive as data
        (``ServeResult.ok`` is False), never as exceptions."""
        return await asyncio.wrap_future(self._server.submit(model, state))

    async def predict_many(
        self, model: str, states: Sequence[Any]
    ) -> List[ServeResult]:
        """A stack of decisions, in request order.

        On a cluster backend this is one bulk submission (rows shipped
        to shards as arrays); elsewhere it fans out per-row submissions
        that the batcher coalesces.
        """
        if self._submit_batch is not None:
            return await asyncio.wrap_future(
                self._submit_batch(model, states)
            )
        rows = np.atleast_2d(np.asarray(states, dtype=float))
        return list(await asyncio.gather(*[
            asyncio.wrap_future(self._server.submit(model, row))
            for row in rows
        ]))

    async def act(self, model: str, state: Any) -> Any:
        """The action alone; raises :class:`ServeError` on failure."""
        result = await self.predict(model, state)
        if not result.ok:
            raise ServeError(
                f"{model}: {result.error} ({result.detail})"
            )
        return result.action
