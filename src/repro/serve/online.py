"""Online DAgger re-distillation with auto-canary promotion.

This module closes the paper's loop.  Metis converts DL networking
policies into decision trees offline; everything below turns that
one-shot conversion into a self-improving serving pipeline:

* :class:`TraceCapture` — a bounded, sampled ring of served
  ``(state, action)`` pairs per model.  The hot path pays one vectorized
  Bernoulli draw per flushed batch and nothing at all while the sample
  rate is zero; cluster workers each keep a private ring that the
  parent drains over the ``capture_drain`` wire op exactly like the
  PR 9 event journal (per-shard high-water marks, shard-death
  tolerant).
* :class:`Redistiller` — DAgger-style refits from captured experience:
  the captured *states* are relabeled with one batched teacher query
  (`DistillDataset.from_policy`) and a fresh tree is fitted with the
  hist splitter, so an in-service refit costs milliseconds, not a
  training run.
* :class:`AutoCanaryController` — an explicit-clock state machine that
  publishes each refit under a candidate name and walks it through a
  canary ramp (e.g. 1% → 10% → 50% → alias move) on the tier's
  :class:`~repro.serve.splitter.TrafficSplitter`.  Every step advances
  only while the subscribed :class:`~repro.obs.health.HealthMonitor`
  rules stay resolved and the routed per-(shard, model) service-time
  estimate clears the p95 SLO; any watched rule firing — or a shard
  dying mid-ramp — clears the split and calls ``rollback_publish``, so
  the journal reads ``shard_death < rollback``/``canary_change`` in
  sequence order.

The controller never sleeps internally: ``tick(now)`` takes an explicit
timestamp, so the chaos/property test layer drives whole
ramp-promote/rollback stories on a fake clock.  ``start()`` adds an
optional background ticker for real deployments (the smoke script).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.artifact import PolicyArtifact

__all__ = [
    "TraceCapture",
    "Redistiller",
    "RefitResult",
    "AutoCanaryController",
]


class _TeacherShim:
    """Adapt a :class:`PolicyArtifact`-style ``predict_batch`` to the
    ``act_greedy_batch`` surface the distillation layer labels with.

    Teacher artifacts built via :meth:`PolicyArtifact.from_teacher`
    already serve greedy actions through ``predict_batch``, so the shim
    is a rename, not a computation.
    """

    def __init__(self, artifact: Any) -> None:
        self._artifact = artifact

    def act_greedy_batch(self, states: np.ndarray) -> np.ndarray:
        return np.asarray(self._artifact.predict_batch(states))


def _as_labeler(teacher: Any) -> Any:
    if hasattr(teacher, "act_greedy_batch"):
        return teacher
    if hasattr(teacher, "predict_batch"):
        return _TeacherShim(teacher)
    raise TypeError(
        "teacher must expose act_greedy_batch (a policy) or "
        "predict_batch (a served artifact)"
    )


class TraceCapture:
    """Sampled ring of served ``(state, action)`` pairs.

    Entries are plain dicts — ``{"seq", "ts", "model", "version",
    "state", "action"}`` — so they cross the typed wire codec verbatim
    when a cluster parent drains a worker's ring.  The ring is bounded
    (``capacity``); once full, the oldest entries are evicted and
    counted.  Three consumption modes:

    * :meth:`entries_since` — non-destructive, by sequence number: the
      wire drain, where each consumer keeps its own high-water mark
      (disjoint batches per consumer by construction);
    * :meth:`take` — destructive pop for the
      :class:`Redistiller` (concurrent takers get disjoint batches);
    * :meth:`ingest` — parent-side re-sequencing of drained worker
      entries, preserving the worker-local ``seq`` as ``origin_seq``.

    ``submit_group`` is hot-path safe: it returns immediately at rate
    zero, draws one vectorized Bernoulli mask otherwise, and never
    raises (failures are counted, not thrown).
    """

    def __init__(
        self,
        capacity: int = 4096,
        sample_rate: float = 0.0,
        seed: Optional[int] = None,
        hub: Optional[Any] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._entries: deque = deque()
        self._seq = 0
        self._sample_rate = 0.0
        self.sample_rate = sample_rate
        self._rng = np.random.default_rng(seed)
        self._clock = clock
        self._lock = threading.Lock()
        self.evicted = 0
        self.submit_errors = 0
        self.captured_total = 0
        self._m_captured = None
        self._m_evicted = None
        if hub is not None:
            self.bind_hub(hub)

    # -- configuration ----------------------------------------------------
    @property
    def sample_rate(self) -> float:
        return self._sample_rate

    @sample_rate.setter
    def sample_rate(self, rate: float) -> None:
        self._sample_rate = min(1.0, max(0.0, float(rate)))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- producer ---------------------------------------------------------
    def submit_group(
        self,
        model: str,
        version: Any,
        rows: np.ndarray,
        actions: Sequence[Any],
    ) -> int:
        """Sample from one served batch; returns how many pairs landed.

        ``rows`` is the 2-D state block that was predicted and
        ``actions`` the aligned per-row outputs.  Never raises — a
        capture must not take serving down.
        """
        rate = self._sample_rate
        if rate <= 0.0:
            return 0
        try:
            rows = np.asarray(rows)
            n = int(rows.shape[0]) if rows.ndim >= 2 else 0
            if n == 0 or n != len(actions):
                return 0
            if rate >= 1.0:
                picked = range(n)
            else:
                mask = self._rng.random(n) < rate
                if not mask.any():
                    return 0
                picked = np.flatnonzero(mask)
            ts = float(self._clock())
            landed = 0
            with self._lock:
                for i in picked:
                    action = actions[int(i)]
                    if isinstance(action, np.generic):
                        action = action.item()
                    elif isinstance(action, np.ndarray):
                        action = np.array(action, copy=True)
                    self._seq += 1
                    self._append_locked({
                        "seq": self._seq,
                        "ts": ts,
                        "model": str(model),
                        "version": int(version),
                        "state": np.array(rows[int(i)], dtype=float,
                                          copy=True),
                        "action": action,
                    })
                    landed += 1
                self.captured_total += landed
            if landed and self._m_captured is not None:
                try:
                    self._m_captured.labels(model=str(model)).inc(landed)
                except Exception:  # noqa: BLE001 - metrics are best effort
                    pass
            return landed
        except Exception:  # noqa: BLE001 - the hot path must survive
            self.submit_errors += 1
            return 0

    def _append_locked(self, entry: dict) -> None:
        if len(self._entries) >= self.capacity:
            self._entries.popleft()
            self.evicted += 1
            if self._m_evicted is not None:
                try:
                    self._m_evicted.labels().inc()
                except Exception:  # noqa: BLE001
                    pass
        self._entries.append(entry)

    # -- consumers --------------------------------------------------------
    def entries_since(self, seq: int = 0) -> List[dict]:
        """Entries with ``seq`` strictly greater than the given mark,
        oldest first (non-destructive — the wire drain path)."""
        with self._lock:
            return [e for e in self._entries if e["seq"] > seq]

    def take(self, max_n: Optional[int] = None) -> List[dict]:
        """Destructively pop up to ``max_n`` oldest entries (all when
        ``None``).  Concurrent takers receive disjoint batches."""
        out: List[dict] = []
        with self._lock:
            while self._entries and (max_n is None or len(out) < max_n):
                out.append(self._entries.popleft())
        return out

    def ingest(
        self, entries: Iterable[dict], extra: Optional[Dict[str, Any]] = None
    ) -> int:
        """Fold drained worker entries into this (parent) ring,
        re-sequencing into the local monotonic order.  The worker-local
        ``seq`` is preserved as ``origin_seq``; ``extra`` (e.g. the
        shard id) is merged into each entry."""
        count = 0
        with self._lock:
            for raw in entries:
                entry = dict(raw)
                entry["origin_seq"] = entry.get("seq")
                if extra:
                    entry.update(extra)
                self._seq += 1
                entry["seq"] = self._seq
                self._append_locked(entry)
                count += 1
            self.captured_total += count
        if count and self._m_captured is not None:
            try:
                self._m_captured.labels(model="_ingest").inc(count)
            except Exception:  # noqa: BLE001
                pass
        return count

    # -- introspection ----------------------------------------------------
    def snapshot(self) -> dict:
        with self._lock:
            return {
                "depth": len(self._entries),
                "capacity": self.capacity,
                "seq": self._seq,
                "sample_rate": self._sample_rate,
                "captured_total": self.captured_total,
                "evicted": self.evicted,
                "submit_errors": self.submit_errors,
            }

    def bind_hub(self, hub: Any) -> "TraceCapture":
        """Mirror the ring into ``repro_online_*`` metric families."""
        self._m_captured = hub.counter(
            "repro_online_captured_total",
            "Served (state, action) pairs sampled into the capture ring",
        )
        self._m_evicted = hub.counter(
            "repro_online_capture_evicted_total",
            "Capture-ring entries evicted by the capacity bound",
        )
        depth = hub.gauge(
            "repro_online_capture_depth",
            "Current number of entries held by the capture ring",
        )
        rate = hub.gauge(
            "repro_online_capture_sample_rate",
            "Live Bernoulli sampling rate of the capture ring",
        )

        def collect() -> None:
            snap = self.snapshot()
            depth.labels().set(snap["depth"])
            rate.labels().set(snap["sample_rate"])

        hub.register_collector(collect)
        return self


@dataclass
class RefitResult:
    """One completed DAgger refit.

    ``agreement`` is the refit tree's fidelity to the teacher on the
    relabeled capture set (the promote gate); ``served_agreement`` is
    how often the *served* actions matched the teacher on those same
    states — the drift that triggered the refit, measured exactly.
    """

    artifact: PolicyArtifact
    n_samples: int
    agreement: float
    served_agreement: float


class Redistiller:
    """DAgger-style refit of a served policy from captured experience.

    Each :meth:`refit` drains the capture ring, accumulates states
    until ``min_samples`` are buffered, relabels them with one batched
    teacher query, and fits a fresh tree with the hist splitter (the
    ~6x-cheaper engine that makes in-service refits affordable).
    ``teacher`` is swappable at runtime — pointing it at a new policy
    is how drift is induced in the smoke script.
    """

    def __init__(
        self,
        capture: TraceCapture,
        teacher: Any,
        *,
        leaf_nodes: int = 200,
        hist_bins: int = 256,
        min_samples: int = 256,
        n_classes: Optional[int] = None,
        name: str = "refit",
        codegen: bool = False,
        models: Optional[Iterable[str]] = None,
    ) -> None:
        self.capture = capture
        self.teacher = teacher
        self.leaf_nodes = int(leaf_nodes)
        self.hist_bins = int(hist_bins)
        self.min_samples = int(min_samples)
        self.n_classes = n_classes
        self.name = name
        self.codegen = codegen
        self.models = set(models) if models is not None else None
        self.refits = 0
        self._states: List[np.ndarray] = []
        self._served: List[Any] = []
        self._lock = threading.Lock()

    @property
    def teacher(self) -> Any:
        return self._teacher

    @teacher.setter
    def teacher(self, teacher: Any) -> None:
        self._teacher = _as_labeler(teacher)

    def pending_samples(self) -> int:
        with self._lock:
            return len(self._states) + len(self.capture)

    def refit(self) -> Optional[RefitResult]:
        """Drain the ring and fit; ``None`` until ``min_samples`` of
        experience have accumulated (the drained states are buffered,
        not lost)."""
        from repro.core.distill.dataset import DistillDataset
        from repro.core.distill.viper import distill_from_dataset

        with self._lock:
            for entry in self.capture.take():
                if (self.models is not None
                        and entry.get("model") not in self.models):
                    continue
                state = np.asarray(entry.get("state"), dtype=float)
                if state.ndim != 1 or state.size == 0:
                    continue
                self._states.append(state)
                self._served.append(entry.get("action"))
            if len(self._states) < self.min_samples:
                return None
            states = np.vstack(self._states)
            served = np.asarray(self._served)
            self._states = []
            self._served = []
        dataset = DistillDataset.from_policy(states, self._teacher)
        policy = distill_from_dataset(
            dataset,
            leaf_nodes=self.leaf_nodes,
            n_classes=self.n_classes,
            splitter="hist",
            hist_bins=self.hist_bins,
        )
        agreement = dataset.agreement_with(policy)
        try:
            served_agreement = float(
                (served.astype(dataset.actions.dtype)
                 == dataset.actions).mean()
            )
        except (TypeError, ValueError):
            served_agreement = 0.0
        artifact = PolicyArtifact.from_tree(
            policy.tree, name=self.name, codegen=self.codegen
        )
        self.refits += 1
        return RefitResult(
            artifact=artifact,
            n_samples=int(states.shape[0]),
            agreement=float(agreement),
            served_agreement=served_agreement,
        )


#: Rule names whose pending/firing phases gate ramp advancement and
#: whose fire transitions abort an active ramp.
DEFAULT_WATCH_RULES = ("shadow_agreement_floor", "p95_slo_burn")
#: Rule names whose fire transitions request a refit while idle.
DEFAULT_DRIFT_RULES = ("shadow_agreement_floor",)


class AutoCanaryController:
    """Publish refits through a gated canary ramp; promote or roll back.

    ``tier`` is either tier — :class:`~repro.serve.server.PolicyServer`
    or :class:`~repro.serve.cluster.service.ShardedPolicyService` —
    both expose the same ``publish`` / ``set_split`` / ``clear_split``
    / ``alias`` / ``rollback_publish`` surface.  ``ref`` must be an
    **alias** (the registry refuses to alias over a model name), which
    is exactly what makes promotion atomic: the final ramp step repoints
    the alias at the pinned candidate version.

    The controller is an explicit state machine.  ``tick(now)`` does
    all the work; a fire of a watched rule (via
    ``monitor.subscribe``) or a ``shard_death`` journal event only sets
    a flag that the next tick acts on, so tests drive every promote and
    rollback story deterministically on a fake clock.  While ramping,
    the canary split carries **no shadow**: mirroring base-vs-candidate
    during a drift fix would hold ``shadow_agreement_floor`` breached
    forever (they are *supposed* to disagree — that is the fix).  The
    detection shadow is reinstalled after promotion instead.
    """

    def __init__(
        self,
        tier: Any,
        ref: str,
        redistiller: Redistiller,
        monitor: Optional[Any] = None,
        *,
        stages: Sequence[float] = (0.01, 0.10, 0.50),
        hold_s: float = 30.0,
        candidate: Optional[str] = None,
        watch_rules: Sequence[str] = DEFAULT_WATCH_RULES,
        drift_rules: Sequence[str] = DEFAULT_DRIFT_RULES,
        min_refit_agreement: float = 0.90,
        slo_p95_ms: Optional[float] = None,
        service_estimate_fn: Optional[Callable[[str], Optional[float]]] = None,
        refit_interval_s: Optional[float] = None,
        detection_shadow: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
        journal: Optional[Any] = None,
        drain_fn: Optional[Callable[[], Any]] = None,
        hub: Optional[Any] = None,
    ) -> None:
        if not stages:
            raise ValueError("need at least one canary stage")
        fractions = [float(f) for f in stages]
        if any(not 0.0 < f <= 1.0 for f in fractions):
            raise ValueError("canary stages must be fractions in (0, 1]")
        if sorted(fractions) != fractions:
            raise ValueError("canary stages must be non-decreasing")
        self.tier = tier
        self.ref = ref
        self.redistiller = redistiller
        self.monitor = monitor
        self.stages = tuple(fractions)
        self.hold_s = float(hold_s)
        self.candidate = candidate or f"{ref}-refit"
        self.watch_rules = tuple(watch_rules)
        self.drift_rules = tuple(drift_rules)
        self.min_refit_agreement = float(min_refit_agreement)
        self.slo_p95_ms = slo_p95_ms
        self.service_estimate_fn = service_estimate_fn
        self.refit_interval_s = refit_interval_s
        self.detection_shadow = detection_shadow
        self.history: List[dict] = []
        self._clock = clock
        self._journal = journal if journal is not None \
            else getattr(tier, "journal", None)
        self._drain = drain_fn
        self._lock = threading.RLock()
        self._state = "idle"
        self._stage = -1
        self._stage_started = 0.0
        self._candidate_version: Optional[int] = None
        self._drift_pending = False
        self._abort: Optional[str] = None
        self._paused_on: Optional[List[str]] = None
        self._last_refit_at = clock()
        self._journal_seq = self._journal_tail()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._closed = False
        self._m_refits = self._m_promotions = self._m_rollbacks = None
        self._g_fraction = self._g_agreement = None
        if hub is not None:
            self.bind_hub(hub)
        if monitor is not None and hasattr(monitor, "subscribe"):
            monitor.subscribe(self._on_alert)

    # -- wiring -----------------------------------------------------------
    def bind_hub(self, hub: Any) -> "AutoCanaryController":
        self._m_refits = hub.counter(
            "repro_online_refits_total",
            "DAgger refits completed by the online redistiller",
        )
        self._m_promotions = hub.counter(
            "repro_online_promotions_total",
            "Canary ramps promoted to the serving alias",
        )
        self._m_rollbacks = hub.counter(
            "repro_online_rollbacks_total",
            "Canary ramps rolled back (rollback_publish called)",
        )
        self._g_fraction = hub.gauge(
            "repro_online_canary_fraction",
            "Current canary traffic fraction of the online ramp",
        )
        self._g_agreement = hub.gauge(
            "repro_online_refit_agreement_ratio",
            "Teacher agreement of the most recent refit tree",
        )
        self._g_fraction.labels(model=self.ref).set(0.0)
        return self

    def _journal_tail(self) -> int:
        if self._journal is None:
            return 0
        try:
            events = self._journal.events_since(0)
            return int(events[-1]["seq"]) if events else 0
        except Exception:  # noqa: BLE001 - journal is observational
            return 0

    def _inc(self, family: Any) -> None:
        if family is not None:
            try:
                family.labels().inc()
            except Exception:  # noqa: BLE001
                pass

    def _set_fraction(self, fraction: float) -> None:
        if self._g_fraction is not None:
            try:
                self._g_fraction.labels(model=self.ref).set(fraction)
            except Exception:  # noqa: BLE001
                pass

    def _record(self, action: str, **detail: Any) -> None:
        entry = {"at": self._clock(), "action": action, **detail}
        self.history.append(entry)

    # -- alert subscription ------------------------------------------------
    def _on_alert(self, rule: Any, transition: str, event: dict) -> None:
        """HealthMonitor callback: set flags; the next tick acts."""
        name = getattr(rule, "name", str(rule))
        with self._lock:
            if transition != "fire":
                return
            if self._state == "ramping":
                if name in self.watch_rules:
                    self._abort = name
            elif name in self.drift_rules:
                self._drift_pending = True

    def request_refit(self) -> None:
        """Manually request a refit on the next idle tick (the smoke
        script's drift-forcing hook)."""
        with self._lock:
            self._drift_pending = True

    # -- the state machine -------------------------------------------------
    def tick(self, now: Optional[float] = None) -> dict:
        """Advance the state machine once; returns :meth:`status`."""
        with self._lock:
            if self._closed:
                return self.status()
            if now is None:
                now = self._clock()
            if self._drain is not None:
                try:
                    self._drain()
                except Exception:  # noqa: BLE001 - drain is best effort
                    pass
            self._scan_journal()
            if self._state == "ramping":
                self._tick_ramp(now)
            else:
                self._tick_idle(now)
            return self.status()

    def _scan_journal(self) -> None:
        if self._journal is None:
            return
        try:
            events = self._journal.events_since(self._journal_seq)
        except Exception:  # noqa: BLE001
            return
        for event in events:
            self._journal_seq = max(
                self._journal_seq, int(event.get("seq", self._journal_seq))
            )
            if (event.get("kind") == "shard_death"
                    and event.get("severity") == "error"
                    and self._state == "ramping"):
                self._abort = "shard_death"

    def _tick_idle(self, now: float) -> None:
        due = (
            self.refit_interval_s is not None
            and now - self._last_refit_at >= self.refit_interval_s
        )
        if not (self._drift_pending or due):
            return
        self._last_refit_at = now
        result = self.redistiller.refit()
        if result is None:
            # Not enough captured experience yet; keep the drift flag so
            # the next tick retries once more samples have drained.
            self._record("refit_deferred",
                         pending=self.redistiller.pending_samples())
            return
        self._inc(self._m_refits)
        if self._g_agreement is not None:
            try:
                self._g_agreement.labels(model=self.ref).set(
                    result.agreement
                )
            except Exception:  # noqa: BLE001
                pass
        self._record(
            "refit", n_samples=result.n_samples,
            agreement=result.agreement,
            served_agreement=result.served_agreement,
        )
        if result.agreement < self.min_refit_agreement:
            # A tree that cannot even fit the teacher must not serve;
            # stand down until the next drift fire or scheduled refit.
            self._drift_pending = False
            self._record("refit_rejected", agreement=result.agreement,
                         floor=self.min_refit_agreement)
            return
        self._drift_pending = False
        self._begin_ramp_locked(result.artifact, now)

    def begin_ramp(
        self, artifact: PolicyArtifact, now: Optional[float] = None
    ) -> int:
        """Publish ``artifact`` as the candidate and start the ramp at
        the first stage (public for tests and manual operation);
        returns the published candidate version."""
        with self._lock:
            if self._state == "ramping":
                raise RuntimeError("a canary ramp is already active")
            if now is None:
                now = self._clock()
            return self._begin_ramp_locked(artifact, now)

    def _begin_ramp_locked(
        self, artifact: PolicyArtifact, now: float
    ) -> int:
        version = self.tier.publish(self.candidate, artifact)
        self._candidate_version = version
        self._state = "ramping"
        self._stage = 0
        self._stage_started = now
        self._abort = None
        self._paused_on = None
        fraction = self.stages[0]
        # Canary-only: replacing any drift-detection shadow split lets
        # shadow_agreement_floor resolve while the fix ramps.
        self.tier.set_split(
            self.ref, canary=f"{self.candidate}@{version}",
            canary_fraction=fraction,
        )
        self._set_fraction(fraction)
        self._record("ramp", candidate=self.candidate, version=version,
                     fraction=fraction)
        return version

    def _gates(self) -> List[str]:
        blocked: List[str] = []
        if self.monitor is not None:
            try:
                phases = self.monitor.states()
            except Exception:  # noqa: BLE001 - a broken monitor blocks
                return ["monitor_error"]
            for name in self.watch_rules:
                for key, phase in phases.items():
                    if phase not in ("pending", "firing"):
                        continue
                    if key == name or key.startswith(name + "{"):
                        blocked.append(key)
        if (self.slo_p95_ms is not None
                and self.service_estimate_fn is not None):
            try:
                estimate = self.service_estimate_fn(self.ref)
            except Exception:  # noqa: BLE001
                estimate = None
            if estimate is not None and estimate > self.slo_p95_ms:
                blocked.append(
                    f"service_estimate:{estimate:.3f}ms>"
                    f"{self.slo_p95_ms:g}ms"
                )
        return blocked

    def _tick_ramp(self, now: float) -> None:
        if self._abort is not None:
            self._rollback(now, self._abort)
            return
        blocked = self._gates()
        if blocked:
            # Pause: hold the current fraction and restart the stage
            # timer; only journal the transition into paused once.
            self._stage_started = now
            if self._paused_on != blocked:
                self._paused_on = blocked
                self._record("pause", stage=self._stage, blocked=blocked)
            return
        if self._paused_on is not None:
            self._paused_on = None
            self._record("resume", stage=self._stage)
        if now - self._stage_started < self.hold_s:
            return
        if self._stage + 1 < len(self.stages):
            self._stage += 1
            fraction = self.stages[self._stage]
            self._stage_started = now
            self.tier.set_split(
                self.ref,
                canary=f"{self.candidate}@{self._candidate_version}",
                canary_fraction=fraction,
            )
            self._set_fraction(fraction)
            self._record("advance", stage=self._stage, fraction=fraction)
        else:
            self._promote(now)

    def _promote(self, now: float) -> None:
        version = self._candidate_version
        self.tier.clear_split(self.ref)
        self.tier.alias(self.ref, self.candidate, version)
        if self.detection_shadow is not None:
            # Fresh shadow stats (the splitter resets them on install),
            # so the loop keeps watching for the *next* drift.
            self.tier.set_split(self.ref, shadow=self.detection_shadow)
        self._state = "idle"
        self._stage = -1
        self._set_fraction(0.0)
        self._inc(self._m_promotions)
        self._record("promote", candidate=self.candidate, version=version)

    def _rollback(self, now: float, reason: str) -> None:
        version = self._candidate_version
        # Split first: rollback_publish refuses while a split still
        # routes traffic at the candidate.
        try:
            self.tier.clear_split(self.ref)
        except Exception:  # noqa: BLE001 - the split may already be gone
            pass
        error = None
        try:
            self.tier.rollback_publish(self.candidate, version)
        except Exception as exc:  # noqa: BLE001 - record, do not crash
            error = str(exc)
        if self.detection_shadow is not None:
            try:
                self.tier.set_split(self.ref, shadow=self.detection_shadow)
            except Exception:  # noqa: BLE001
                pass
        self._state = "idle"
        self._stage = -1
        self._abort = None
        self._paused_on = None
        self._drift_pending = False
        self._set_fraction(0.0)
        self._inc(self._m_rollbacks)
        detail: Dict[str, Any] = {
            "candidate": self.candidate, "version": version,
            "reason": reason,
        }
        if error is not None:
            detail["error"] = error
        self._record("rollback", **detail)

    # -- introspection -----------------------------------------------------
    def status(self) -> dict:
        return {
            "state": self._state,
            "stage": self._stage,
            "fraction": (
                self.stages[self._stage]
                if 0 <= self._stage < len(self.stages) else 0.0
            ),
            "candidate": self.candidate,
            "candidate_version": self._candidate_version,
            "drift_pending": self._drift_pending,
            "abort": self._abort,
            "paused_on": list(self._paused_on or []),
            "refits": self.redistiller.refits,
        }

    # -- lifecycle ---------------------------------------------------------
    def start(self, interval_s: float = 1.0) -> "AutoCanaryController":
        """Background ticker for real deployments; tests call
        :meth:`tick` directly instead."""
        if self._thread is not None:
            raise RuntimeError("controller already started")
        self.interval_s = float(interval_s)
        self._thread = threading.Thread(
            target=self._loop, name="repro-online-canary", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.tick()
            except Exception:  # noqa: BLE001 - the ticker must survive
                pass

    def close(self) -> None:
        self._closed = True
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "AutoCanaryController":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
