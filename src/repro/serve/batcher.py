"""Microbatching scheduler: coalesce single-state requests into batches.

The same trick that made DAgger rollout collection 6.4x faster (one
``act_greedy_batch`` per step across all live episodes, PR 2) applied at
the serving boundary: concurrent single-state requests queue up, a
dedicated worker drains them into one ``predict_batch`` call per model
per flush, and completes each request's future individually.

Flush policy (the two standard knobs):

* ``max_batch`` — flush as soon as this many requests are gathered;
* ``max_delay_s`` — flush when the *oldest* gathered request has waited
  this long, even if the batch is short.  The deadline is anchored at
  enqueue time, so under sustained load the worker never waits — the
  backlog that accumulated during the previous flush is already past its
  deadline and drains immediately.

Two optional request-path extensions (both off by default):

* an :class:`~repro.serve.adaptive.AdaptiveDelay` controller replaces
  the fixed ``max_delay_s`` with a load-aware deadline — near zero when
  the queue idles, growing toward the cap under sustained load;
* a :class:`~repro.serve.splitter.TrafficSplitter` rewrites references
  before resolution (canary fraction) and mirrors completed requests to
  a shadow version whose answers are recorded for fidelity comparison
  but never returned to a client future.

Robustness at the boundary (the batcher thread must survive anything a
request can throw at it):

* mis-shaped / non-numeric / non-finite states are rejected per request
  with a structured :class:`ServeResult` error — they never reach numpy
  broadcasting where they could kill the worker and stall every queued
  future;
* a ``predict_batch`` that raises fails only the requests of that batch
  group, again structurally;
* ``close()`` flushes everything still queued before returning — no
  future is ever dropped.
"""

from __future__ import annotations

import asyncio
import queue
import threading
import time
from concurrent.futures import Future
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.serve.adaptive import AdaptiveDelay
from repro.serve.registry import ModelRegistry
from repro.serve.splitter import TrafficSplitter, mirror_shadow

#: Error kinds a request can fail with (recorded in metrics).
ERR_UNKNOWN_MODEL = "unknown_model"
ERR_BAD_INPUT = "bad_input"
ERR_BAD_SHAPE = "bad_shape"
ERR_NON_FINITE = "non_finite"
ERR_PREDICT = "predict_error"
ERR_BAD_OUTPUT = "bad_output"


class ServeResult(NamedTuple):
    """Outcome of one serving request (futures resolve to this).

    A NamedTuple rather than a dataclass: one is built per served
    request on the batcher's hot path, and tuple construction is the
    cheapest structured record Python has.

    Attributes:
        ok: whether a decision was produced.
        action: the decision — an int for discrete policies, a float or
            array for regression policies; None on error.
        model: canonical model name that (would have) served the request.
        version: registry version that served it (0 when unresolved).
        error: error kind (one of the ``ERR_*`` constants) or None.
        detail: human-readable error detail.
        latency_s: enqueue-to-completion latency measured server-side.
    """

    ok: bool
    action: Any
    model: str
    version: int
    error: Optional[str] = None
    detail: str = ""
    latency_s: float = 0.0


class _Request:
    __slots__ = ("model", "state", "future", "enqueued", "row", "trace")

    def __init__(self, model: str, state: Any) -> None:
        self.model = model
        self.state = state
        self.future: Future = Future()
        self.enqueued = time.perf_counter()
        #: Validated float row, captured at flush time so shadow
        #: mirroring does not re-validate.
        self.row: Optional[np.ndarray] = None
        #: Sampled :class:`repro.obs.trace.TraceRecord`, or None for
        #: the (vast majority of) unsampled requests.
        self.trace: Optional[Any] = None


_STOP = object()


class MicroBatcher:
    """Single worker thread draining a request queue into batched predicts.

    Args:
        registry: model registry requests are resolved against (once per
            model per flush — the hot-swap granularity).
        metrics: optional sink with ``record(model, version, latency_s,
            error=None)`` and ``record_group(model, version, latencies)``
            methods (see :class:`repro.serve.server.ServerMetrics`).
        max_batch: flush threshold (requests per flush).
        max_delay_s: max time the oldest request may wait for co-batching
            (0 disables coalescing waits — flush whatever is queued).
        delay: optional :class:`AdaptiveDelay` controller; when present
            it supplies the per-gather deadline (its cap plays the role
            of ``max_delay_s``) and is fed every flush's fill level.
        splitter: optional :class:`TrafficSplitter` consulted once per
            flush for canary routing and shadow mirroring.
        tracer: optional :class:`repro.obs.trace.Tracer`; sampled
            requests get a trace minted at ``submit`` and finished at
            completion.  Unsampled requests pay one float compare.
        hub: optional :class:`repro.obs.metrics.MetricsHub`; when
            present the batcher records flush counts and flush-size
            distribution into it.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        metrics: Any = None,
        max_batch: int = 64,
        max_delay_s: float = 2e-3,
        delay: Optional[AdaptiveDelay] = None,
        splitter: Optional[TrafficSplitter] = None,
        tracer: Optional[Any] = None,
        hub: Optional[Any] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_delay_s < 0:
            raise ValueError("max_delay_s must be non-negative")
        self.registry = registry
        self.metrics = metrics
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.delay = delay
        self.splitter = splitter
        self.tracer = tracer
        self.hub = hub
        #: Optional :class:`repro.serve.online.TraceCapture`: when set
        #: (by ``PolicyServer.start_online``), every flushed group is
        #: offered for sampling.  ``None`` keeps the hot path untouched.
        self.capture = None
        if hub is not None:
            from repro.obs.metrics import DEFAULT_SIZE_BUCKETS
            self._m_flushes = hub.counter(
                "repro_batcher_flushes_total",
                "Batches flushed by the microbatcher",
            ).labels()
            self._m_flush_size = hub.histogram(
                "repro_batcher_flush_size",
                "Requests gathered per flush",
                buckets=DEFAULT_SIZE_BUCKETS,
            ).labels()
        else:
            self._m_flushes = None
            self._m_flush_size = None
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._closed = False
        # Guards the closed-flag/enqueue pair: submit must win or lose
        # against close() atomically, so an accepted request is always
        # enqueued before the stop sentinel (zero dropped futures).
        self._submit_lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None

    # -- client side -----------------------------------------------------
    def start(self) -> "MicroBatcher":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-batcher", daemon=True
        )
        self._thread.start()
        return self

    def submit(self, model: str, state: Any) -> "Future[ServeResult]":
        """Enqueue one request; the returned future resolves to a
        :class:`ServeResult` (never an exception — errors are data)."""
        request = _Request(model=model, state=state)
        if self.tracer is not None and self.tracer.enabled:
            request.trace = self.tracer.maybe_start(
                model, now=request.enqueued
            )
        with self._submit_lock:
            if self._closed:
                raise RuntimeError(
                    "MicroBatcher is closed: submit() after close() "
                    "would enqueue a future that can never resolve"
                )
            self._queue.put(request)
        return request.future

    def submit_async(self, model: str, state: Any) -> "asyncio.Future":
        """Asyncio submission path: same queue, same worker, no thread
        per client.

        Must be called with an event loop running (it binds the wrapped
        future to it); ``await`` the result like any coroutine.  Raises
        the same ``RuntimeError`` as :meth:`submit` once closed.
        """
        return asyncio.wrap_future(self.submit(model, state))

    @property
    def closed(self) -> bool:
        return self._closed

    def queue_depth(self) -> int:
        """Requests accepted but not yet gathered into a flush.

        An approximate, lock-free reading (``SimpleQueue.qsize``) —
        good enough for the load signals it feeds (adaptive-delay
        observation, cluster autoscaling), not a synchronization
        primitive.
        """
        return self._queue.qsize()

    def close(self) -> None:
        """Stop the worker; every already-submitted request completes."""
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(_STOP)
        if self._thread is None:
            self._drain_remaining()
            return
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "MicroBatcher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- worker side -----------------------------------------------------
    def _loop(self) -> None:
        while True:
            batch, saw_stop = self._gather()
            if batch:
                self._flush(batch)
            if saw_stop:
                self._drain_remaining()
                return

    def _gather(self) -> Tuple[List[_Request], bool]:
        """Collect one batch: first item blocks, the rest race the
        oldest item's deadline."""
        try:
            first = self._queue.get(timeout=0.05)
        except queue.Empty:
            return [], False
        if first is _STOP:
            return [], True
        batch = [first]
        delay_s = (
            self.delay.current() if self.delay is not None
            else self.max_delay_s
        )
        deadline = first.enqueued + delay_s
        while len(batch) < self.max_batch:
            remaining = deadline - time.perf_counter()
            try:
                if remaining > 0:
                    item = self._queue.get(timeout=remaining)
                else:
                    item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _STOP:
                return batch, True
            batch.append(item)
        if self.delay is not None:
            self.delay.observe(len(batch), self._queue.qsize(),
                               self.max_batch)
        return batch, False

    def _drain_remaining(self) -> None:
        leftover: List[_Request] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _STOP:
                leftover.append(item)
        for start in range(0, len(leftover), self.max_batch):
            self._flush(leftover[start:start + self.max_batch])

    def _flush(self, batch: List[_Request]) -> None:
        self._note_flush(batch)
        by_ref: Dict[str, List[_Request]] = {}
        for request in batch:
            by_ref.setdefault(request.model, []).append(request)
        # Traffic splitting rewrites references *before* resolution: a
        # canaried request simply becomes a request for the canary ref,
        # so attribution, grouping, and hot-swap semantics all hold
        # unchanged downstream.  Shadow mirroring happens after the
        # primary futures resolve (it compares served decisions).
        shadow_jobs: List[Tuple[str, str, List[_Request]]] = []
        splitter = self.splitter
        if splitter is not None and splitter.active:
            routed: Dict[str, List[_Request]] = {}
            for ref, requests in by_ref.items():
                plan = splitter.assign(ref, len(requests))
                if plan is None:
                    routed.setdefault(ref, []).extend(requests)
                    continue
                split = plan.split
                if split.canary is not None:
                    primaries = []
                    for request, to_canary in zip(requests,
                                                  plan.canary_mask):
                        target = split.canary if to_canary else ref
                        routed.setdefault(target, []).append(request)
                        if not to_canary:
                            primaries.append(request)
                else:
                    routed.setdefault(ref, []).extend(requests)
                    primaries = requests
                if split.shadow is not None and primaries:
                    # Only primary-served traffic is mirrored: canaried
                    # rows served by the candidate itself would
                    # trivially agree and inflate the fidelity rate.
                    shadow_jobs.append((ref, split.shadow, primaries))
            by_ref = routed
        # All references resolve in one registry critical section, then
        # requests regroup by the *resolved* (name, version): an alias
        # and its canonical name co-batch into one predict, and a
        # concurrent publish can never split one flush across versions.
        to_resolve = set(by_ref)
        to_resolve.update(shadow_ref for _, shadow_ref, _ in shadow_jobs)
        resolutions = self.registry.resolve_many(to_resolve)
        groups: Dict[Tuple[str, int], Tuple[Any, List[_Request]]] = {}
        for ref, requests in by_ref.items():
            resolved = resolutions[ref]
            if resolved is None:
                for request in requests:
                    self._complete_error(
                        request, ref, 0, ERR_UNKNOWN_MODEL,
                        f"unknown model {ref!r}",
                    )
                continue
            key = (resolved.name, resolved.version)
            if key in groups:
                groups[key][1].extend(requests)
            else:
                groups[key] = (resolved, list(requests))
        for resolved, requests in groups.values():
            self._flush_group(resolved, requests)
        for ref, shadow_ref, requests in shadow_jobs:
            self._mirror_shadow(
                ref, shadow_ref, resolutions.get(shadow_ref), requests
            )

    def _mirror_shadow(
        self,
        ref: str,
        shadow_ref: str,
        resolved,
        requests: List[_Request],
    ) -> None:
        """Replay one flush's served requests against the shadow version.

        Outcomes land only in the splitter's shadow report — a shadow
        answer is *never* written to a client future, and a shadow
        failure costs the primary traffic nothing.
        """
        rows: List[np.ndarray] = []
        served: List[Any] = []
        for request in requests:
            future = request.future
            # Futures in this flush resolved synchronously above; guard
            # anyway so a surprise never leaks into client state.
            if request.row is None or not future.done():
                continue
            result = future.result()
            if result.ok:
                rows.append(request.row)
                served.append(result.action)
        if not rows:
            return
        try:
            stacked = np.stack(rows)
        except ValueError:
            # Mixed row lengths cannot reach here (one flush serves one
            # primary version), but the worker thread's liveness must
            # never hinge on that invariant.
            self.splitter.record_shadow_error(ref, shadow_ref, len(rows))
            return
        mirror_shadow(
            self.splitter, resolved, ref, shadow_ref, stacked, served
        )

    def _flush_group(self, resolved, requests: List[_Request]) -> None:
        artifact = resolved.artifact
        shaped: List[_Request] = []
        rows: List[np.ndarray] = []
        for request in requests:
            row, error, detail = _validate_state(request.state, artifact)
            if error is not None:
                self._complete_error(
                    request, resolved.name, resolved.version, error, detail
                )
            else:
                request.row = row
                shaped.append(request)
                rows.append(row)
        if not shaped:
            return
        x = np.stack(rows)
        # One vectorized finiteness sweep for the whole batch: a poisoned
        # row is rejected individually, its batchmates proceed.
        finite = np.isfinite(x).all(axis=1)
        if finite.all():
            valid = shaped
        else:
            valid = []
            for keep, request in zip(finite, shaped):
                if keep:
                    valid.append(request)
                else:
                    self._complete_error(
                        request, resolved.name, resolved.version,
                        ERR_NON_FINITE,
                        "state contains NaN or infinite entries",
                    )
            if not valid:
                return
            x = x[finite]
        t_kernel = time.perf_counter()
        try:
            out = np.asarray(artifact.predict_batch(x))
        except Exception as exc:  # noqa: BLE001 - boundary must survive
            for request in valid:
                self._complete_error(
                    request, resolved.name, resolved.version,
                    ERR_PREDICT, f"{type(exc).__name__}: {exc}",
                )
            return
        kernel_s = time.perf_counter() - t_kernel
        if out.shape[:1] != (len(valid),):
            for request in valid:
                self._complete_error(
                    request, resolved.name, resolved.version, ERR_BAD_OUTPUT,
                    f"predict_batch returned shape {out.shape} for "
                    f"{len(valid)} requests",
                )
            return
        now = time.perf_counter()
        latencies = [now - request.enqueued for request in valid]
        if self.metrics is not None:
            self.metrics.record_group(
                resolved.name, resolved.version, latencies
            )
        if out.ndim == 1:
            actions = out.tolist()  # native ints/floats in one pass
        else:
            actions = [np.array(row) for row in out]
        name, version = resolved.name, resolved.version
        capture = self.capture
        if capture is not None and capture.sample_rate > 0.0:
            capture.submit_group(name, version, x, actions)
        for request, action, latency in zip(valid, actions, latencies):
            # In-process tier: service is the kernel bracket itself, so
            # the decomposition is queue_wait / batch_assembly / kernel.
            self._finish_trace(
                request, service_s=kernel_s, kernel_s=kernel_s,
                batch_size=len(valid), now=now,
            )
            request.future.set_result(ServeResult(
                ok=True, action=action, model=name, version=version,
                latency_s=latency,
            ))

    def _note_flush(self, batch: List[_Request]) -> None:
        """Per-flush bookkeeping shared by every tier: hub flush
        instruments and the queue-wait boundary stamp on sampled
        traces (queue wait ends when the flush picks the request up)."""
        if self._m_flushes is not None:
            self._m_flushes.inc()
            self._m_flush_size.observe(len(batch))
        now = time.perf_counter()
        for request in batch:
            if request.trace is not None:
                request.trace.mark_flush(now)

    # -- completion ------------------------------------------------------

    def _finish_trace(
        self,
        request: _Request,
        *,
        service_s: float = 0.0,
        kernel_s: float = 0.0,
        shard: Optional[int] = None,
        batch_size: int = 0,
        ok: bool = True,
        now: Optional[float] = None,
    ) -> None:
        trace = request.trace
        if trace is None or self.tracer is None:
            return
        trace.finish(
            service_s=service_s, kernel_s=kernel_s, shard=shard,
            batch_size=batch_size, ok=ok, now=now,
        )
        self.tracer.record(trace)

    def _complete_error(
        self,
        request: _Request,
        model: str,
        version: int,
        error: str,
        detail: str,
    ) -> None:
        now = time.perf_counter()
        latency = now - request.enqueued
        if self.metrics is not None:
            self.metrics.record(model, version, latency, error=error)
        self._finish_trace(request, ok=False, now=now)
        request.future.set_result(ServeResult(
            ok=False, action=None, model=model, version=version,
            error=error, detail=detail, latency_s=latency,
        ))


def coerce_state_row(
    state: Any,
) -> Tuple[Optional[np.ndarray], Optional[str], str]:
    """Coerce one request state into a flat float row.

    The artifact-independent half of serve-boundary validation, shared
    by the in-process batcher and the cluster front end (which cannot
    know the feature count — its workers do).  Returns ``(row, None,
    "")`` or ``(None, error_kind, detail)``.
    """
    try:
        row = np.asarray(state, dtype=float)
    except (TypeError, ValueError) as exc:
        return None, ERR_BAD_INPUT, f"state is not numeric: {exc}"
    if row.ndim == 2 and row.shape[0] == 1:
        row = row[0]
    if row.ndim != 1:
        return None, ERR_BAD_SHAPE, (
            f"expected a flat state vector, got shape {np.shape(state)}"
        )
    return row, None, ""


def _validate_state(
    state: Any, artifact
) -> Tuple[Optional[np.ndarray], Optional[str], str]:
    """Check one request state's type and shape against the artifact.

    Returns ``(row, None, "")`` on success or ``(None, error_kind,
    detail)`` — the mis-shaped rejection the batcher needs to keep a
    poisoned request from corrupting its whole batch.  Finiteness is
    checked afterwards in one vectorized sweep over the stacked batch.
    """
    row, error, detail = coerce_state_row(state)
    if error is not None:
        if error == ERR_BAD_SHAPE:
            detail = (
                f"expected a flat state of {artifact.n_features} "
                f"features, got shape {np.shape(state)}"
            )
        return None, error, detail
    if row.shape[0] != artifact.n_features:
        return None, ERR_BAD_SHAPE, (
            f"expected a flat state of {artifact.n_features} features, "
            f"got shape {np.shape(state)}"
        )
    return row, None, ""
