"""Per-reference traffic splitting: canary routing and shadow mirroring.

Staged rollout of a freshly distilled policy needs two primitives the
plain registry does not provide:

* **canary** — route a configurable fraction of one reference's traffic
  to a different version, so a new tree earns production trust on a
  slice of real requests before the alias flips;
* **shadow** — mirror requests to another version whose answers are
  *recorded for fidelity comparison but never returned*, so a candidate
  can be scored against live traffic at zero blast radius (the serving
  analogue of the paper's teacher-vs-student fidelity metrics).

:class:`TrafficSplitter` sits in the registry layer: it rewrites
*references* (``"abr/prod"`` → ``"abr/prod"`` or ``"abr@3"``) before
resolution, which keeps every downstream guarantee intact — the batcher
still resolves once per flush, responses still carry the exact (name,
version) that answered, and hot-swap stays atomic.  Split configuration
is swapped under one lock, so reconfiguration under load is atomic per
flush: a flush sees either the old split or the new one, never a blend.

Shadow outcomes accumulate in the splitter itself (`shadow_report`):
per reference, how many mirrored decisions agreed with the decision
actually served.  Both the in-process :class:`MicroBatcher` and the
cluster workers feed the same accumulator shape.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.utils.rng import SeedLike, as_rng


@dataclass(frozen=True)
class TrafficSplit:
    """One reference's split configuration (immutable snapshot).

    Attributes:
        ref: the reference whose traffic is split (usually an alias).
        canary: reference receiving ``canary_fraction`` of the traffic,
            or None.
        canary_fraction: fraction in [0, 1] routed to ``canary``.
        shadow: reference mirrored on every request, or None.  Shadow
            decisions are recorded, never returned.
    """

    ref: str
    canary: Optional[str] = None
    canary_fraction: float = 0.0
    shadow: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.canary_fraction <= 1.0:
            raise ValueError("canary_fraction must be in [0, 1]")
        if self.canary is None and self.canary_fraction > 0.0:
            raise ValueError("canary_fraction set without a canary ref")
        if self.canary is not None and self.canary_fraction == 0.0:
            raise ValueError("canary ref set with a zero fraction")
        if self.canary is None and self.shadow is None:
            raise ValueError("a split needs a canary or a shadow")


class _ShadowStats:
    __slots__ = ("shadow_ref", "requests", "agreements", "errors")

    def __init__(self, shadow_ref: str) -> None:
        self.shadow_ref = shadow_ref
        self.requests = 0
        self.agreements = 0
        self.errors = 0


class TrafficSplitter:
    """Atomic per-reference canary/shadow routing table.

    Args:
        seed: RNG seed for canary assignment (deterministic splits in
            tests; fresh entropy in production).
    """

    def __init__(self, seed: SeedLike = None) -> None:
        self._lock = threading.Lock()
        self._splits: Dict[str, TrafficSplit] = {}
        self._shadow: Dict[str, _ShadowStats] = {}
        self._rng = as_rng(seed)
        #: Lock-free fast-path flag the batcher reads once per flush;
        #: bool reads are GIL-atomic, and staleness only lasts one flush.
        self.active = False
        #: Optional :class:`repro.obs.events.EventJournal` the owning
        #: tier attaches; split installs/clears are journaled as
        #: ``canary_change`` events (best effort).
        self.journal = None

    def _journal_change(self, ref: str, **fields) -> None:
        if self.journal is None:
            return
        try:
            self.journal.emit("canary_change", labels={"ref": ref},
                              **fields)
        except Exception:  # noqa: BLE001 - journaling is best effort
            pass

    # -- configuration ---------------------------------------------------
    def set_split(
        self,
        ref: str,
        canary: Optional[str] = None,
        canary_fraction: float = 0.0,
        shadow: Optional[str] = None,
    ) -> TrafficSplit:
        """Install (or replace) the split for ``ref`` atomically.

        The next flush that looks ``ref`` up sees the new configuration
        in full; in-flight flushes finish under the one they read.
        """
        split = TrafficSplit(
            ref=ref, canary=canary, canary_fraction=float(canary_fraction),
            shadow=shadow,
        )
        with self._lock:
            self._splits[ref] = split
            if shadow is not None:
                stats = self._shadow.get(ref)
                if stats is None or stats.shadow_ref != shadow:
                    self._shadow[ref] = _ShadowStats(shadow)
            else:
                # Replacing a shadowed split with a shadow-less one
                # (e.g. the auto-canary ramp taking over from a
                # drift-detection mirror) retires its agreement stats:
                # keeping them would hold shadow_agreement_floor
                # breached on traffic that no longer mirrors.
                self._shadow.pop(ref, None)
            self.active = True
        self._journal_change(
            ref, canary=canary, canary_fraction=float(canary_fraction),
            shadow=shadow,
        )
        return split

    def clear(self, ref: str) -> None:
        """Remove ``ref``'s split; its traffic flows undivided again."""
        with self._lock:
            removed = self._splits.pop(ref, None)
            self.active = bool(self._splits)
        if removed is not None:
            self._journal_change(ref, cleared=True)

    def splits(self) -> Dict[str, TrafficSplit]:
        """Snapshot of every active split, keyed by the split
        reference."""
        with self._lock:
            return dict(self._splits)

    def get(self, ref: str) -> Optional[TrafficSplit]:
        """The active split for ``ref``, or None when its traffic
        flows undivided."""
        with self._lock:
            return self._splits.get(ref)

    # -- request-time routing --------------------------------------------
    def assign(self, ref: str, n: int) -> Optional["SplitPlan"]:
        """Split plan for ``n`` requests arriving under ``ref``.

        Returns None when ``ref`` has no split (the common fast path).
        Canary assignment draws one vectorized Bernoulli sample per
        request from the splitter's own RNG stream.
        """
        with self._lock:
            split = self._splits.get(ref)
            if split is None:
                return None
            if split.canary is not None:
                mask = self._rng.random(n) < split.canary_fraction
            else:
                mask = np.zeros(n, dtype=bool)
        return SplitPlan(split=split, canary_mask=mask)

    # -- shadow accounting -----------------------------------------------
    def record_shadow(
        self,
        ref: str,
        shadow_ref: str,
        served_actions: Any,
        shadow_actions: Any,
    ) -> None:
        """Record one mirrored batch: agreement of shadow vs served.

        Must never raise — it runs on serving hot paths (the batcher
        worker thread, the shard serve loop).  Anything uncomparable
        (ragged action lists from mixed-output-shape groups, dtype
        clashes) is counted as shadow error, not thrown.
        """
        n = len(served_actions)
        try:
            served = np.asarray(served_actions)
            mirrored = np.asarray(shadow_actions)
            if mirrored.shape != served.shape or served.dtype == object:
                self.record_shadow_error(ref, shadow_ref, n)
                return
            if served.ndim > 1:
                agree = int(np.all(mirrored == served, axis=1).sum())
            else:
                agree = int((mirrored == served).sum())
        except Exception:  # noqa: BLE001 - hot path must survive
            self.record_shadow_error(ref, shadow_ref, n)
            return
        with self._lock:
            stats = self._shadow_stats(ref, shadow_ref)
            stats.requests += n
            stats.agreements += agree

    def record_shadow_error(
        self, ref: str, shadow_ref: str, n: int
    ) -> None:
        """A mirrored predict failed for ``n`` requests (primary traffic
        was unaffected — that is the point of shadowing)."""
        with self._lock:
            stats = self._shadow_stats(ref, shadow_ref)
            stats.requests += n
            stats.errors += n

    def _shadow_stats(self, ref: str, shadow_ref: str) -> _ShadowStats:
        stats = self._shadow.get(ref)
        if stats is None or stats.shadow_ref != shadow_ref:
            stats = self._shadow[ref] = _ShadowStats(shadow_ref)
        return stats

    def shadow_report(self) -> Dict[str, dict]:
        """Fidelity of each shadow against the traffic it mirrored."""
        with self._lock:
            return {
                ref: {
                    "shadow": stats.shadow_ref,
                    "requests": stats.requests,
                    "agreements": stats.agreements,
                    "errors": stats.errors,
                    "agreement_rate": (
                        stats.agreements / stats.requests
                        if stats.requests else 0.0
                    ),
                }
                for ref, stats in self._shadow.items()
            }

    def merge_shadow_report(self, report: Dict[str, dict]) -> None:
        """Fold another splitter's :meth:`shadow_report` into this one
        (cluster aggregation: workers shadow locally, the parent sums)."""
        with self._lock:
            for ref, row in report.items():
                stats = self._shadow_stats(ref, row["shadow"])
                stats.requests += int(row["requests"])
                stats.agreements += int(row["agreements"])
                stats.errors += int(row["errors"])


def mirror_shadow(
    splitter: TrafficSplitter,
    resolved: Any,
    ref: str,
    shadow_ref: str,
    rows: np.ndarray,
    served: Any,
) -> None:
    """Predict ``rows`` on the shadow version and record agreement.

    The one implementation both serving tiers share (the in-process
    batcher and the cluster workers), so shadow accounting semantics
    can never drift between them.  Never raises and never returns the
    shadow's answers: an unresolvable shadow, a raising
    ``predict_batch``, or a mis-shaped output all count as shadow
    errors while the primary traffic stays untouched.
    """
    n = len(rows)
    if resolved is None:
        splitter.record_shadow_error(ref, shadow_ref, n)
        return
    if rows.shape[1] != resolved.artifact.n_features:
        # A narrower shadow would happily predict on the wrong columns
        # and report a meaningless-but-healthy agreement rate.
        splitter.record_shadow_error(ref, shadow_ref, n)
        return
    try:
        out = np.asarray(resolved.artifact.predict_batch(rows))
    except Exception:  # noqa: BLE001 - shadow must not hurt primaries
        splitter.record_shadow_error(ref, shadow_ref, n)
        return
    if out.shape[:1] != (n,):
        splitter.record_shadow_error(ref, shadow_ref, n)
        return
    splitter.record_shadow(ref, shadow_ref, served, out)


def split_state(splits: Dict[str, TrafficSplit]) -> Dict[str, dict]:
    """Canonical plain-dict view of a split table.

    Both serving tiers format their split state through this one
    function, so a parent mirror and a worker replica (or two worker
    replicas) can be compared for byte-identical routing state — the
    check the cluster's replacement-replay tests make after a shard is
    respawned.
    """
    return {
        ref: {
            "canary": split.canary,
            "canary_fraction": split.canary_fraction,
            "shadow": split.shadow,
        }
        for ref, split in sorted(splits.items())
    }


def check_split_targets(
    registry: Any,
    ref: str,
    canary: Optional[str],
    shadow: Optional[str],
) -> None:
    """Install-time validation for a split's target references.

    Every target must resolve (a typo must not blackhole traffic) and
    must serve ``ref``'s feature space — a canary with a different
    ``n_features`` would fail its whole traffic fraction with
    ``bad_shape`` errors, and a mismatched shadow would be rejected on
    every mirror anyway.
    """
    primary = registry.resolve(ref)
    for label, target in (("canary", canary), ("shadow", shadow)):
        if target is None:
            continue
        resolved = registry.resolve(target)
        if resolved.artifact.n_features != primary.artifact.n_features:
            raise ValueError(
                f"{label} {target!r} expects "
                f"{resolved.artifact.n_features} features but {ref!r} "
                f"serves {primary.artifact.n_features}: splitting "
                f"between them would misroute every affected request"
            )


def splits_targeting(
    splits: Dict[str, TrafficSplit], registry: Any, name: str, version: int
) -> list:
    """Which active splits route traffic to ``name@version``.

    The retire guard: a version may look unreferenced to the registry
    (no pinned alias) while a split still sends it the canary fraction
    or mirrors shadows at it — retiring it would blackhole that
    traffic.  Returns human-readable ``"'<split ref>' via '<target>'"``
    strings for every hit.
    """
    hits = []
    for split_ref, split in splits.items():
        for target in (split.ref, split.canary, split.shadow):
            if target is None:
                continue
            try:
                resolved = registry.resolve(target)
            except KeyError:
                continue
            if (resolved.name, resolved.version) == (name, version):
                hits.append(f"{split_ref!r} via {target!r}")
    return sorted(set(hits))


def guard_retire_against_splits(
    splits: Dict[str, TrafficSplit], registry: Any, name: str, version: int
) -> None:
    """Raise ``ValueError`` when an active split routes to
    ``name@version`` — the shared retire refusal both serving tiers
    apply before touching their registries."""
    hits = splits_targeting(splits, registry, name, version)
    if hits:
        raise ValueError(
            f"cannot retire {name}@{version}: active traffic "
            f"split(s) {hits} still route to it"
        )


@dataclass(frozen=True)
class SplitPlan:
    """One flush's routing decision for one reference.

    Attributes:
        split: the configuration snapshot the plan was drawn under.
        canary_mask: boolean per request — True routes to the canary.
    """

    split: TrafficSplit
    canary_mask: np.ndarray

    @property
    def shadow(self) -> Optional[str]:
        return self.split.shadow
