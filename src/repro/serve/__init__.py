"""Production policy serving (§6.4's "same serving stack" made real).

The subsystem turns compiled policies into a served system:

* :class:`PolicyArtifact` — immutable servable bundle (flat tree arrays
  or MLP teacher) with a content hash;
* :class:`ModelRegistry` — versioned names + aliases, atomic publish,
  zero-downtime hot-swap;
* :class:`MicroBatcher` — coalesces concurrent single-state requests
  into one batched predict per flush;
* :class:`PolicyServer` — the futures-based front door with per-model
  throughput/latency/batch/error metrics;
* :class:`TrafficSplitter` — registry-layer canary routing and shadow
  mirroring for staged rollouts;
* :class:`AdaptiveDelay` — load-aware microbatch flush deadlines;
* :mod:`repro.serve.online` — the closed loop: :class:`TraceCapture`
  (sampled served (state, action) ring), :class:`Redistiller`
  (DAgger refits against the registered teacher), and
  :class:`AutoCanaryController` (gated canary ramp that promotes to
  the alias or calls ``rollback_publish`` — see ``docs/online.md``);
* :mod:`repro.serve.cluster` — the elastic sharded multi-process tier:
  shared-memory artifacts, load-aware routing, shard autoscaling, and
  self-healing control-log replay (imported lazily; it spawns
  processes — see ``docs/cluster.md``);
* :mod:`repro.serve.aio` — :class:`AsyncPolicyClient`, the asyncio
  front end over any server (imported lazily);
* :mod:`repro.serve.loadgen` — ABR / flows / routing trace-replay load
  generators plus threaded and asyncio closed-loop replay harnesses
  (imported lazily; it pulls in the simulators).
"""

from repro.serve.adaptive import AdaptiveDelay
from repro.serve.artifact import PolicyArtifact
from repro.serve.batcher import MicroBatcher, ServeResult
from repro.serve.online import (
    AutoCanaryController,
    Redistiller,
    RefitResult,
    TraceCapture,
)
from repro.serve.registry import ModelRegistry, ResolvedModel
from repro.serve.server import PolicyServer, ServeError, ServerMetrics
from repro.serve.splitter import TrafficSplit, TrafficSplitter

__all__ = [
    "PolicyArtifact",
    "MicroBatcher",
    "ServeResult",
    "ModelRegistry",
    "ResolvedModel",
    "PolicyServer",
    "ServeError",
    "ServerMetrics",
    "TrafficSplit",
    "TrafficSplitter",
    "AdaptiveDelay",
    "TraceCapture",
    "Redistiller",
    "RefitResult",
    "AutoCanaryController",
]
