"""Production policy serving (§6.4's "same serving stack" made real).

The subsystem turns compiled policies into a served system:

* :class:`PolicyArtifact` — immutable servable bundle (flat tree arrays
  or MLP teacher) with a content hash;
* :class:`ModelRegistry` — versioned names + aliases, atomic publish,
  zero-downtime hot-swap;
* :class:`MicroBatcher` — coalesces concurrent single-state requests
  into one batched predict per flush;
* :class:`PolicyServer` — the futures-based front door with per-model
  throughput/latency/batch/error metrics;
* :mod:`repro.serve.loadgen` — ABR / flows / routing trace-replay load
  generators (imported lazily; it pulls in the simulators).
"""

from repro.serve.artifact import PolicyArtifact
from repro.serve.batcher import MicroBatcher, ServeResult
from repro.serve.registry import ModelRegistry, ResolvedModel
from repro.serve.server import PolicyServer, ServeError, ServerMetrics

__all__ = [
    "PolicyArtifact",
    "MicroBatcher",
    "ServeResult",
    "ModelRegistry",
    "ResolvedModel",
    "PolicyServer",
    "ServeError",
    "ServerMetrics",
]
