"""Versioned model registry with atomic publish and zero-downtime swap.

The registry maps a model *name* to an ordered list of immutable
:class:`~repro.serve.artifact.PolicyArtifact` versions, plus *aliases*
(``abr/prod`` -> ``abr`` latest, or pinned to a version).  All mutation
and resolution happens under one lock, so

* ``publish`` is atomic — a resolver sees either the old latest or the
  new latest, never a half-registered artifact (artifacts themselves are
  frozen dataclasses built before publish, so there is nothing to tear);
* hot-swap is zero-downtime — the batcher resolves a reference once per
  flush, so requests already grouped into a batch finish on the version
  they resolved, while every later flush sees the new one.

References accepted by :meth:`resolve`:

* ``"abr"`` — latest version of model ``abr``;
* ``"abr@2"`` — pinned version 2;
* ``"abr/prod"`` — an alias, tracking latest or pinned at alias time.

Old versions can be retired via :meth:`retire` (long-running servers must not
leak every artifact ever published).  Retirement tombstones the slot —
version numbers never shift, so ``abr@2`` means the same bundle forever
— and refuses to remove the latest version or any version a pinned
alias still routes traffic to.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.serve.artifact import PolicyArtifact


def control_state_digest(state: Mapping[str, Any]) -> str:
    """Compact digest of a replica control state (fingerprint+splits).

    The cluster tier compares full :meth:`ModelRegistry.fingerprint`
    states byte for byte to prove replicas are in lockstep — cheap
    between co-located processes, but across hosts a monitor wants a
    fixed-size value it can compare without shipping every version
    hash over the wire.  This hashes the ``repr`` of the state with
    its top-level keys sorted (fingerprints already sort models and
    aliases internally, so equal states produce equal reprs), giving
    16 hex chars that two replicas agree on iff their control state is
    identical.  Workers include it in their ``describe`` reply;
    ``replica_states()`` adds the parent's so the comparison stays
    symmetric.
    """
    payload = repr({key: state[key] for key in sorted(state)})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class ResolvedModel:
    """One resolution outcome: the exact (name, version, artifact) triple.

    Responses carry this triple, which is what makes every served
    decision attributable to exactly one published artifact.
    """

    name: str
    version: int
    artifact: PolicyArtifact


class ModelRegistry:
    """Thread-safe name -> ordered versions store (versions are 1-based)."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        # A slot is None once its version has been retired (tombstone:
        # version numbers are stable identifiers and never shift).
        self._models: Dict[str, List[Optional[PolicyArtifact]]] = {}
        self._aliases: Dict[str, Tuple[str, Optional[int]]] = {}
        #: Optional :class:`repro.obs.events.EventJournal` the owning
        #: tier attaches; publish / rollback / alias transitions are
        #: journaled through it (best effort, never a failure source).
        self.journal: Optional[Any] = None

    def _journal(self, kind: str, severity: str = "info",
                 labels: Optional[Dict[str, str]] = None,
                 **fields: Any) -> None:
        if self.journal is None:
            return
        try:
            self.journal.emit(kind, severity=severity, labels=labels,
                              **fields)
        except Exception:  # noqa: BLE001 - journaling is best effort
            pass

    # -- mutation --------------------------------------------------------
    def publish(self, name: str, artifact: PolicyArtifact) -> int:
        """Register ``artifact`` as the next version of ``name``.

        Returns the new version number.  Existing versions are never
        mutated or removed, so an in-flight batch holding version ``k``
        keeps serving exactly what ``k`` was.
        """
        if not name or "@" in name:
            raise ValueError("model names must be non-empty and free of '@'")
        if not isinstance(artifact, PolicyArtifact):
            raise TypeError("only PolicyArtifact instances can be published")
        # Eager native-kernel compile, outside the lock (a compile is
        # ~100ms; resolves must not stall behind it).  Publish time is
        # the one moment compilation is allowed to cost anything — the
        # serve hot path only ever dlopens a cached kernel or falls
        # back to numpy.  Best-effort: compile_native never raises, and
        # the extra guard keeps publish alive even if it somehow does.
        if artifact.flat is not None:
            try:
                artifact.compile_native()
            except Exception:  # noqa: BLE001 - publish must not fail
                pass
        with self._lock:
            if name in self._aliases:
                raise ValueError(f"{name!r} is an alias, not a model name")
            versions = self._models.setdefault(name, [])
            versions.append(artifact)
            version = len(versions)
        self._journal("publish", labels={"model": name},
                      version=version, artifact_kind=artifact.kind)
        return version

    def alias(
        self, alias: str, target: str, version: Optional[int] = None
    ) -> None:
        """Point ``alias`` at ``target`` (latest when ``version`` is None)."""
        if not alias or "@" in alias:
            raise ValueError("aliases must be non-empty and free of '@'")
        with self._lock:
            if alias in self._models:
                raise ValueError(f"{alias!r} is already a model name")
            if target not in self._models:
                raise KeyError(f"unknown model {target!r}")
            if version is not None:
                self._get_artifact(target, version)  # in-range, not retired
            self._aliases[alias] = (target, version)
        self._journal("alias_move", labels={"alias": alias,
                                            "model": target},
                      version=version)

    def publish_tombstone(self, name: str) -> int:
        """Append an already-retired version slot (replica replay only).

        When a replacement shard replays the cluster's linearized
        control log, versions that were retired before it was born must
        still occupy their slots — version numbers are stable
        identifiers, and a replica that compacted them away would
        resolve ``name@k`` to the wrong artifact.  The artifact bytes
        themselves are gone (retire released the shared segment), so
        the slot is born as a tombstone.  Returns the version number,
        which the caller cross-checks against the log.
        """
        if not name or "@" in name:
            raise ValueError("model names must be non-empty and free of '@'")
        with self._lock:
            if name in self._aliases:
                raise ValueError(f"{name!r} is an alias, not a model name")
            versions = self._models.setdefault(name, [])
            versions.append(None)
            return len(versions)

    def rollback_publish(self, name: str, version: int) -> None:
        """Crash-consistency helper: remove a *just-published latest*.

        Exists for replicated registries (the cluster tier): when a
        publish broadcast fails partway, every replica that applied it
        — and the parent mirror — must drop the new version again or
        the replicas diverge.  This is NOT retire: it only accepts the
        current latest version, refuses if a pinned alias already
        points at it, and removes the slot entirely (the number will be
        reused by the retried publish, which is the point — replicas
        must agree on numbering).
        """
        with self._lock:
            versions = self._models.get(name)
            if not versions or len(versions) != version:
                raise ValueError(
                    f"rollback_publish only removes the current latest "
                    f"of {name!r}, not version {version}"
                )
            holders = [
                alias for alias, (target, pinned) in self._aliases.items()
                if target == name and pinned == version
            ]
            if holders:
                raise ValueError(
                    f"cannot roll back {name}@{version}: alias(es) "
                    f"{sorted(holders)} already pin it"
                )
            versions.pop()
            if not versions or all(v is None for v in versions):
                # Nothing servable remains (first publish rolled back,
                # or only tombstones left) — drop the model entirely so
                # names()/latest_version() never advertise a model that
                # every bare-name reference would fail to resolve.
                # Aliases can only target it untracked (pins at retired
                # versions are impossible), so they go too.
                del self._models[name]
                for alias in [
                    a for a, (target, _v) in self._aliases.items()
                    if target == name
                ]:
                    del self._aliases[alias]
        self._journal("rollback", severity="error",
                      labels={"model": name}, version=version)

    def retire(self, name: str, version: int) -> None:
        """Delete one old version so long-running servers don't leak
        artifacts.

        Refuses (``ValueError``) to retire the *latest* version — that
        is what bare-name and latest-tracking-alias references serve —
        or a version a pinned alias still points at.  The slot becomes a
        tombstone: later versions keep their numbers, and resolving the
        retired reference raises ``KeyError``.
        """
        with self._lock:
            if name in self._aliases:
                raise ValueError(f"{name!r} is an alias, not a model name")
            if name not in self._models:
                raise KeyError(f"unknown model {name!r}")
            self._get_artifact(name, version)  # in-range, not yet retired
            versions = self._models[name]
            if version == self._effective_latest(versions):
                raise ValueError(
                    f"cannot retire {name}@{version}: it is the latest "
                    f"live version (publish a newer one first)"
                )
            holders = sorted(
                alias for alias, (target, pinned) in self._aliases.items()
                if target == name and pinned == version
            )
            if holders:
                raise ValueError(
                    f"cannot retire {name}@{version}: pinned alias(es) "
                    f"{holders} still route traffic to it"
                )
            versions[version - 1] = None

    # -- resolution ------------------------------------------------------
    def resolve(self, ref: str) -> ResolvedModel:
        """Resolve a reference to an exact (name, version, artifact)."""
        with self._lock:
            name, version = ref, None
            if name in self._aliases:
                name, version = self._aliases[name]
            elif "@" in name:
                name, _, suffix = name.partition("@")
                try:
                    version = int(suffix)
                except ValueError:
                    raise KeyError(f"bad version in reference {ref!r}")
            versions = self._models.get(name)
            if versions is None:
                raise KeyError(f"unknown model {ref!r}")
            if version is None:
                version = self._effective_latest(versions)
            return ResolvedModel(
                name, version, self._get_artifact(name, version)
            )

    def resolve_many(
        self, refs
    ) -> Dict[str, Optional[ResolvedModel]]:
        """Resolve several references under one lock acquisition.

        Unresolvable references map to None.  Because all resolutions
        share one critical section, a concurrent publish cannot land
        between them — the batcher uses this so one flush serves one
        version per model, even when clients mix aliases and canonical
        names.
        """
        with self._lock:
            out: Dict[str, Optional[ResolvedModel]] = {}
            for ref in refs:
                try:
                    out[ref] = self.resolve(ref)
                except KeyError:
                    out[ref] = None
            return out

    @staticmethod
    def _effective_latest(versions: List[Optional[PolicyArtifact]]) -> int:
        """The version bare-name traffic serves: the highest live slot
        (trailing tombstones from rolled-back publishes are skipped).
        The single definition of "latest" — resolve, retire's guard,
        and latest_version must never disagree on it."""
        version = len(versions)
        while version > 1 and versions[version - 1] is None:
            version -= 1
        return version

    def _get_artifact(self, name: str, version: int) -> PolicyArtifact:
        """Version bounds + tombstone check (caller holds the lock)."""
        versions = self._models[name]
        count = len(versions)
        if not 1 <= version <= count:
            raise KeyError(
                f"model {name!r} has versions 1..{count}, not {version}"
            )
        artifact = versions[version - 1]
        if artifact is None:
            raise KeyError(f"version {name}@{version} has been retired")
        return artifact

    # -- inspection ------------------------------------------------------
    def names(self) -> List[str]:
        """Sorted model names with at least one version slot (live or
        tombstoned)."""
        with self._lock:
            return sorted(self._models)

    def aliases(self) -> Dict[str, Tuple[str, Optional[int]]]:
        """Alias table snapshot: ``alias -> (target, pinned_version)``
        (``pinned_version`` is None for latest-tracking aliases)."""
        with self._lock:
            return dict(self._aliases)

    def fingerprint(self) -> Dict[str, Any]:
        """Replica-comparison view of the full registry state.

        Maps every model to its ordered version slots — each the
        artifact's ``content_hash`` or None for a tombstone — plus the
        alias table.  Two replicas kept in lockstep must produce
        *identical* fingerprints (the cluster tier's replacement-replay
        tests compare them byte for byte via ``repr``).
        """
        with self._lock:
            return {
                "models": {
                    name: [
                        art.content_hash if art is not None else None
                        for art in versions
                    ]
                    for name, versions in sorted(self._models.items())
                },
                "aliases": {
                    alias: tuple(target)
                    for alias, target in sorted(self._aliases.items())
                },
            }

    def latest_version(self, name: str) -> int:
        """Highest *live* version number (what a bare-name reference
        serves) — trailing tombstones are skipped, matching
        :meth:`resolve`'s latest semantics."""
        with self._lock:
            if name not in self._models:
                raise KeyError(f"unknown model {name!r}")
            return self._effective_latest(self._models[name])

    def live_versions(self, name: str) -> List[int]:
        """Version numbers of ``name`` that have not been retired."""
        with self._lock:
            if name not in self._models:
                raise KeyError(f"unknown model {name!r}")
            return [
                i + 1 for i, art in enumerate(self._models[name])
                if art is not None
            ]

    def __contains__(self, ref: str) -> bool:
        """Whether ``ref`` (name, ``name@k``, or alias) resolves to a
        live artifact."""
        try:
            self.resolve(ref)
            return True
        except KeyError:
            return False


def registry_backend_report(registry: ModelRegistry) -> Dict[str, Any]:
    """Per-model backend view over every live version in ``registry``.

    Maps model name -> summed native/numpy/fallback row counters plus a
    per-version breakdown (stats + kernel provenance).  Models whose
    artifacts carry no flat arrays (teachers, plain functions) report
    ``backend: "numpy-only"``.  Shared by :meth:`PolicyServer
    <repro.serve.server.PolicyServer>` and the cluster workers'
    ``backend_report`` op, so the single-process and sharded views
    aggregate identically.
    """
    report: Dict[str, Any] = {}
    for name in registry.names():
        try:
            versions = registry.live_versions(name)
        except KeyError:  # pragma: no cover - names() raced a delete
            continue
        entry: Dict[str, Any] = {
            "native_rows": 0, "numpy_rows": 0, "fallback_rows": 0,
            "versions": {},
        }
        tree_backed = False
        kernel_ready = False
        kernel_disabled = False
        for version in versions:
            try:
                artifact = registry.resolve(f"{name}@{version}").artifact
            except KeyError:  # retired between the two reads
                continue
            stats = artifact.backend_stats()
            if stats is None:
                entry["versions"][str(version)] = None
                continue
            tree_backed = True
            kernel = stats.get("kernel") or {}
            kernel_ready = kernel_ready or kernel.get("status") == "ready"
            kernel_disabled = (
                kernel_disabled or kernel.get("status") == "disabled"
            )
            entry["versions"][str(version)] = stats
            for key in ("native_rows", "numpy_rows", "fallback_rows"):
                entry[key] += int(stats.get(key, 0))
        # The label answers "what serves this model's traffic":
        # numpy-only (no flat arrays to compile), native (a compiled
        # kernel is attached), numpy (the operator pinned
        # REPRO_TREE_BACKEND=numpy at publish — by choice, not
        # degradation), or numpy-fallback (tree-backed, wanted a
        # kernel, could not get one — the row counters say how much
        # traffic that cost).
        if not tree_backed:
            entry["backend"] = "numpy-only"
        elif kernel_ready:
            entry["backend"] = "native"
        elif kernel_disabled:
            entry["backend"] = "numpy"
        else:
            entry["backend"] = "numpy-fallback"
        report[name] = entry
    return report
