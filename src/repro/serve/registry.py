"""Versioned model registry with atomic publish and zero-downtime swap.

The registry maps a model *name* to an ordered list of immutable
:class:`~repro.serve.artifact.PolicyArtifact` versions, plus *aliases*
(``abr/prod`` -> ``abr`` latest, or pinned to a version).  All mutation
and resolution happens under one lock, so

* ``publish`` is atomic — a resolver sees either the old latest or the
  new latest, never a half-registered artifact (artifacts themselves are
  frozen dataclasses built before publish, so there is nothing to tear);
* hot-swap is zero-downtime — the batcher resolves a reference once per
  flush, so requests already grouped into a batch finish on the version
  they resolved, while every later flush sees the new one.

References accepted by :meth:`resolve`:

* ``"abr"`` — latest version of model ``abr``;
* ``"abr@2"`` — pinned version 2;
* ``"abr/prod"`` — an alias, tracking latest or pinned at alias time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.serve.artifact import PolicyArtifact


@dataclass(frozen=True)
class ResolvedModel:
    """One resolution outcome: the exact (name, version, artifact) triple.

    Responses carry this triple, which is what makes every served
    decision attributable to exactly one published artifact.
    """

    name: str
    version: int
    artifact: PolicyArtifact


class ModelRegistry:
    """Thread-safe name -> ordered versions store (versions are 1-based)."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._models: Dict[str, List[PolicyArtifact]] = {}
        self._aliases: Dict[str, Tuple[str, Optional[int]]] = {}

    # -- mutation --------------------------------------------------------
    def publish(self, name: str, artifact: PolicyArtifact) -> int:
        """Register ``artifact`` as the next version of ``name``.

        Returns the new version number.  Existing versions are never
        mutated or removed, so an in-flight batch holding version ``k``
        keeps serving exactly what ``k`` was.
        """
        if not name or "@" in name:
            raise ValueError("model names must be non-empty and free of '@'")
        if not isinstance(artifact, PolicyArtifact):
            raise TypeError("only PolicyArtifact instances can be published")
        with self._lock:
            if name in self._aliases:
                raise ValueError(f"{name!r} is an alias, not a model name")
            versions = self._models.setdefault(name, [])
            versions.append(artifact)
            return len(versions)

    def alias(
        self, alias: str, target: str, version: Optional[int] = None
    ) -> None:
        """Point ``alias`` at ``target`` (latest when ``version`` is None)."""
        if not alias or "@" in alias:
            raise ValueError("aliases must be non-empty and free of '@'")
        with self._lock:
            if alias in self._models:
                raise ValueError(f"{alias!r} is already a model name")
            if target not in self._models:
                raise KeyError(f"unknown model {target!r}")
            if version is not None:
                self._check_version(target, version)
            self._aliases[alias] = (target, version)

    # -- resolution ------------------------------------------------------
    def resolve(self, ref: str) -> ResolvedModel:
        """Resolve a reference to an exact (name, version, artifact)."""
        with self._lock:
            name, version = ref, None
            if name in self._aliases:
                name, version = self._aliases[name]
            elif "@" in name:
                name, _, suffix = name.partition("@")
                try:
                    version = int(suffix)
                except ValueError:
                    raise KeyError(f"bad version in reference {ref!r}")
            versions = self._models.get(name)
            if versions is None:
                raise KeyError(f"unknown model {ref!r}")
            if version is None:
                version = len(versions)
            self._check_version(name, version)
            return ResolvedModel(name, version, versions[version - 1])

    def resolve_many(
        self, refs
    ) -> Dict[str, Optional[ResolvedModel]]:
        """Resolve several references under one lock acquisition.

        Unresolvable references map to None.  Because all resolutions
        share one critical section, a concurrent publish cannot land
        between them — the batcher uses this so one flush serves one
        version per model, even when clients mix aliases and canonical
        names.
        """
        with self._lock:
            out: Dict[str, Optional[ResolvedModel]] = {}
            for ref in refs:
                try:
                    out[ref] = self.resolve(ref)
                except KeyError:
                    out[ref] = None
            return out

    def _check_version(self, name: str, version: int) -> None:
        count = len(self._models[name])
        if not 1 <= version <= count:
            raise KeyError(
                f"model {name!r} has versions 1..{count}, not {version}"
            )

    # -- inspection ------------------------------------------------------
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._models)

    def aliases(self) -> Dict[str, Tuple[str, Optional[int]]]:
        with self._lock:
            return dict(self._aliases)

    def latest_version(self, name: str) -> int:
        with self._lock:
            if name not in self._models:
                raise KeyError(f"unknown model {name!r}")
            return len(self._models[name])

    def __contains__(self, ref: str) -> bool:
        try:
            self.resolve(ref)
            return True
        except KeyError:
            return False
