"""Load-aware microbatch flush deadlines.

A fixed ``max_delay_s`` is the wrong constant at both ends of the load
curve: under light traffic every request eats the full coalescing wait
for nothing (no batchmates are coming), and under heavy traffic the
constant is irrelevant (the backlog fills ``max_batch`` instantly).  The
interesting regime is in between, where a *longer* wait buys genuinely
bigger batches.

:class:`AdaptiveDelay` closes the loop with the only signal the batcher
already has: how full each flush was (batch size + queue backlog at
gather time, relative to ``max_batch``).  An EWMA of that fill fraction
scales the deadline between ``floor_s`` (drain immediately when idle)
and ``max_delay_s`` (deep coalescing under sustained load):

    delay = floor + (cap - floor) * ewma_fill

The controller is read/written only by the batcher's worker thread, so
it needs no lock; ``snapshot()`` reads are racy-but-atomic floats, fine
for monitoring.
"""

from __future__ import annotations


class AdaptiveDelay:
    """EWMA fill-fraction controller for the flush deadline.

    Args:
        max_delay_s: ceiling — the deadline under sustained load.
        floor_s: floor — the deadline when the server idles.
        alpha: EWMA smoothing weight for each new observation.
        initial_fill: starting fill estimate (0 starts snappy, 1 starts
            coalescing).
    """

    def __init__(
        self,
        max_delay_s: float = 2e-3,
        floor_s: float = 0.0,
        alpha: float = 0.2,
        initial_fill: float = 0.0,
    ) -> None:
        if max_delay_s < 0 or floor_s < 0:
            raise ValueError("delays must be non-negative")
        if floor_s > max_delay_s:
            raise ValueError("floor_s must not exceed max_delay_s")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 <= initial_fill <= 1.0:
            raise ValueError("initial_fill must be in [0, 1]")
        self.max_delay_s = float(max_delay_s)
        self.floor_s = float(floor_s)
        self.alpha = float(alpha)
        self._fill = float(initial_fill)
        self._observations = 0

    def observe(
        self, batch_size: int, queue_depth: int, max_batch: int
    ) -> None:
        """Fold one flush into the fill estimate.

        ``batch_size`` is how many requests the gather produced and
        ``queue_depth`` how many were still waiting behind it — together
        they measure offered load at flush time.
        """
        if max_batch < 1:
            return
        fill = min(1.0, (batch_size + queue_depth) / max_batch)
        self._fill += self.alpha * (fill - self._fill)
        self._observations += 1

    @property
    def fill(self) -> float:
        """The EWMA fill estimate in [0, 1] — how saturated recent
        flushes ran relative to ``max_batch``.  This is the cluster
        autoscaler's primary scale-up signal; note it only updates
        when flushes happen, so it goes stale on an idle server
        (idleness detection needs its own clock).
        """
        return self._fill

    def current(self) -> float:
        """The deadline the next gather should use."""
        return self.floor_s + (self.max_delay_s - self.floor_s) * self._fill

    def snapshot(self) -> dict:
        """Monitoring view: current fill estimate and deadline."""
        return {
            "fill": self._fill,
            "delay_s": self.current(),
            "max_delay_s": self.max_delay_s,
            "floor_s": self.floor_s,
            "observations": self._observations,
        }


def batching_state(delay, fixed_delay_s: float) -> dict:
    """The common ``batching_state()`` payload both serving tiers
    expose: the adaptive snapshot when a controller is wired in, the
    fixed deadline otherwise."""
    if delay is None:
        return {"adaptive": False, "delay_s": fixed_delay_s}
    return {"adaptive": True, **delay.snapshot()}
