"""The policy-serving front door: registry + microbatcher + metrics.

:class:`PolicyServer` is what §6.4's "same serving stack" looks like in
this repo: experiments publish any :class:`PolicyArtifact` (distilled
tree or DNN teacher) under a name, drive decision traffic through
``submit``/``submit_many``, and read per-model throughput and tail
latency back out of ``metrics()`` — the measured substrate for the
fig16/fig17 latency story, replacing modeled ``DeviceProfile`` constants
with observed percentiles.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from concurrent.futures import Future
from typing import Any, Dict, List, Optional

import numpy as np

from repro.obs.events import EventJournal
from repro.obs.metrics import LogHistogram, MetricsHub, render_text
from repro.obs.postmortem import FlightRecorder
from repro.obs.trace import Tracer
from repro.serve.adaptive import AdaptiveDelay, batching_state
from repro.serve.artifact import PolicyArtifact
from repro.serve.batcher import MicroBatcher, ServeResult
from repro.serve.registry import ModelRegistry
from repro.serve.splitter import (
    TrafficSplitter,
    check_split_targets,
    guard_retire_against_splits,
    split_state,
)
from repro.utils.rng import SeedLike


class ServeError(RuntimeError):
    """Raised by the synchronous ``predict`` path on a failed request."""


class _ModelStats:
    """Accumulators for one model (written only by the batcher thread)."""

    __slots__ = (
        "requests", "errors", "error_kinds", "hist", "batch_sizes",
        "versions", "busy_s", "last_ts", "recent", "recent_errors",
    )

    #: Size of the sliding window behind :meth:`ServerMetrics.p95_ms`.
    RECENT_WINDOW = 4096

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.error_kinds: Counter = Counter()
        #: Streaming log-bucketed histogram of success latencies —
        #: constant memory, never stops absorbing samples, so snapshot
        #: percentiles track the whole lifetime of a long-running
        #: server instead of freezing on its first N requests (the old
        #: capped-list behaviour).
        self.hist = LogHistogram()
        self.batch_sizes: Counter = Counter()
        self.versions: Counter = Counter()
        #: Union of request-in-flight intervals — the time the model was
        #: actually serving, which is what throughput divides by.
        self.busy_s = 0.0
        self.last_ts: Optional[float] = None
        #: True sliding window of the latest successes, as
        #: ``(perf_counter_ts, latency_s)`` pairs.  The histogram
        #: estimates lifetime percentiles; SLO probes
        #: (:meth:`ServerMetrics.p95_ms`) need *exact* recent
        #: percentiles over a bounded window, so they keep their own
        #: ring.  Timestamps let the probe window by wall time as well
        #: as by count.
        self.recent: deque = deque(maxlen=self.RECENT_WINDOW)
        #: Sliding window of recent *error* timestamps — ``recent``
        #: holds only successes (rejection latencies must not deflate
        #: percentiles), so the windowed error-ratio probe keeps its
        #: own ring of when failures happened.
        self.recent_errors: deque = deque(maxlen=self.RECENT_WINDOW)


class ServerMetrics:
    """Per-model serving metrics: throughput, latency percentiles,
    batch-size histogram, error counts.

    Writes come from the single batcher thread; ``snapshot`` may be
    called from any thread, so every touch happens under one lock (the
    per-record cost is a few dict/list operations).

    Snapshot percentiles come from a per-model streaming log-bucketed
    histogram (:class:`repro.obs.metrics.LogHistogram`): constant
    memory, unbounded sample count, so they never freeze the way the
    old capped retention list did.  :meth:`p95_ms` SLO probes stay
    *exact* over the bounded ``recent`` window.

    Args:
        max_latency_samples: retained for signature compatibility with
            pre-histogram callers; percentiles are no longer subject to
            a retention cap.
        hub: optional :class:`repro.obs.metrics.MetricsHub` to mirror
            requests/errors/latencies into (labeled Prometheus series);
            may also be attached later via :meth:`bind_hub`.
    """

    def __init__(self, max_latency_samples: int = 200_000,
                 hub: Any = None) -> None:
        self._lock = threading.Lock()
        self._models: Dict[str, _ModelStats] = {}
        self.max_latency_samples = max_latency_samples
        self._h_requests = None
        self._h_errors = None
        self._h_latency = None
        if hub is not None:
            self.bind_hub(hub)

    def bind_hub(self, hub: Any) -> None:
        """Mirror every subsequent record into ``hub`` as labeled
        series (``repro_server_requests_total{model}``,
        ``repro_server_errors_total{model,kind}``,
        ``repro_server_latency_seconds{model}``)."""
        self._h_requests = hub.counter(
            "repro_server_requests_total",
            "Requests served (successes and errors), per model",
        )
        self._h_errors = hub.counter(
            "repro_server_errors_total",
            "Failed requests per model and error kind",
        )
        self._h_latency = hub.histogram(
            "repro_server_latency_seconds",
            "Server-side success latency (enqueue to completion)",
        )

    def _stats(self, model: str) -> _ModelStats:
        stats = self._models.get(model)
        if stats is None:
            stats = self._models[model] = _ModelStats()
        return stats

    @staticmethod
    def _add_busy(stats: _ModelStats, start: float, now: float) -> None:
        """Merge one service interval into the busy-time union.

        Records arrive in completion order from the single batcher
        thread, so clipping ``start`` to the previous completion merges
        overlapping intervals on the fly; idle gaps between bursts
        contribute nothing.  Throughput = requests / busy time therefore
        measures the server while it serves, not the workload's pauses.
        """
        if stats.last_ts is not None:
            start = max(start, stats.last_ts)
        stats.busy_s += max(now - start, 0.0)
        stats.last_ts = now

    def record(
        self,
        model: str,
        version: int,
        latency_s: float,
        error: Optional[str] = None,
    ) -> None:
        now = time.perf_counter()
        start = now - latency_s  # when the request arrived
        with self._lock:
            stats = self._stats(model)
            stats.requests += 1
            self._add_busy(stats, start, now)
            if error is not None:
                # Rejection latencies stay out of the percentile pool:
                # they measure validation, not decisions, and a stream
                # of malformed requests must not deflate the reported
                # serving percentiles.
                stats.errors += 1
                stats.error_kinds[error] += 1
                stats.recent_errors.append(now)
            else:
                stats.versions[version] += 1
                stats.recent.append((now, latency_s))
                stats.hist.observe(latency_s)
        if self._h_requests is not None:
            self._h_requests.labels(model=model).inc()
            if error is not None:
                self._h_errors.labels(model=model, kind=error).inc()
            else:
                self._h_latency.labels(model=model).observe(latency_s)

    def record_group(
        self, model: str, version: int, latencies: List[float]
    ) -> None:
        """Record one flush group's successes (including its batch size)
        under a single lock acquisition — the batcher's hot path."""
        if not latencies:
            return
        now = time.perf_counter()
        start = now - max(latencies)  # earliest enqueue in the group
        with self._lock:
            stats = self._stats(model)
            stats.requests += len(latencies)
            self._add_busy(stats, start, now)
            stats.versions[version] += len(latencies)
            stats.batch_sizes[len(latencies)] += 1
            stats.recent.extend((now, lat) for lat in latencies)
            stats.hist.observe_many(latencies)
        if self._h_requests is not None:
            self._h_requests.labels(model=model).inc(len(latencies))
            self._h_latency.labels(model=model).observe_many(latencies)

    def total_requests(self) -> int:
        """Total recorded requests across all models — a cheap
        monotonic counter (no percentile math) for liveness/idleness
        probes like the cluster autoscaler's idle-tick clock."""
        with self._lock:
            return sum(stats.requests for stats in self._models.values())

    def p95_ms(self, window_s: Optional[float] = None) -> float:
        """Worst per-model p95 latency over each model's sliding window
        of recent successes, in milliseconds (0.0 before any success
        is recorded).

        The SLO reading the autoscaler compares against ``slo_p95_ms``.
        It reads the dedicated recent-window ring, not the lifetime
        histogram, because an SLO probe needs *exact* percentiles over
        *recent* traffic: the histogram covers the whole lifetime (a
        morning's latency spike would haunt it all day) and its
        percentiles are bucket-interpolated estimates.

        ``window_s`` additionally restricts the sweep to samples
        recorded in the last that-many seconds (None keeps the full
        count-bounded ring).  A time window makes the SLO signal
        forget a cold-start spike once it actually ages out, instead
        of holding it until 4096 newer samples dilute it — but an
        *empty* window reads 0.0, so callers that must distinguish
        "recently bad" from "currently idle" still pair this with a
        liveness signal (the autoscaler's idle-tick clock).
        """
        cutoff = None
        if window_s is not None:
            cutoff = time.perf_counter() - window_s
        with self._lock:
            samples = []
            for stats in self._models.values():
                if not stats.recent:
                    continue
                if cutoff is None:
                    samples.append([lat for _ts, lat in stats.recent])
                else:
                    recent = [lat for ts, lat in stats.recent
                              if ts >= cutoff]
                    if recent:
                        samples.append(recent)
        worst = 0.0
        for latencies in samples:
            worst = max(
                worst, float(np.percentile(np.asarray(latencies), 95))
            )
        return worst * 1e3

    def error_ratio(self, window_s: Optional[float] = None) -> float:
        """Errors / all requests over the recent sliding windows,
        across every model, in ``[0, 1]``.

        The burn-rate companion to :meth:`p95_ms`: alert rules read
        the ratio directly instead of re-deriving it from raw
        counters.  ``window_s`` restricts both rings to requests
        recorded in the last that-many seconds (None keeps the full
        count-bounded rings).  An *empty* window reads 0.0 — "no
        traffic" is not "failing"; a window that saw only errors reads
        1.0.
        """
        cutoff = None
        if window_s is not None:
            cutoff = time.perf_counter() - window_s
        with self._lock:
            errors = successes = 0
            for stats in self._models.values():
                if cutoff is None:
                    errors += len(stats.recent_errors)
                    successes += len(stats.recent)
                else:
                    errors += sum(
                        1 for ts in stats.recent_errors if ts >= cutoff
                    )
                    successes += sum(
                        1 for ts, _lat in stats.recent if ts >= cutoff
                    )
        total = errors + successes
        return errors / total if total else 0.0

    def snapshot(self) -> Dict[str, dict]:
        """Point-in-time metrics per model (plain dicts, JSON-friendly).

        The lock is held only while *copying* the accumulators; the
        histogram quantile math runs after release, so a monitoring
        read never stalls the batcher's hot path (which would inflate
        the very tail it is measuring).
        """
        with self._lock:
            copied = [
                (
                    name, stats.requests, stats.errors,
                    dict(stats.error_kinds), stats.hist.copy(),
                    dict(stats.batch_sizes), dict(stats.versions),
                    stats.busy_s,
                )
                for name, stats in self._models.items()
            ]
        out: Dict[str, dict] = {}
        for (name, requests, errors, error_kinds, hist, batch_sizes,
             versions, busy_s) in copied:
            if hist.total:
                latency_ms = {
                    "mean": float(hist.sum / hist.total * 1e3),
                    "p50": hist.quantile(0.50) * 1e3,
                    "p95": hist.quantile(0.95) * 1e3,
                    "p99": hist.quantile(0.99) * 1e3,
                }
            else:
                latency_ms = {"mean": 0.0, "p50": 0.0, "p95": 0.0,
                              "p99": 0.0}
            out[name] = {
                "requests": requests,
                "errors": errors,
                "error_kinds": error_kinds,
                "throughput_rps": requests / busy_s if busy_s > 0 else 0.0,
                "latency_ms": latency_ms,
                "batch_sizes": {
                    int(k): int(v) for k, v in sorted(batch_sizes.items())
                },
                "versions": {
                    int(k): int(v) for k, v in sorted(versions.items())
                },
            }
        return out


def register_serving_collectors(
    hub: MetricsHub,
    batcher: Any = None,
    delay: Optional[AdaptiveDelay] = None,
    splitter: Optional[TrafficSplitter] = None,
) -> None:
    """Register pull-style gauges shared by both serving tiers.

    Collectors run at every hub render/snapshot and read the live
    objects: batcher queue depth, adaptive-delay posture, process-wide
    native-kernel counters, and splitter shadow agreement.  Monotonic
    native counters are *assigned* (not ``inc``-ed) because the
    upstream values in :func:`repro.core.tree.native.native_stats` are
    themselves cumulative.
    """
    g_queue = hub.gauge(
        "repro_batcher_queue_depth",
        "Requests accepted but not yet gathered into a flush",
    ).labels() if batcher is not None else None
    g_fill = hub.gauge(
        "repro_batcher_adaptive_fill",
        "Adaptive-delay EWMA flush-fill estimate in [0, 1]",
    ).labels() if delay is not None else None
    g_delay = hub.gauge(
        "repro_batcher_adaptive_delay_seconds",
        "Deadline the next gather will use",
    ).labels() if delay is not None else None
    c_native = hub.counter(
        "repro_native_events_total",
        "Process-wide native kernel compile/cache/serve counters",
    )
    g_shadow_rate = hub.gauge(
        "repro_shadow_agreement_ratio",
        "Shadow fidelity: agreements / mirrored requests, per split ref",
    ) if splitter is not None else None
    c_shadow = hub.counter(
        "repro_shadow_requests_total",
        "Requests mirrored to a shadow version, per split ref",
    ) if splitter is not None else None

    def collect() -> None:
        from repro.core.tree import native

        if g_queue is not None:
            g_queue.set(batcher.queue_depth())
        if delay is not None:
            g_fill.set(delay.fill)
            g_delay.set(delay.current())
        for event, value in native.native_stats().items():
            if isinstance(value, (int, float)):
                c_native.labels(event=event).value = float(value)
        if splitter is not None:
            for ref, row in splitter.shadow_report().items():
                g_shadow_rate.labels(ref=ref).set(row["agreement_rate"])
                c_shadow.labels(ref=ref).value = float(row["requests"])

    hub.register_collector(collect)


class PolicyServer:
    """Threaded serving front door with futures-based submission.

    Args:
        registry: shared registry (a fresh one is created by default).
        max_batch / max_delay_s: microbatching knobs (see
            :class:`~repro.serve.batcher.MicroBatcher`).
        max_latency_samples: metrics retention cap.
        adaptive_delay: replace the fixed flush deadline with a
            load-aware :class:`AdaptiveDelay` controller capped at
            ``max_delay_s``.
        split_seed: RNG seed for the server's traffic splitter (canary
            assignment); None draws fresh entropy.
        trace_sample: fraction of requests to trace (0 disables
            tracing; traced requests decompose into per-stage spans,
            see :mod:`repro.obs.trace`).
        exporter_port: when not None, start the observability HTTP
            exporter (``/metrics``, ``/traces``, ``/events``,
            ``/healthz``) on this port at construction (0 = ephemeral;
            read it back from ``server.exporter.port``).
        postmortem_dir: directory for black-box incident bundles
            (``None`` honours ``$REPRO_POSTMORTEM_DIR``; unset means
            capture is disabled — see
            :class:`repro.obs.postmortem.FlightRecorder`).

    Usage::

        with PolicyServer() as server:
            server.publish("abr", PolicyArtifact.from_tree(tree))
            result = server.submit("abr", state).result()
            stats = server.metrics()["abr"]
    """

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        max_batch: int = 64,
        max_delay_s: float = 2e-3,
        max_latency_samples: int = 200_000,
        adaptive_delay: bool = False,
        split_seed: SeedLike = None,
        trace_sample: float = 0.0,
        exporter_port: Optional[int] = None,
        postmortem_dir: Optional[str] = None,
    ) -> None:
        self.registry = registry if registry is not None else ModelRegistry()
        self.hub = MetricsHub()
        self.tracer = Tracer(sample_rate=trace_sample)
        #: Structured flight log (see :mod:`repro.obs.events`): every
        #: publish/alias/split/fallback transition lands here, readable
        #: via :meth:`events` and the exporter's ``/events`` endpoint.
        self.journal = EventJournal(hub=self.hub)
        self._metrics = ServerMetrics(max_latency_samples, hub=self.hub)
        self.splitter = TrafficSplitter(seed=split_seed)
        # Control-plane emitters write through this server's journal.
        # (A registry shared across servers journals into whichever
        # server attached last — acceptable: the journal is a
        # diagnostic stream, not a consistency surface.)
        self.registry.journal = self.journal
        self.splitter.journal = self.journal
        from repro.core.tree import native as _native

        _native.set_event_hook(self.journal.emit)
        # Serializes split reconfiguration against retire: the retire
        # guard is check-then-act over the split table, so the two must
        # not interleave.
        self._control_lock = threading.Lock()
        self.delay = (
            AdaptiveDelay(max_delay_s=max_delay_s) if adaptive_delay
            else None
        )
        self._batcher = MicroBatcher(
            self.registry,
            metrics=self._metrics,
            max_batch=max_batch,
            max_delay_s=max_delay_s,
            delay=self.delay,
            splitter=self.splitter,
            tracer=self.tracer,
            hub=self.hub,
        ).start()
        register_serving_collectors(
            self.hub, batcher=self._batcher, delay=self.delay,
            splitter=self.splitter,
        )
        #: Black-box capture (disabled unless a directory is
        #: configured); the health monitor triggers it on
        #: page-severity alerts.
        self.recorder = FlightRecorder(
            directory=postmortem_dir,
            journal=self.journal,
            metrics_fn=self.render_metrics,
            tracer=self.tracer,
            state_fn=self._blackbox_state,
        )
        self.health = None
        self.online = None
        self.exporter = None
        self._closed = False
        if exporter_port is not None:
            self.start_exporter(port=exporter_port)

    # -- registry passthrough --------------------------------------------
    def publish(
        self,
        name: str,
        artifact: PolicyArtifact,
        alias: Optional[str] = None,
    ) -> int:
        """Publish a new version (and optionally alias it); hot-swaps
        live traffic at the next batch flush."""
        version = self.registry.publish(name, artifact)
        if alias is not None:
            self.registry.alias(alias, name)
        return version

    def alias(
        self, alias: str, target: str, version: Optional[int] = None
    ) -> None:
        """Install (or repoint) an alias (see
        :meth:`ModelRegistry.alias`) — tracking ``target``'s latest
        version, or pinned when ``version`` is given.  Same surface as
        the cluster tier's :meth:`ShardedPolicyService.alias`."""
        self.registry.alias(alias, target, version)

    def retire(self, name: str, version: int) -> None:
        """Drop one old version (see :meth:`ModelRegistry.retire`).

        Also refuses while an active traffic split still routes canary
        or shadow traffic to that version — the registry cannot see
        splits, but retiring under one would blackhole live traffic.
        """
        with self._control_lock:
            guard_retire_against_splits(
                self.splitter.splits(), self.registry, name, version
            )
            self.registry.retire(name, version)

    def rollback_publish(self, name: str, version: int) -> None:
        """Undo the most recent publish of ``name`` (see
        :meth:`ModelRegistry.rollback_publish`) — the auto-canary
        controller's escape hatch.  Refuses while an active split still
        routes traffic at that version, same guard as :meth:`retire`.
        """
        with self._control_lock:
            guard_retire_against_splits(
                self.splitter.splits(), self.registry, name, version
            )
            self.registry.rollback_publish(name, version)

    # -- traffic splitting -----------------------------------------------
    def set_split(
        self,
        ref: str,
        canary: Optional[str] = None,
        canary_fraction: float = 0.0,
        shadow: Optional[str] = None,
    ) -> None:
        """Canary and/or shadow a fraction of ``ref``'s traffic.

        Validates that every target reference resolves — and serves the
        same feature space as ``ref`` — before installing, so a typo
        cannot blackhole live traffic; the swap itself is atomic at
        flush granularity.
        """
        with self._control_lock:
            check_split_targets(self.registry, ref, canary, shadow)
            self.splitter.set_split(
                ref, canary=canary, canary_fraction=canary_fraction,
                shadow=shadow,
            )

    def clear_split(self, ref: str) -> None:
        with self._control_lock:
            self.splitter.clear(ref)

    def shadow_report(self) -> Dict[str, dict]:
        """Shadow fidelity per split reference (never sent to clients)."""
        return self.splitter.shadow_report()

    # -- traffic ---------------------------------------------------------
    def submit(self, model: str, state: Any) -> "Future[ServeResult]":
        """One decision request; resolves to a :class:`ServeResult`."""
        return self._batcher.submit(model, state)

    def submit_many(
        self, model: str, states: Any
    ) -> List["Future[ServeResult]"]:
        """Submit a stack of single-state requests (they may co-batch)."""
        states = np.atleast_2d(np.asarray(states, dtype=float))
        return [self._batcher.submit(model, row) for row in states]

    def predict(
        self, model: str, states: Any, timeout_s: float = 30.0
    ) -> np.ndarray:
        """Synchronous batch convenience: submit, wait, stack actions.

        Raises :class:`ServeError` if any request fails — use ``submit``
        when per-request error handling is wanted.
        """
        if self._batcher.closed:
            raise RuntimeError(
                "PolicyServer is closed: predict() after close() can "
                "never complete"
            )
        futures = self.submit_many(model, states)
        results = [f.result(timeout=timeout_s) for f in futures]
        for res in results:
            if not res.ok:
                raise ServeError(
                    f"{model}: {res.error} ({res.detail})"
                )
        return np.asarray([res.action for res in results])

    def submit_async(self, model: str, state: Any):
        """Asyncio submission path (see :meth:`MicroBatcher.submit_async`);
        awaitable from a running event loop."""
        return self._batcher.submit_async(model, state)

    # -- observability / lifecycle ---------------------------------------
    def metrics(self) -> Dict[str, dict]:
        """Per-model metrics snapshot (see :class:`ServerMetrics`)."""
        return self._metrics.snapshot()

    def backend_report(self) -> Dict[str, Any]:
        """Which engine serves each model: native kernel vs numpy.

        ``models`` maps every registered model to its summed
        native/numpy/fallback row counters, per-version breakdown, and
        kernel provenance; ``native`` is the process-wide compile/cache
        counter snapshot (:func:`repro.core.tree.native.native_stats`),
        where a silent degradation — no compiler, failed compile,
        corrupt cache — shows up as ``fallback_rows`` plus a
        ``last_error``.
        """
        from repro.core.tree import native
        from repro.serve.registry import registry_backend_report

        return {
            "models": registry_backend_report(self.registry),
            "native": native.native_stats(),
        }

    def batching_state(self) -> Dict[str, Any]:
        """Current microbatching posture (adaptive-delay telemetry)."""
        return batching_state(self.delay, self._batcher.max_delay_s)

    def render_metrics(self) -> str:
        """This server's hub in Prometheus text exposition format."""
        return render_text(self.hub.snapshot())

    def events(self, since: int = 0) -> List[dict]:
        """Journal events newer than ``since`` (see
        :meth:`repro.obs.events.EventJournal.events_since`) — what the
        exporter's ``/events?since=`` endpoint serves."""
        return self.journal.events_since(since)

    def _blackbox_state(self) -> Dict[str, Any]:
        """What a postmortem bundle records about this tier's control
        state (cheap, lock-light, JSON-friendly)."""
        return {
            "tier": "PolicyServer",
            "registry": self.registry.fingerprint(),
            "splits": split_state(self.splitter.splits()),
            "batching": self.batching_state(),
        }

    def start_exporter(self, port: int = 0, host: str = "127.0.0.1"):
        """Start the observability HTTP endpoint; see
        :class:`repro.obs.exporter.MetricsExporter`.

        One-shot per server: calling it again while an exporter is
        running, or after :meth:`close`, raises ``RuntimeError`` — the
        old silent-return behaviour could leak a second HTTP server
        bound to a stale port.
        """
        if self._closed:
            raise RuntimeError(
                "PolicyServer is closed: start_exporter() would serve "
                "metrics for a dead server"
            )
        if self.exporter is not None:
            raise RuntimeError(
                f"exporter already running on {self.exporter.url}; "
                f"close() it before starting another"
            )
        from repro.obs.exporter import MetricsExporter

        self.exporter = MetricsExporter(
            self.render_metrics, tracer=self.tracer,
            host=host, port=port, events_fn=self.events,
        ).start()
        return self.exporter

    def start_health(self, rules: Optional[list] = None,
                     interval_s: float = 1.0, **rule_kwargs):
        """Start the SLO alert engine over this server's metrics.

        Without explicit ``rules``, the stock set from
        :func:`repro.obs.health.standard_rules` is wired to this
        server's live signal sources; ``rule_kwargs`` (``slo_p95_ms``,
        ``max_error_ratio``, window lengths, …) parameterize it.
        Returns the running :class:`~repro.obs.health.HealthMonitor`
        (subscribe to it for fire/resolve callbacks).
        """
        from repro.obs.health import HealthMonitor, standard_rules

        if self.health is not None:
            raise RuntimeError("health monitor already running")
        if rules is None:
            rules = standard_rules(
                self._metrics,
                queue_depth_fn=self._batcher.queue_depth,
                shadow_report_fn=self.splitter.shadow_report,
                backend_report_fn=self.backend_report,
                **rule_kwargs,
            )
        self.health = HealthMonitor(
            rules, journal=self.journal, hub=self.hub,
            interval_s=interval_s, recorder=self.recorder,
        ).start()
        return self.health

    def start_online(
        self,
        ref: str,
        teacher: Any,
        sample_rate: float = 0.05,
        capacity: int = 4096,
        monitor: Optional[Any] = None,
        interval_s: Optional[float] = None,
        seed: SeedLike = None,
        min_samples: int = 256,
        leaf_nodes: int = 200,
        hist_bins: int = 256,
        n_classes: Optional[int] = None,
        **controller_kwargs: Any,
    ):
        """Close the loop: capture served traffic, refit against
        ``teacher``, and auto-canary the refits (see
        :mod:`repro.serve.online`).

        ``ref`` must be an alias — promotion repoints it at the refit.
        ``monitor`` defaults to this server's running health monitor
        (:meth:`start_health` first if drift-triggered refits are
        wanted).  ``interval_s`` starts the controller's background
        ticker; leave ``None`` and call ``controller.tick()`` to drive
        it explicitly (tests, cron).  Remaining keyword arguments reach
        :class:`~repro.serve.online.AutoCanaryController`.  One-shot
        per server, like :meth:`start_health`.
        """
        from repro.serve.online import (
            AutoCanaryController,
            Redistiller,
            TraceCapture,
        )

        if self._closed:
            raise RuntimeError(
                "PolicyServer is closed: start_online() would capture "
                "for a dead server"
            )
        if self.online is not None:
            raise RuntimeError("online controller already running")
        capture = TraceCapture(
            capacity=capacity, sample_rate=sample_rate, seed=seed,
            hub=self.hub,
        )
        self._batcher.capture = capture
        redistiller = Redistiller(
            capture, teacher, min_samples=min_samples,
            leaf_nodes=leaf_nodes, hist_bins=hist_bins,
            n_classes=n_classes,
            name=controller_kwargs.get("candidate") or f"{ref}-refit",
        )
        self.online = AutoCanaryController(
            self, ref, redistiller,
            monitor=monitor if monitor is not None else self.health,
            journal=self.journal, hub=self.hub, **controller_kwargs,
        )
        if interval_s is not None:
            self.online.start(interval_s)
        return self.online

    def close(self) -> None:
        """Drain and stop; every submitted request still completes."""
        self._closed = True
        if self.online is not None:
            self.online.close()
            self.online = None
            self._batcher.capture = None
        if self.health is not None:
            self.health.close()
            self.health = None
        self._batcher.close()
        if self.exporter is not None:
            self.exporter.close()
            self.exporter = None

    def __enter__(self) -> "PolicyServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
