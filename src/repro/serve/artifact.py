"""Immutable, servable policy artifacts.

The paper's deployment story (§6.4) swaps a distilled tree *under the
same serving stack* as the DNN it replaces.  For that to be a swap rather
than a rewrite, both sides must compile to the same serving contract.
:class:`PolicyArtifact` is that contract: a frozen bundle of

* a batched decision function ``predict_batch`` — ``(n, d) -> (n,)``
  actions (or ``(n, k)`` outputs for regression policies),
* feature-count / action-space metadata the serving boundary validates
  requests against,
* a content hash so registry versions are attributable and tamper-evident
  (for snapshot artifacts — trees, plain functions — two artifacts with
  the same hash serve identical decisions; teacher artifacts are
  live-bound, see :meth:`PolicyArtifact.from_teacher` and
  :meth:`PolicyArtifact.is_intact`),
* optionally, the ``tree_to_python`` codegen source for tree policies —
  the dependency-free single-decision closure the on-device story uses.

Anything that answers decisions can be packaged: fitted CART trees (flat
arrays, snapshot semantics — later pruning of the source tree does not
mutate a published artifact), numpy MLP teachers (Pensieve, AuTO-lRLA),
or an arbitrary batch function.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence

import numpy as np

from repro.core.tree import native
from repro.core.tree.cart import DecisionTreeClassifier, _BaseTree
from repro.core.tree.codegen import tree_to_python
from repro.core.tree.flat import FlatTree

#: FlatTree fields a tree artifact's content hash covers, in hash order.
#: The same arrays are what the cluster ships through shared memory, so
#: a worker can re-hash exactly what it reconstructed.
TREE_HASH_FIELDS = (
    "feature", "threshold", "children_left", "children_right", "value",
)


def _hash_arrays(arrays: Sequence[np.ndarray]) -> str:
    """Stable short content hash over an array sequence."""
    digest = hashlib.sha256()
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        digest.update(str(arr.shape).encode())
        digest.update(str(arr.dtype).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()[:16]


def _find_weights(obj: Any) -> Optional[Sequence[np.ndarray]]:
    """Best-effort weight discovery for hashing teacher-backed artifacts.

    Walks the common teacher shapes in this repo: ``obj.net``,
    ``obj.policy.net`` (PensieveTeacher), ``obj.lrla.net`` (AutoTeacher).
    """
    candidates = [obj]
    for attr in ("net", "policy", "lrla"):
        sub = getattr(obj, attr, None)
        if sub is not None:
            candidates.append(sub)
            net = getattr(sub, "net", None)
            if net is not None:
                candidates.append(net)
    for cand in candidates:
        getter = getattr(cand, "get_weights", None)
        if callable(getter):
            return getter()
    return None


@dataclass(frozen=True, eq=False)
class PolicyArtifact:
    """One servable, versioned policy.

    Attributes:
        name: human label (the registry key is chosen at publish time).
        kind: "tree-classifier", "tree-regressor", "teacher", or
            "function".
        n_features: expected state dimensionality; the serve boundary
            rejects requests that do not match.
        n_outputs: action-space size (classifiers/teachers) or output
            dimensionality (regressors).
        predict_batch: the batched decision function ``(n, d) -> (n,)``
            or ``(n, k)``.
        content_hash: 16-hex-digit content hash (tree arrays / network
            weights); responses are attributable to exactly this bundle.
        source: optional generated single-decision source code
            (``tree_to_python``), the on-device artifact of §6.4.
        meta: free-form extra metadata (leaf counts, teacher names, ...).
        flat: for tree artifacts, the snapshot :class:`FlatTree` backing
            ``predict_batch`` — the contiguous arrays the cluster tier
            ships to worker processes through shared memory.
    """

    name: str
    kind: str
    n_features: int
    n_outputs: int
    predict_batch: Callable[[np.ndarray], np.ndarray]
    content_hash: str
    source: Optional[str] = None
    meta: Dict[str, Any] = field(default_factory=dict)
    flat: Optional[FlatTree] = None

    def __post_init__(self) -> None:
        if self.n_features < 1:
            raise ValueError("n_features must be positive")
        if self.n_outputs < 1:
            raise ValueError("n_outputs must be positive")
        if not callable(self.predict_batch):
            raise TypeError("predict_batch must be callable")

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_tree(
        cls,
        tree: _BaseTree,
        name: str = "tree",
        codegen: bool = True,
    ) -> "PolicyArtifact":
        """Compile a fitted CART tree into an artifact.

        The flat arrays are captured *now*: pruning or refitting the tree
        afterwards does not change what a published artifact serves.
        Classification trees also carry their ``tree_to_python`` source
        when ``codegen`` is set (regression trees have no codegen path).
        """
        if tree.root is None:
            raise RuntimeError("tree is not fitted")
        is_classifier = isinstance(tree, DecisionTreeClassifier)
        source = (
            tree_to_python(tree) if (codegen and is_classifier) else None
        )
        return cls.from_flat(
            tree.flat,
            name=name,
            kind="tree-classifier" if is_classifier else "tree-regressor",
            n_features=int(tree.n_features),
            source=source,
        )

    @classmethod
    def from_flat(
        cls,
        flat: FlatTree,
        name: str,
        kind: str,
        n_features: int,
        source: Optional[str] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> "PolicyArtifact":
        """Build an artifact directly from a :class:`FlatTree` snapshot.

        This is the worker-side constructor of the cluster tier: a
        shard reconstructs the flat arrays from shared memory and
        rebuilds the exact artifact the parent published (the content
        hash, computed over the same arrays, proves it).
        """
        if kind not in ("tree-classifier", "tree-regressor"):
            raise ValueError(f"from_flat cannot build kind {kind!r}")
        content = _hash_arrays(
            [getattr(flat, field_) for field_ in TREE_HASH_FIELDS]
        )
        if kind == "tree-classifier":
            predict = flat.predict_class
            n_outputs = flat.n_outputs  # class count
        else:
            n_out = flat.n_outputs

            def predict(x, _flat=flat, _n=n_out):
                values = _flat.leaf_values(x)
                return values[:, 0] if _n == 1 else values

            n_outputs = n_out
        full_meta = {
            "n_leaves": int(flat.n_leaves),
            "depth": int(flat.max_depth),
        }
        if meta:
            full_meta.update(meta)
        return cls(
            name=name,
            kind=kind,
            n_features=int(n_features),
            n_outputs=int(n_outputs),
            predict_batch=predict,
            content_hash=content,
            source=source,
            meta=full_meta,
            flat=flat,
        )

    @classmethod
    def from_teacher(
        cls,
        teacher: Any,
        n_features: int,
        name: Optional[str] = None,
        n_outputs: Optional[int] = None,
    ) -> "PolicyArtifact":
        """Wrap a teacher exposing ``act_greedy_batch`` (numpy MLP path).

        The content hash is taken from the teacher's network weights when
        they are discoverable (all teachers in this repo expose
        ``get_weights`` somewhere); otherwise from the class name, which
        still versions but no longer detects weight changes.

        **Live-binding caveat** (unlike tree artifacts, which snapshot
        their flat arrays): ``predict_batch`` stays bound to the live
        teacher, so training it after publish changes served decisions
        while ``content_hash`` keeps recording the publish-time weights.
        Publish a fresh version after further training — or distill to a
        tree artifact for truly immutable serving.  :meth:`is_intact`
        detects drift by re-hashing the current weights.
        """
        fn = getattr(teacher, "act_greedy_batch", None)
        if fn is None:
            raise TypeError("teacher must expose act_greedy_batch")
        weights = _find_weights(teacher)
        if weights:
            content = _hash_arrays(list(weights))
        else:
            content = hashlib.sha256(
                type(teacher).__name__.encode()
            ).hexdigest()[:16]
        if n_outputs is None:
            n_outputs = int(getattr(teacher, "n_actions", 0)) or 1
        return cls(
            name=name or getattr(teacher, "name", type(teacher).__name__),
            kind="teacher",
            n_features=int(n_features),
            n_outputs=int(n_outputs),
            predict_batch=fn,
            content_hash=content,
            meta={"teacher": type(teacher).__name__},
        )

    @classmethod
    def from_policy(cls, policy: Any, name: Optional[str] = None,
                    n_features: Optional[int] = None) -> "PolicyArtifact":
        """Dispatch on the repo's policy shapes (DistilledPolicy, teachers)."""
        tree = getattr(policy, "tree", None)
        if isinstance(tree, _BaseTree):
            return cls.from_tree(
                tree, name=name or getattr(policy, "name", "tree")
            )
        if n_features is None:
            raise ValueError(
                "n_features is required for non-tree policies"
            )
        return cls.from_teacher(policy, n_features, name=name)

    # -- compiled backend ------------------------------------------------
    def compile_native(self) -> bool:
        """Eagerly compile/load this artifact's native kernel.

        Called at ``ModelRegistry.publish`` time so compilation never
        lands on the serve hot path.  Best-effort by contract: a
        missing compiler or failed compile records the reason in
        ``meta["kernel"]`` (the provenance the cluster handle ships to
        workers) and returns False — the artifact keeps serving through
        the numpy backend.  Never raises.
        """
        if self.flat is None:
            return False
        try:
            if native.backend_mode() == "numpy":
                self.meta["kernel"] = {"status": "disabled"}
                return False
            if self.flat._native is not None:
                return True  # already attached (repeat publish)
            kernel = self.flat.native_kernel(compile=True)
        except Exception as exc:  # noqa: BLE001 - publish must survive
            self.meta["kernel"] = {
                "status": "unavailable", "error": str(exc),
            }
            return False
        if kernel is None:
            self.meta["kernel"] = {
                "status": "unavailable",
                "error": native.last_error() or "unknown",
            }
            return False
        self.meta["kernel"] = {
            "status": "ready",
            "hash": kernel.hash,
            "nodes": kernel.node_count,
            **{k: kernel.provenance[k]
               for k in ("compiler", "flags", "quantized", "kernel_api")
               if k in kernel.provenance},
        }
        return True

    def backend_stats(self) -> Optional[Dict[str, Any]]:
        """Per-artifact backend view: rows served native vs numpy, the
        fallback counter, and kernel provenance.  None for artifacts
        without flat arrays (teachers/functions are numpy-only)."""
        if self.flat is None:
            return None
        stats: Dict[str, Any] = dict(self.flat.backend_stats)
        stats["kernel"] = dict(self.meta.get("kernel") or {}) or None
        return stats

    # -- integrity -------------------------------------------------------
    def fingerprint(self) -> str:
        """Re-hash the current backing state.

        Tree/function artifacts are snapshots, so this is always the
        published ``content_hash``; teacher artifacts are live-bound
        (see :meth:`from_teacher`), so a fingerprint that no longer
        matches means the teacher's weights changed under a published
        version.
        """
        if self.kind != "teacher":
            return self.content_hash
        owner = getattr(self.predict_batch, "__self__", None)
        weights = _find_weights(owner) if owner is not None else None
        if not weights:
            return self.content_hash
        return _hash_arrays(list(weights))

    def is_intact(self) -> bool:
        """Whether serving still matches the published content hash."""
        return self.fingerprint() == self.content_hash

    # -- single-decision closure -----------------------------------------
    def compile_single(self) -> Callable[[Sequence[float]], int]:
        """Exec the codegen source into a dependency-free callable.

        Only available for artifacts carrying generated source
        (classification trees built with ``codegen=True``).
        """
        if self.source is None:
            raise RuntimeError(
                f"artifact {self.name!r} carries no generated source"
            )
        namespace: dict = {}
        exec(self.source, namespace)  # noqa: S102 - our own generated code
        fns = [v for k, v in namespace.items() if callable(v)]
        return fns[0]

    def __repr__(self) -> str:  # keep the callable out of the repr
        return (
            f"PolicyArtifact(name={self.name!r}, kind={self.kind!r}, "
            f"n_features={self.n_features}, n_outputs={self.n_outputs}, "
            f"hash={self.content_hash})"
        )
