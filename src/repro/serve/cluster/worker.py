"""Shard worker: a registry replica serving pre-batched predict calls.

Each worker process owns a full serving replica — its own
:class:`ModelRegistry`, :class:`ServerMetrics`, and
:class:`TrafficSplitter` — kept in lockstep by the parent broadcasting
every control operation (publish / alias / retire / split) to all
shards in order.  Model arrays arrive through shared memory
(:mod:`repro.serve.cluster.shm`), so N shards share one physical copy
of every tree.

The data path is :func:`serve_stacked`: the parent ships an already
stacked ``(n, d)`` float batch per message, and the worker answers with
compact arrays — per-group ``(name, version, row indices, actions)``
plus structured per-row errors — rather than per-request objects.  That
keeps the per-request Python cost on the worker near zero, which is the
whole reason the cluster tier exists.

Since PR 6 the protocol itself lives in
:mod:`repro.serve.cluster.wire` (versioned, length-prefixed frames with
typed :class:`Request`/:class:`Reply` messages) and the byte channel in
:mod:`repro.serve.cluster.transport`: :class:`WorkerCore` holds the
replica state and turns one request frame into one reply frame, and a
transport-specific :class:`~repro.serve.cluster.transport.Listener`
drives it — the synchronous pipe loop workers always ran, or an
asyncio TCP server for socket shards.

Ops (see :data:`repro.serve.cluster.wire.OPS`): ``publish``,
``publish_tombstone``, ``rollback_publish``, ``alias``, ``retire``,
``predict``, ``set_split``, ``clear_split``, ``metrics``,
``shadow_report``, ``describe``, ``ping``, ``stop``,
``backend_report`` (native-kernel vs numpy serving counters per model),
``metrics_snapshot`` (the worker hub's labeled series, pulled by the
parent's ``/metrics`` scrape and re-labeled per shard),
``events_since`` (incremental drain of the worker's event journal,
merged into the parent's under a ``shard`` label), ``capture_drain``
(incremental drain of the worker's sampled trace-capture ring — same
high-water-mark discipline as ``events_since`` — that also pushes the
parent's live sample rate down to the shard)
(``publish_tombstone`` and ``describe`` exist for the elastic tier:
replaying retired version slots into a replacement replica, and
fingerprinting a replica's full control state for lockstep
verification).  Artifacts arrive three ways: a
:class:`ShmArtifactHandle` (co-located shards attach the parent's
segment zero-copy), raw pickled bytes (legacy local fallback), or a
:class:`~repro.serve.cluster.wire.WireArtifact` — the socket path,
where the first publish per (host, key) carries the artifact bytes and
fills a named host-cache segment, and every later one attaches to it
by name.

The worker never lets an exception escape the loop: a failing op
answers ``ok=False`` with the error text, and only ``stop`` or a closed
channel ends the process.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.serve.batcher import (
    ERR_BAD_OUTPUT,
    ERR_BAD_SHAPE,
    ERR_NON_FINITE,
    ERR_PREDICT,
    ERR_UNKNOWN_MODEL,
)
from repro.serve.cluster.shm import (
    ShmArtifactHandle,
    create_filled_segment,
    load_shared_artifact,
)
from repro.serve.cluster.transport import PipeListener, SocketListener
from repro.serve.cluster.wire import (
    Reply,
    Request,
    WireArtifact,
    decode_frame,
    encode_reply,
)
from repro.serve.registry import (
    ModelRegistry,
    control_state_digest,
    registry_backend_report,
)
from repro.obs.events import EventJournal
from repro.obs.metrics import MetricsHub
from repro.serve.online import TraceCapture
from repro.serve.server import ServerMetrics, register_serving_collectors
from repro.serve.splitter import TrafficSplitter, mirror_shadow, split_state

#: Error kind when a whole shard died under a request (parent-side).
ERR_SHARD = "shard_error"


def serve_stacked(
    registry: ModelRegistry,
    splitter: TrafficSplitter,
    metrics: ServerMetrics,
    ref: str,
    x: np.ndarray,
    shadow_sink: Optional[list] = None,
) -> Dict[str, Any]:
    """Serve one stacked batch under ``ref`` with full split semantics.

    Returns ``{"groups": [(name, version, idx, actions), ...],
    "errors": [(i, model, version, kind, detail), ...],
    "service_s": float, "kernel_s": float}`` where ``idx`` indexes rows
    of ``x`` and ``service_s`` is this batch's pure service time — the
    parent folds it into the shard's EWMA, which is what the load-aware
    router scores by.  ``kernel_s`` is the summed time inside
    ``predict_batch`` calls (the native/numpy kernel itself), letting a
    sampled trace split worker time into dispatch overhead vs compute.  Mirrors the MicroBatcher's per-request
    guarantees vectorized: canary rows route to the canary reference,
    non-finite rows fail alone, a raising ``predict_batch`` fails only
    its group, and shadow answers — mirrored from the primary-served
    rows only — are recorded but never returned.

    With ``shadow_sink`` provided, shadow mirroring is *deferred*: the
    thunks are appended for the caller to run after the reply has been
    sent, so a slow shadow model never adds latency to the primary
    requests it mirrors (zero blast radius in time, not just in
    correctness).  Without a sink, mirroring runs inline.
    """
    n = x.shape[0]
    start = time.perf_counter()
    all_idx = np.arange(n, dtype=np.intp)
    plan = splitter.assign(ref, n) if splitter.active else None
    if plan is not None and plan.split.canary is not None:
        mask = plan.canary_mask
        assignments = [
            (ref, all_idx[~mask]),
            (plan.split.canary, all_idx[mask]),
        ]
    else:
        assignments = [(ref, all_idx)]
    shadow_ref = plan.shadow if plan is not None else None

    refs = [target for target, idx in assignments if idx.size]
    if shadow_ref is not None:
        refs.append(shadow_ref)
    resolutions = registry.resolve_many(set(refs))

    groups: List[Tuple[str, int, np.ndarray, np.ndarray]] = []
    errors: List[Tuple[int, str, int, str, str]] = []
    served_idx: List[np.ndarray] = []
    served_actions: List[np.ndarray] = []
    kernel_s = 0.0
    for target, idx in assignments:
        if not idx.size:
            continue
        resolved = resolutions[target]
        if resolved is None:
            errors.extend(
                (int(i), target, 0, ERR_UNKNOWN_MODEL,
                 f"unknown model {target!r}")
                for i in idx
            )
            continue
        artifact = resolved.artifact
        name, version = resolved.name, resolved.version
        if x.shape[1] != artifact.n_features:
            detail = (
                f"expected a flat state of {artifact.n_features} "
                f"features, got shape ({x.shape[1]},)"
            )
            errors.extend(
                (int(i), name, version, ERR_BAD_SHAPE, detail)
                for i in idx
            )
            continue
        sub = x[idx]
        finite = np.isfinite(sub).all(axis=1)
        if not finite.all():
            for i in idx[~finite]:
                errors.append((
                    int(i), name, version, ERR_NON_FINITE,
                    "state contains NaN or infinite entries",
                ))
            idx = idx[finite]
            sub = sub[finite]
            if not idx.size:
                continue
        t_kernel = time.perf_counter()
        try:
            out = np.asarray(artifact.predict_batch(sub))
            kernel_s += time.perf_counter() - t_kernel
        except Exception as exc:  # noqa: BLE001 - boundary must survive
            kernel_s += time.perf_counter() - t_kernel
            detail = f"{type(exc).__name__}: {exc}"
            errors.extend(
                (int(i), name, version, ERR_PREDICT, detail) for i in idx
            )
            continue
        if out.shape[:1] != (idx.size,):
            detail = (
                f"predict_batch returned shape {out.shape} for "
                f"{idx.size} requests"
            )
            errors.extend(
                (int(i), name, version, ERR_BAD_OUTPUT, detail)
                for i in idx
            )
            continue
        groups.append((name, version, idx, out))
        if target == ref:
            # Only primary-served rows feed the shadow comparison —
            # canaried rows served by the candidate itself would
            # trivially agree and inflate the fidelity rate.
            served_idx.append(idx)
            served_actions.append(out)

    service_s = time.perf_counter() - start
    for name, version, idx, _out in groups:
        # Worker-side latency is pure service time; the parent records
        # the client-observed (queue + IPC) latency separately.
        metrics.record_group(name, version, [service_s] * int(idx.size))
    for _i, model, version, kind, _detail in errors:
        metrics.record(model, version, service_s, error=kind)

    if shadow_ref is not None and served_idx:
        resolved_shadow = resolutions.get(shadow_ref)
        for idx_group, out_group in zip(served_idx, served_actions):
            def thunk(rows=x[idx_group], served=out_group,
                      resolved=resolved_shadow, shadow=shadow_ref):
                mirror_shadow(splitter, resolved, ref, shadow, rows,
                              served)
            if shadow_sink is not None:
                shadow_sink.append(thunk)
            else:
                thunk()
    return {"groups": groups, "errors": errors, "service_s": service_s,
            "kernel_s": kernel_s}


class WorkerCore:
    """One shard's replica state plus the frame-in/frame-out dispatch.

    Transport-agnostic by construction: :meth:`handle_frame` decodes a
    wire :class:`Request`, applies it, and returns the encoded
    :class:`Reply` plus the deferred work the listener runs *after*
    the reply has been flushed (shadow mirroring — a slow shadow must
    never tax the primaries it mirrors) and the stop flag.  The
    synchronous pipe loop and the asyncio socket server both drive
    exactly this method, which is what keeps the two transports
    behaviorally identical.
    """

    def __init__(self, shard_id: int, split_seed: Optional[int] = None,
                 private_tracker: bool = False) -> None:
        self.shard_id = shard_id
        self.private_tracker = private_tracker
        self.registry = ModelRegistry()
        #: This replica's own metrics hub.  The parent pulls it over
        #: the control channel (``metrics_snapshot`` op) and renders it
        #: under a ``shard`` label next to its own series.
        self.hub = MetricsHub()
        #: This replica's own event journal: registry transitions,
        #: split changes and kernel fallbacks are recorded locally and
        #: drained by the parent (``events_since`` op), which re-labels
        #: them with this shard's id.
        self.journal = EventJournal(hub=self.hub)
        self.metrics = ServerMetrics(hub=self.hub)
        self.splitter = TrafficSplitter(seed=split_seed)
        #: This replica's sampled (state, action) ring.  Dormant (rate
        #: 0.0, zero hot-path cost) until the parent's first
        #: ``capture_drain`` pushes a live sample rate down.
        self.capture = TraceCapture(
            capacity=2048, sample_rate=0.0, seed=split_seed, hub=self.hub
        )
        self.registry.journal = self.journal
        self.splitter.journal = self.journal
        from repro.core.tree import native

        native.set_event_hook(self.journal.emit)
        register_serving_collectors(self.hub, splitter=self.splitter)
        self._m_traced = self.hub.counter(
            "repro_worker_traced_requests_total",
            "Predict frames carrying a trace context",
        ).labels()
        #: (name, version) -> SharedMemory kept alive while that
        #: version serves; retire drops the mapping so workers don't
        #: accumulate every artifact ever published.
        self.segments: Dict[Tuple[str, int], Any] = {}

    def handle_frame(self, frame: bytes):
        """Apply one request frame; returns ``(reply_frame,
        after_send, stop)`` per the listener contract."""
        request = decode_frame(frame)
        if not isinstance(request, Request):
            raise TypeError("worker received a reply frame")
        stop = request.op == "stop"
        deferred: list = []
        try:
            result = self.dispatch(request.op, request.payload, deferred,
                                   trace=request.trace)
            reply = encode_reply(Reply(request.msg_id, True, result))
        except Exception as exc:  # noqa: BLE001 - reply, don't die
            reply = encode_reply(Reply(
                request.msg_id, False, f"{type(exc).__name__}: {exc}"
            ))
        after_send = None
        if deferred:
            def after_send(thunks=deferred):
                for thunk in thunks:
                    thunk()
        return reply, after_send, stop

    def _load_artifact(self, packed):
        """Materialize a published artifact from its wire form.

        Returns ``(artifact, segment_or_None)`` — the segment is kept
        mapped for as long as the version serves (tree artifacts view
        it zero-copy; pickled ones are full copies and keep nothing
        mapped).
        """
        if isinstance(packed, WireArtifact):
            return self._load_wire_artifact(packed)
        if isinstance(packed, ShmArtifactHandle):
            return load_shared_artifact(
                packed, private_tracker=self.private_tracker
            )
        if isinstance(packed, bytes):
            # Pickle fallback (teacher/function): the parent
            # serialized once and ships the same bytes to every shard.
            return pickle.loads(packed), None
        return packed, None

    def _load_wire_artifact(self, wire: WireArtifact):
        """Socket-path artifact: fill or attach the host-cache segment.

        ``payload`` present means this worker is the first on its host
        to see the key: it creates the named segment and writes the
        bytes (the parent's control lock serializes publishes, so the
        create never races).  ``payload=None`` means the host already
        holds the bytes — attach by name.  Either way the artifact is
        rebuilt exactly as the shm path would, hash-verified before it
        can serve.
        """
        if wire.handle is not None:
            # Tree artifact: segment holds the flat arrays in shm
            # layout; the handle's shm_name already names the cache
            # segment, so the shm loader verifies and maps it as-is.
            if wire.payload is not None:
                filler = create_filled_segment(wire.segment, wire.payload)
                filler.close()
            if wire.kernel is not None:
                # Shipped compiled kernel: drop it into this host's
                # kernel cache so the publish-time compile hook dlopens
                # it instead of recompiling (best effort — a bad drop
                # just means the worker compiles or serves numpy).
                khash = (wire.handle.meta.get("kernel") or {}).get("hash")
                if khash:
                    try:
                        from repro.core.tree import native

                        native.install_kernel_bytes(khash, wire.kernel)
                    except Exception:  # noqa: BLE001 - numpy fallback
                        pass
            return load_shared_artifact(
                wire.handle, private_tracker=self.private_tracker
            )
        # Pickled artifact: segment holds a length-prefixed pickle.
        if wire.payload is not None:
            raw = wire.payload
            filler = create_filled_segment(
                wire.segment,
                len(raw).to_bytes(8, "big") + raw,
            )
            filler.close()
        else:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(name=wire.segment)
            try:
                size = int.from_bytes(bytes(segment.buf[:8]), "big")
                raw = bytes(segment.buf[8:8 + size])
            finally:
                segment.close()
        digest = hashlib.sha256(raw).hexdigest()[:16]
        if digest != wire.key:
            raise RuntimeError(
                f"cached artifact segment {wire.segment!r} failed "
                f"verification: expected {wire.key}, bytes hash to "
                f"{digest}"
            )
        return pickle.loads(raw), None

    def dispatch(self, op: str, payload, deferred: list,
                 trace: Any = None) -> Any:
        registry, metrics, splitter = \
            self.registry, self.metrics, self.splitter
        segments = self.segments
        if op == "predict":
            ref, x = payload
            result = serve_stacked(
                registry, splitter, metrics, ref, x, shadow_sink=deferred
            )
            if self.capture.sample_rate > 0.0:
                # Sample from the resolved groups, so canaried rows are
                # recorded under the model that actually served them.
                for name, version, idx, out in result["groups"]:
                    self.capture.submit_group(name, version, x[idx], out)
            if trace is not None:
                # Continue the sampled trace: count it and echo the
                # context so the parent can pair reply to trace even on
                # transports that reorder completions.  Durations (not
                # timestamps) cross the process boundary — the parent's
                # and worker's perf_counter clocks are unrelated.
                self._m_traced.inc()
                result["trace"] = trace
            return result
        if op == "publish":
            # Aliasing is a separate op broadcast only after every
            # shard accepted the publish, so rollback never has to
            # reconstruct a pre-existing alias target.
            name, packed = payload
            artifact, shm = self._load_artifact(packed)
            version = registry.publish(name, artifact)
            if shm is not None:
                segments[(name, version)] = shm
            return version
        if op == "rollback_publish":
            name, version = payload
            registry.rollback_publish(name, version)
            shm = segments.pop((name, version), None)
            if shm is not None:
                try:
                    shm.close()
                except BufferError:
                    segments[(name, version)] = shm
            return None
        if op == "publish_tombstone":
            # Replay-only: a version retired before this replica was
            # born must still occupy its slot (version numbers never
            # shift).
            return registry.publish_tombstone(payload)
        if op == "alias":
            alias, target, version = payload
            registry.alias(alias, target, version)
            return None
        if op == "retire":
            name, version = payload
            registry.retire(name, version)
            # The tombstone dropped the registry's artifact reference
            # (the only holder of the shared-memory views), so the
            # mapping can be released now instead of at shutdown.
            shm = segments.pop((name, version), None)
            if shm is not None:
                try:
                    shm.close()
                except BufferError:
                    # A stray view still exports the buffer; keep the
                    # mapping alive rather than crash (shutdown closes
                    # it).
                    segments[(name, version)] = shm
            return None
        if op == "set_split":
            ref, canary, fraction, shadow = payload
            splitter.set_split(
                ref, canary=canary, canary_fraction=fraction,
                shadow=shadow,
            )
            return None
        if op == "clear_split":
            splitter.clear(payload)
            return None
        if op == "metrics":
            return metrics.snapshot()
        if op == "metrics_snapshot":
            return self.hub.snapshot()
        if op == "events_since":
            # Append-only journal drain: the parent polls with its
            # per-shard high-water seq and merges the reply under a
            # shard label.  Plain dicts ride the typed wire codec.
            return self.journal.events_since(int(payload or 0))
        if op == "capture_drain":
            # Trace-capture drain, same discipline as events_since: the
            # parent polls with its per-shard high-water seq.  The
            # payload also carries the fleet sample rate, so turning
            # capture on/off is one knob on the parent.
            payload = payload or {}
            rate = payload.get("sample_rate")
            if rate is not None:
                self.capture.sample_rate = float(rate)
            return self.capture.entries_since(int(payload.get("since", 0)))
        if op == "backend_report":
            return registry_backend_report(registry)
        if op == "shadow_report":
            return splitter.shadow_report()
        if op == "describe":
            # Full control-state fingerprint: registry versions
            # (content hashes / tombstones), alias table, and
            # routing-relevant split state, plus a compact digest of
            # all three (what a multi-host monitor compares without
            # shipping full states).  The parent compares these across
            # replicas — and against its own mirror — to prove
            # lockstep, in particular after a replacement replica
            # replayed the log.
            state = dict(registry.fingerprint())
            state["splits"] = split_state(splitter.splits())
            state["digest"] = control_state_digest(state)
            return state
        if op == "ping":
            return ("pong", self.shard_id)
        if op == "stop":
            return None
        raise ValueError(f"unknown op {op!r}")

    def close(self) -> None:
        for shm in self.segments.values():
            try:
                shm.close()
            except Exception:  # noqa: BLE001 - teardown best effort
                pass
        self.segments.clear()


def worker_main(
    conn,
    shard_id: int,
    split_seed: Optional[int] = None,
    transport: str = "pipe",
    host: str = "127.0.0.1",
    private_tracker: bool = False,
) -> None:
    """Entry point of one shard process.

    ``conn`` is the duplex pipe end for pipe workers, or the one-shot
    bootstrap pipe a socket worker reports its bound port over.
    ``private_tracker`` stays False for workers launched by
    :class:`ShardedPolicyService` — both fork and spawn children share
    the parent's resource tracker.  Set it only when running a worker
    from an *independently started* interpreter whose tracker does not
    belong to the segment owner.
    """
    core = WorkerCore(shard_id, split_seed=split_seed,
                      private_tracker=private_tracker)
    try:
        if transport == "socket":
            listener = SocketListener(host, conn)
        elif transport == "pipe":
            listener = PipeListener(conn)
        else:
            raise ValueError(f"unknown worker transport {transport!r}")
        listener.serve(core.handle_frame)
    finally:
        core.close()
