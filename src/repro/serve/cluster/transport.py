"""Pluggable frame transports between the parent and its shard workers.

The protocol lives in :mod:`repro.serve.cluster.wire`; this module owns
*how the frames move*.  Three pieces:

* :class:`Transport` — the parent-side byte-frame channel to one
  worker: ``send_frame`` / ``recv_frame`` / ``close`` plus the
  attributes the service routes shipments by (``locality`` decides
  whether shm handles can attach directly, ``host_key`` keys the
  host-level artifact cache) and sent/received byte counters (the
  artifact-cache tests and the transport benchmark read them);
* :class:`Listener` — the worker-side serve loop.  A handler receives
  one request frame and returns ``(reply_frame, after_send, stop)``;
  the listener sends the reply, runs ``after_send`` (deferred shadow
  mirroring — it must never tax the primary reply), and exits on
  ``stop``.  :class:`PipeListener` is the synchronous loop workers
  always ran; :class:`SocketListener` is an asyncio TCP server, so a
  socket worker can serve its parent and any number of direct
  :class:`~repro.serve.aio.AsyncWorkerClient` connections from one
  event loop;
* worker factories — :class:`PipeWorkerFactory` spawns today's duplex
  ``multiprocessing`` pipe worker bit-for-bit;
  :class:`SocketWorkerFactory` spawns a worker whose asyncio server
  binds an ephemeral port, reports it over a one-shot bootstrap pipe,
  and the parent connects over TCP (``TCP_NODELAY``, since frames are
  small).  ``ShardedPolicyService(transport=...)`` accepts either
  name, or a custom factory instance.

Error semantics are part of the contract: ``recv_frame`` raises
``EOFError`` on clean close and ``OSError`` on a broken channel —
exactly what the service's reader loop and death sweep already treat
as shard death — and ``send_frame`` raises ``OSError`` when the peer
is gone.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any, Callable, Optional, Tuple

from repro.serve.cluster.wire import HEADER_SIZE, frame_size

#: Transport specs ``ShardedPolicyService(transport=...)`` accepts.
TRANSPORTS = ("pipe", "socket")

#: Handler contract shared by all listeners: request frame in,
#: ``(reply_frame, after_send_or_None, stop)`` out.
FrameHandler = Callable[[bytes], Tuple[bytes, Optional[Callable], bool]]


class Transport:
    """Parent-side frame channel to one worker process."""

    #: Human-readable transport name (mirrored into cluster_metrics).
    name = "transport"
    #: "local" transports share the parent's shm namespace (handles
    #: attach directly); "remote" transports need bytes shipped.
    locality = "local"
    #: Host identity for the host-level artifact cache — every shard
    #: with the same host_key shares one cached copy per artifact.
    host_key = "local"

    def __init__(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0

    def send_frame(self, frame: bytes) -> None:
        raise NotImplementedError

    def recv_frame(self) -> bytes:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class PipeTransport(Transport):
    """Duplex ``multiprocessing`` pipe — the zero-regression default.

    Pipes preserve message boundaries, so one ``send_bytes`` is one
    frame; the header's length field is redundant here and exists for
    stream transports.
    """

    name = "pipe"
    locality = "local"
    host_key = "local"

    def __init__(self, conn: Any) -> None:
        super().__init__()
        self._conn = conn

    def send_frame(self, frame: bytes) -> None:
        self._conn.send_bytes(frame)
        self.bytes_sent += len(frame)

    def recv_frame(self) -> bytes:
        frame = self._conn.recv_bytes()
        self.bytes_received += len(frame)
        return frame

    def close(self) -> None:
        self._conn.close()


class SocketTransport(Transport):
    """Blocking TCP client socket to one worker's asyncio server.

    Frames are cut back out of the stream with the wire header's
    length field.  ``peer`` exposes the worker's ``(host, port)`` so
    out-of-band clients (:class:`~repro.serve.aio.AsyncWorkerClient`)
    can reach the same worker.
    """

    name = "socket"
    locality = "remote"

    def __init__(self, sock: socket.socket, host_key: str) -> None:
        super().__init__()
        self._sock = sock
        self.host_key = host_key
        self.peer: Tuple[str, int] = sock.getpeername()[:2]

    def send_frame(self, frame: bytes) -> None:
        self._sock.sendall(frame)
        self.bytes_sent += len(frame)

    def _recv_exact(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(min(remaining, 1 << 20))
            if not chunk:
                raise EOFError("worker closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv_frame(self) -> bytes:
        header = self._recv_exact(HEADER_SIZE)
        body = self._recv_exact(frame_size(header) - HEADER_SIZE)
        self.bytes_received += HEADER_SIZE + len(body)
        return header + body

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


# -- worker-side listeners ------------------------------------------------
class Listener:
    """Worker-side serve loop over one transport flavor."""

    def serve(self, handler: FrameHandler) -> None:
        raise NotImplementedError


class PipeListener(Listener):
    """Synchronous request/reply loop over the worker's pipe end —
    byte-for-byte the loop workers always ran (FIFO: everything queued
    before a stop is answered, then the process exits)."""

    def __init__(self, conn: Any) -> None:
        self._conn = conn

    def serve(self, handler: FrameHandler) -> None:
        conn = self._conn
        try:
            while True:
                try:
                    frame = conn.recv_bytes()
                except (EOFError, OSError):
                    break
                # A frame the handler cannot even decode is protocol
                # corruption — dying (like a torn pipe always did) is
                # safer than guessing; the parent sweeps the shard.
                reply, after_send, stop = handler(frame)
                conn.send_bytes(reply)
                if after_send is not None:
                    after_send()
                if stop:
                    break
        finally:
            try:
                conn.close()
            except Exception:  # noqa: BLE001 - teardown best effort
                pass


class SocketListener(Listener):
    """Asyncio TCP server on the worker side.

    Binds an ephemeral port on ``host``, reports ``("ready", host,
    port)`` over the one-shot bootstrap pipe, then serves connections
    until a ``stop`` op arrives (its reply is flushed first, so the
    parent's drain semantics match the pipe exactly).  Dispatch runs
    synchronously on the loop — one worker process serves one batch at
    a time regardless of how many connections are open, which is the
    same serialization the pipe gave for free.
    """

    def __init__(self, host: str, bootstrap: Any) -> None:
        self._host = host
        self._bootstrap = bootstrap

    def serve(self, handler: FrameHandler) -> None:
        asyncio.run(self._serve(handler))

    async def _serve(self, handler: FrameHandler) -> None:
        stopping = asyncio.Event()

        async def serve_connection(reader, writer) -> None:
            try:
                while True:
                    try:
                        header = await reader.readexactly(HEADER_SIZE)
                        body = await reader.readexactly(
                            frame_size(header) - HEADER_SIZE
                        )
                    except (asyncio.IncompleteReadError,
                            ConnectionError):
                        return
                    try:
                        reply, after_send, stop = handler(header + body)
                    except Exception:  # noqa: BLE001 - corrupt frame
                        # Undecodable bytes mean the stream is torn;
                        # stop the worker so the parent sweeps it,
                        # mirroring the pipe's death-on-corruption.
                        stopping.set()
                        return
                    writer.write(reply)
                    try:
                        await writer.drain()
                    except ConnectionError:
                        return
                    if after_send is not None:
                        after_send()
                    if stop:
                        stopping.set()
                        return
            finally:
                writer.close()

        server = await asyncio.start_server(
            serve_connection, host=self._host, port=0
        )
        port = server.sockets[0].getsockname()[1]
        try:
            self._bootstrap.send(("ready", self._host, port))
        finally:
            self._bootstrap.close()
        async with server:
            await stopping.wait()


# -- worker spawn factories ----------------------------------------------
class WorkerFactory:
    """Spawns one worker process and returns the parent-side channel.

    ``spawn`` returns ``(process, transport)``; the worker is already
    serving when it returns.  ``locality``/``name`` mirror the
    transport's and drive the service's shipment decisions.
    """

    name = "worker-factory"
    locality = "local"

    def spawn(self, ctx: Any, shard_id: int,
              seed: Optional[int]) -> Tuple[Any, Transport]:
        raise NotImplementedError


class PipeWorkerFactory(WorkerFactory):
    """Today's flow: duplex pipe, child end handed to the worker."""

    name = "pipe"
    locality = "local"

    def spawn(self, ctx: Any, shard_id: int,
              seed: Optional[int]) -> Tuple[Any, Transport]:
        from repro.serve.cluster.worker import worker_main

        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=worker_main,
            args=(child_conn, shard_id, seed),
            name=f"repro-serve-shard-{shard_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return process, PipeTransport(parent_conn)


class SocketWorkerFactory(WorkerFactory):
    """TCP worker: ephemeral-port rendezvous over a bootstrap pipe.

    The factory is the template for true multi-host serving — here the
    worker is still a local child (the test matrix runs it against
    ``127.0.0.1``), but the parent side only ever sees a connected
    socket, so pointing ``spawn`` at a remote launcher changes nothing
    above this layer.
    """

    name = "socket"
    locality = "remote"

    def __init__(self, host: str = "127.0.0.1",
                 connect_timeout_s: float = 30.0) -> None:
        self.host = host
        self.connect_timeout_s = connect_timeout_s

    def spawn(self, ctx: Any, shard_id: int,
              seed: Optional[int]) -> Tuple[Any, Transport]:
        from repro.serve.cluster.worker import worker_main

        boot_recv, boot_send = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=worker_main,
            args=(boot_send, shard_id, seed, "socket", self.host),
            name=f"repro-serve-shard-{shard_id}",
            daemon=True,
        )
        process.start()
        boot_send.close()
        try:
            if not boot_recv.poll(self.connect_timeout_s):
                raise RuntimeError(
                    f"shard {shard_id} did not report its port within "
                    f"{self.connect_timeout_s:.0f}s"
                )
            tag, host, port = boot_recv.recv()
            if tag != "ready":
                raise RuntimeError(
                    f"shard {shard_id} sent a bad bootstrap message: "
                    f"{tag!r}"
                )
        except BaseException:
            try:
                process.terminate()
            except Exception:  # noqa: BLE001
                pass
            process.join(timeout=5.0)
            raise
        finally:
            boot_recv.close()
        sock = socket.create_connection(
            (host, port), timeout=self.connect_timeout_s
        )
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return process, SocketTransport(sock, host_key=self.host)


def make_worker_transport(spec: Any) -> WorkerFactory:
    """Resolve a transport spec to a :class:`WorkerFactory`.

    Accepts a factory instance (the pluggable path) or one of
    :data:`TRANSPORTS`.
    """
    if isinstance(spec, WorkerFactory):
        return spec
    if spec == "pipe":
        return PipeWorkerFactory()
    if spec == "socket":
        return SocketWorkerFactory()
    raise ValueError(
        f"transport must be one of {TRANSPORTS} or a WorkerFactory "
        f"instance, not {spec!r}"
    )
