"""Elastic sharded multi-process serving tier on top of
:mod:`repro.serve`.

* :mod:`~repro.serve.cluster.wire` — the versioned, length-prefixed
  binary wire protocol every parent<->worker exchange speaks (one
  codec, shared by all transports);
* :mod:`~repro.serve.cluster.transport` — how frames move:
  ``PipeTransport`` (the zero-regression default) and
  ``SocketTransport`` (asyncio TCP server on the worker side), plus
  the worker-spawn factories;
* :mod:`~repro.serve.cluster.shm` — zero-copy shipping of flat tree
  arrays to workers through ``multiprocessing.shared_memory``, content
  and transport hashes verified on reconstruct (and re-verified when a
  replacement replica re-attaches during log replay); socket fleets
  add a host-level artifact cache so each host receives each
  artifact's bytes once;
* :mod:`~repro.serve.cluster.worker` — shard process: a full registry /
  metrics / splitter replica answering stacked predict batches and
  reporting its service time with every reply;
* :mod:`~repro.serve.cluster.router` — pluggable flush-group routing:
  least-loaded (EWMA service time x in-flight) by default, round-robin
  as baseline, hash affinity as an override;
* :mod:`~repro.serve.cluster.autoscale` — :class:`Autoscaler` grows and
  shrinks the fleet from the adaptive-delay fill estimate, queue depth,
  and a p95 SLO;
* :mod:`~repro.serve.cluster.service` — :class:`ShardedPolicyService`,
  the front door: front-end microbatching, load-aware routing, bulk
  ``submit_batch``, self-healing shard replacement by control-log
  replay, cluster-level metrics aggregation, canary and shadow splits
  broadcast to every shard.
"""

from repro.serve.cluster.autoscale import (
    Autoscaler,
    AutoscaleConfig,
    AutoscaleSignals,
)
from repro.serve.cluster.router import (
    LeastLoadedRouter,
    RoundRobinRouter,
    Router,
    make_router,
)
from repro.serve.cluster.service import ShardedPolicyService
from repro.serve.cluster.shm import (
    ShmArtifactHandle,
    load_shared_artifact,
    segment_footprint,
    share_artifact,
)
from repro.serve.cluster.transport import (
    TRANSPORTS,
    Listener,
    PipeTransport,
    SocketTransport,
    Transport,
    WorkerFactory,
    make_worker_transport,
)
from repro.serve.cluster.wire import (
    OPS,
    Reply,
    Request,
    WireArtifact,
    WireError,
    decode_frame,
    encode_reply,
    encode_request,
)
from repro.serve.cluster.worker import ERR_SHARD, WorkerCore, serve_stacked

__all__ = [
    "ShardedPolicyService",
    "ShmArtifactHandle",
    "share_artifact",
    "load_shared_artifact",
    "segment_footprint",
    "serve_stacked",
    "ERR_SHARD",
    "WorkerCore",
    "Router",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "make_router",
    "Autoscaler",
    "AutoscaleConfig",
    "AutoscaleSignals",
    "Transport",
    "PipeTransport",
    "SocketTransport",
    "Listener",
    "WorkerFactory",
    "make_worker_transport",
    "TRANSPORTS",
    "Request",
    "Reply",
    "WireArtifact",
    "WireError",
    "OPS",
    "encode_request",
    "encode_reply",
    "decode_frame",
]
