"""Sharded multi-process serving tier on top of :mod:`repro.serve`.

* :mod:`~repro.serve.cluster.shm` — zero-copy shipping of flat tree
  arrays to workers through ``multiprocessing.shared_memory``, content
  hash verified on reconstruct;
* :mod:`~repro.serve.cluster.worker` — shard process: a full registry /
  metrics / splitter replica answering stacked predict batches;
* :mod:`~repro.serve.cluster.service` — :class:`ShardedPolicyService`,
  the front door: front-end microbatching, round-robin/hash routing,
  bulk ``submit_batch``, cluster-level metrics aggregation, canary and
  shadow splits broadcast to every shard.
"""

from repro.serve.cluster.service import ShardedPolicyService
from repro.serve.cluster.shm import (
    ShmArtifactHandle,
    load_shared_artifact,
    share_artifact,
)
from repro.serve.cluster.worker import ERR_SHARD, serve_stacked

__all__ = [
    "ShardedPolicyService",
    "ShmArtifactHandle",
    "share_artifact",
    "load_shared_artifact",
    "serve_stacked",
    "ERR_SHARD",
]
