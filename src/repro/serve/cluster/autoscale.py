"""Shard autoscaling: spawn and retire workers from observed load.

The cluster's capacity knob used to be fixed at construction
(``n_shards=N``) — the scheduling-vs-capacity tradeoff was decided
once, blind to the workload.  :class:`Autoscaler` closes that loop with
the three signals the serving stack already produces:

* the :class:`~repro.serve.adaptive.AdaptiveDelay` **fill estimate** —
  an EWMA of how full each flush ran relative to ``max_batch``, the
  most direct "are the batches saturated?" reading;
* the front-end **queue depth** plus **in-flight groups** — backlog
  that has not even reached a shard yet;
* the client-observed **p95 latency** against a configurable SLO.

Scale-up spawns a fresh worker through the service's lockstep control
plane (``add_shard`` replays the linearized registry log, so the new
replica is byte-identical before it takes traffic); scale-down picks
the least-loaded shard and drains it (no new groups are routed at it,
its in-flight replies complete, then it stops).

The decision rule is the pure function :func:`decide`, unit-testable
without processes; :class:`Autoscaler` is the thin thread that samples
signals, applies cooldown, and records every action in ``events`` (the
benchmarks persist scale-up/down counts into ``BENCH_cluster.json``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class AutoscaleConfig:
    """Autoscaling policy knobs.

    Attributes:
        min_shards / max_shards: capacity bounds (inclusive).
        interval_s: signal sampling period.
        cooldown_s: minimum time between two scaling actions — one
            action must be observable in the signals before the next,
            or the loop flaps.
        scale_up_fill: AdaptiveDelay fill EWMA at or above which the
            batches are considered saturated (scale up).
        scale_down_fill: fill EWMA at or below which the fleet is
            over-provisioned (scale down, if the queue is also empty).
        queue_high_per_shard: front-end backlog per live shard that
            forces a scale-up even when fill is unavailable.
        slo_p95_ms: optional p95 latency SLO; sustained violation
            scales up.
        p95_window_s: sliding time window (seconds) the SLO's p95 is
            computed over.  The default 30s makes the signal track
            *current* load — a cold-start latency spike ages out of
            the window instead of holding the p95 elevated until
            thousands of newer samples dilute it.  None falls back to
            the metrics layer's full count-bounded ring (the pre-PR-6
            reading).
        idle_ticks_down: consecutive idle samples (no queue, nothing
            in flight, no new requests) before scaling down — idleness
            must persist, not flicker.
    """

    min_shards: int = 1
    max_shards: int = 4
    interval_s: float = 0.25
    cooldown_s: float = 2.0
    scale_up_fill: float = 0.75
    scale_down_fill: float = 0.15
    queue_high_per_shard: int = 64
    slo_p95_ms: Optional[float] = None
    p95_window_s: Optional[float] = 30.0
    idle_ticks_down: int = 8

    def __post_init__(self) -> None:
        if self.min_shards < 1:
            raise ValueError("min_shards must be at least 1")
        if self.max_shards < self.min_shards:
            raise ValueError("max_shards must be >= min_shards")
        if self.interval_s <= 0 or self.cooldown_s < 0:
            raise ValueError("intervals must be positive")
        if not 0.0 <= self.scale_down_fill <= self.scale_up_fill <= 1.0:
            raise ValueError(
                "need 0 <= scale_down_fill <= scale_up_fill <= 1"
            )
        if self.p95_window_s is not None and self.p95_window_s <= 0:
            raise ValueError("p95_window_s must be positive (or None)")


@dataclass(frozen=True)
class AutoscaleSignals:
    """One sample of the load signals :func:`decide` rules on.

    ``fill`` is None when the service runs a fixed flush deadline (no
    :class:`AdaptiveDelay` controller); the queue/SLO signals still
    drive scaling then.  ``p95_ms`` is the client-observed p95 over
    the metrics retention window.  ``idle_ticks`` counts consecutive
    samples with an empty queue, nothing in flight, and no new
    requests since the previous sample (maintained by the caller —
    the fill EWMA goes stale when no flushes happen, so idleness
    needs its own clock).
    """

    live_shards: int
    fill: Optional[float] = None
    queue_depth: int = 0
    inflight: int = 0
    p95_ms: float = 0.0
    idle_ticks: int = 0


def decide(
    config: AutoscaleConfig, signals: AutoscaleSignals
) -> Tuple[int, str]:
    """The autoscaling decision rule: ``(+1 | 0 | -1, reason)``.

    Pure — cooldown and actuation live in :class:`Autoscaler`.  Scale
    up wins over scale down when both could fire (capacity mistakes
    are cheaper in the slow direction).
    """
    live = signals.live_shards
    if live < config.min_shards:
        return +1, f"below min_shards ({live} < {config.min_shards})"
    backlog = signals.queue_depth + signals.inflight
    if live < config.max_shards:
        # The fill EWMA and the p95 window only move when requests
        # flow, so on an idle server they freeze at their last
        # (possibly saturated/violating) values — a positive idle-tick
        # count proves no traffic is arriving and overrides both
        # (otherwise one bad burst would scale an idle fleet to max
        # and flap there forever).  Queue depth is a live reading and
        # cannot go stale this way.
        if (signals.idle_ticks == 0 and signals.fill is not None
                and signals.fill >= config.scale_up_fill):
            return +1, (
                f"fill {signals.fill:.2f} >= {config.scale_up_fill:.2f}"
            )
        if signals.queue_depth >= config.queue_high_per_shard * live:
            return +1, (
                f"queue depth {signals.queue_depth} >= "
                f"{config.queue_high_per_shard}/shard x {live}"
            )
        if (signals.idle_ticks == 0 and config.slo_p95_ms is not None
                and signals.p95_ms > config.slo_p95_ms):
            return +1, (
                f"p95 {signals.p95_ms:.2f}ms > SLO "
                f"{config.slo_p95_ms:.2f}ms"
            )
    if live > config.min_shards:
        if signals.idle_ticks >= config.idle_ticks_down:
            return -1, f"idle for {signals.idle_ticks} samples"
        if (signals.fill is not None
                and signals.fill <= config.scale_down_fill
                and backlog == 0
                and (config.slo_p95_ms is None
                     or signals.p95_ms <= config.slo_p95_ms / 2)):
            return -1, (
                f"fill {signals.fill:.2f} <= {config.scale_down_fill:.2f} "
                f"with empty backlog"
            )
    return 0, "steady"


@dataclass
class ScaleEvent:
    """One actuated scaling decision (kept in ``Autoscaler.events``)."""

    action: str  #: "up" or "down"
    reason: str
    live_shards_before: int
    live_shards_after: int
    t_rel_s: float  #: seconds since the autoscaler started
    signals: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "action": self.action,
            "reason": self.reason,
            "live_shards_before": self.live_shards_before,
            "live_shards_after": self.live_shards_after,
            "t_rel_s": self.t_rel_s,
            "signals": dict(self.signals),
        }


class Autoscaler:
    """Background controller that resizes a
    :class:`~repro.serve.cluster.ShardedPolicyService`.

    The service wires one in via ``autoscale=AutoscaleConfig(...)``
    and owns its lifecycle (started after the shards exist, stopped
    first at close).  Each tick samples
    ``service._autoscale_signals()``, maintains the idle-tick counter,
    applies :func:`decide` under cooldown, and actuates through
    ``service.add_shard()`` / ``service.remove_shard()`` — the same
    lockstep control plane every other registry operation uses, so a
    scale-up never races a publish.
    """

    def __init__(self, service: Any, config: AutoscaleConfig,
                 journal: Any = None) -> None:
        self.service = service
        self.config = config
        self.journal = journal
        self.events: List[ScaleEvent] = []
        self.scale_ups = 0
        self.scale_downs = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at = 0.0
        self._last_action_at: Optional[float] = None
        self._last_total_requests: Optional[int] = None
        self._idle_ticks = 0

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "Autoscaler":
        if self._thread is not None:
            return self
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-autoscaler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    # -- control loop ----------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.wait(self.config.interval_s):
            try:
                self._tick()
            except Exception:  # noqa: BLE001 - the loop must survive a
                # racing close(); a broken tick skips, the next samples
                # fresh state.
                if self._stop.is_set():
                    return

    def _tick(self) -> None:
        signals = self._sample()
        if signals is None:
            return
        now = time.monotonic()
        if (self._last_action_at is not None
                and now - self._last_action_at < self.config.cooldown_s):
            return
        delta, reason = decide(self.config, signals)
        if delta == 0:
            return
        before = signals.live_shards
        try:
            if delta > 0:
                self.service.add_shard()
                action = "up"
                self.scale_ups += 1
            else:
                self.service.remove_shard()
                action = "down"
                self.scale_downs += 1
        finally:
            # A failed actuation must also start the cooldown clock: a
            # persistently failing add_shard (fork failure, /dev/shm
            # exhausted during replay) would otherwise retry a full
            # spawn+replay+teardown every interval_s — an unbounded
            # process storm instead of one bounded attempt per cooldown.
            self._last_action_at = time.monotonic()
            self._idle_ticks = 0
        with self._lock:
            self.events.append(ScaleEvent(
                action=action,
                reason=reason,
                live_shards_before=before,
                live_shards_after=before + delta,
                t_rel_s=time.monotonic() - self._started_at,
                signals={
                    "fill": signals.fill,
                    "queue_depth": signals.queue_depth,
                    "inflight": signals.inflight,
                    "p95_ms": signals.p95_ms,
                    "idle_ticks": signals.idle_ticks,
                },
            ))
        if self.journal is not None:
            try:
                self.journal.emit(
                    f"autoscale_{action}", reason=reason,
                    shards_before=before, shards_after=before + delta,
                )
            except Exception:  # noqa: BLE001 - journaling best effort
                pass

    def _sample(self) -> Optional[AutoscaleSignals]:
        raw = self.service._autoscale_signals(
            want_p95=self.config.slo_p95_ms is not None,
            p95_window_s=self.config.p95_window_s,
        )
        if raw is None:
            return None
        total = raw["total_requests"]
        quiet = (
            raw["queue_depth"] == 0
            and raw["inflight"] == 0
            and self._last_total_requests is not None
            and total == self._last_total_requests
        )
        self._idle_ticks = self._idle_ticks + 1 if quiet else 0
        self._last_total_requests = total
        return AutoscaleSignals(
            live_shards=raw["live_shards"],
            fill=raw["fill"],
            queue_depth=raw["queue_depth"],
            inflight=raw["inflight"],
            p95_ms=raw["p95_ms"],
            idle_ticks=self._idle_ticks,
        )

    # -- observability ---------------------------------------------------
    def snapshot(self) -> dict:
        """Monitoring view (merged into ``cluster_metrics()`` and the
        benchmark records)."""
        with self._lock:
            events = [event.as_dict() for event in self.events]
        return {
            "min_shards": self.config.min_shards,
            "max_shards": self.config.max_shards,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "events": events,
        }
