"""Pluggable shard routing for the cluster front end.

PR 4's dispatcher rotated whole flush groups round-robin, which is
blind to two things the parent can observe for free: how many groups
each shard still has in flight, and how long that shard has been
taking to serve one (the worker reports its pure service time with
every reply).  Routing by observed service quality instead of position
is the gateway-selection lesson of the related work: the client sees
enough to avoid the slow replica without any shard-side coordination.

Two routers ship:

* :class:`RoundRobinRouter` — the PR-4 behaviour, kept as the baseline
  the benchmarks compare against;
* :class:`LeastLoadedRouter` — scores each live shard by its expected
  backlog drain time, ``inflight * service_estimate`` (an idle shard
  scores 0 regardless of history — see the class docstring for why
  the new group's own cost must not be charged), and picks the
  minimum.  The estimate is per-(shard, model) when the service has
  observed that model on that shard (PR 6: cheap and expensive models
  on one fleet no longer pollute each other's signal), falling back
  to the shard's aggregate EWMA for unseen models, then to the
  fleet's mean — so a cold shard is neither flooded (a zero estimate
  would win every contest) nor starved.  Ties break round-robin so
  idle fleets still spread.

Hash affinity is *not* a router: it is an override applied by the
dispatcher before routing (a sticky key pins its shard while that
shard lives), and the router only handles the remainder — dead-target
fallback and non-sticky traffic.

Routers are intentionally stateless about shards: they read the
``inflight`` / ``ewma_service_s`` counters the service maintains on
its shard handles, so a replacement shard slots in with no router
bookkeeping to repair.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Union


class Router:
    """Strategy interface: pick one shard for the next flush group.

    ``shards`` is the live candidate list (never empty — the service
    fails the group itself when no shard is alive).  ``ref`` is the
    model reference the group resolves through (None when unknown);
    model-aware routers use it to key per-model service-time signals.
    Implementations read each handle's ``inflight`` (outstanding
    predict groups), ``ewma_service_s`` (EWMA of worker-reported
    service time, 0.0 until the first reply), and ``ewma_by_model``
    (the same signal keyed by requested ref) and must not mutate them.

    Back-compat: routers written against the pre-PR-6 single-argument
    ``select(shards)`` signature still work — the service inspects the
    signature once and calls them without ``ref``.
    """

    name = "router"

    def select(self, shards: Sequence,
               ref: Optional[str] = None) -> Optional[object]:
        raise NotImplementedError

    def snapshot(self) -> dict:
        """Monitoring view (merged into ``cluster_metrics()``)."""
        return {"router": self.name}


class RoundRobinRouter(Router):
    """Rotate groups across live shards in arrival order (the PR-4
    baseline: position-aware, load-blind)."""

    name = "round_robin"

    def __init__(self) -> None:
        self._rr = itertools.count()

    def select(self, shards: Sequence,
               ref: Optional[str] = None) -> Optional[object]:
        if not shards:
            return None
        return shards[next(self._rr) % len(shards)]


class LeastLoadedRouter(Router):
    """Route each group to the shard with the smallest expected drain
    time.

    Score = ``inflight * service_estimate`` — how long the shard needs
    to finish what it already holds before this group could start.  An
    idle shard scores 0 regardless of its history: the estimate must
    not be charged for the *new* group's own cost, because aggregate
    EWMAs mix model costs (a shard that just drained an expensive
    batch would look worse than one actively serving a cheap one, and
    traffic would pile onto the busy shard — exactly the failure the
    router exists to avoid).  Estimate resolution, most specific
    first:

    1. the shard's per-(shard, model) EWMA for the group's ``ref``
       (PR 6 — the sharpest signal when the fleet serves a mix of
       cheap and expensive models);
    2. the shard's aggregate EWMA (a shard that has served *anything*
       has a cost scale even for a ref it has not seen);
    3. the mean of whichever per-model/aggregate estimates the other
       shards have (1.0 relative units when nobody has history, which
       reduces to least-in-flight).

    Ties — the whole fleet idle, typically — fall back to round-robin
    so load spreads instead of dogpiling shard 0.
    """

    name = "least_loaded"

    def __init__(self) -> None:
        self._rr = itertools.count()

    @staticmethod
    def _estimate(shard, ref: Optional[str]) -> float:
        """Shard's best-known service time for ``ref`` (0.0 = unknown).

        Reads via ``getattr`` so router unit tests (and any external
        caller) can use plain attribute doubles without a
        ``ewma_by_model`` dict.
        """
        if ref is not None:
            by_model = getattr(shard, "ewma_by_model", None)
            if by_model:
                per_model = by_model.get(ref, 0.0)
                if per_model > 0:
                    return per_model
        return getattr(shard, "ewma_service_s", 0.0)

    def select(self, shards: Sequence,
               ref: Optional[str] = None) -> Optional[object]:
        if not shards:
            return None
        if len(shards) == 1:
            return shards[0]
        estimates = [self._estimate(shard, ref) for shard in shards]
        known = [est for est in estimates if est > 0]
        baseline = (sum(known) / len(known)) if known else 1.0
        scores: List[float] = []
        for shard, estimate in zip(shards, estimates):
            if estimate <= 0:
                estimate = baseline
            scores.append(shard.inflight * estimate)
        best = min(scores)
        candidates = [
            shard for shard, score in zip(shards, scores) if score == best
        ]
        if len(candidates) == 1:
            return candidates[0]
        return candidates[next(self._rr) % len(candidates)]


#: Routing specs ``ShardedPolicyService(routing=...)`` accepts.  "hash"
#: is handled by the dispatcher (affinity override) with a
#: least-loaded router underneath for fallback traffic.
ROUTINGS = ("round_robin", "hash", "least_loaded")


def make_router(spec: Union[str, Router]) -> Router:
    """Build the router behind a routing spec.

    Accepts a :class:`Router` instance (used as-is — the pluggable
    path) or one of :data:`ROUTINGS`.
    """
    if isinstance(spec, Router):
        return spec
    if spec == "round_robin":
        return RoundRobinRouter()
    if spec in ("least_loaded", "hash"):
        return LeastLoadedRouter()
    raise ValueError(
        f"routing must be one of {ROUTINGS} or a Router instance, "
        f"not {spec!r}"
    )
