"""Shared-memory transport for :class:`PolicyArtifact` flat arrays.

Shipping a published tree to N worker processes by pickling would copy
the arrays N times and leave N private heaps holding identical bytes.
The flat-tree layout (PR 1) makes a better contract possible: every
servable tree is already a handful of contiguous numpy arrays, so the
parent packs them **once** into a ``multiprocessing.shared_memory``
segment and workers map numpy views directly onto that segment —
zero-copy reconstruct, one physical copy of every model no matter how
many shards serve it.

Integrity is verified twice on the worker side before anything can
serve: the artifact's ``content_hash`` (the decision-identity hash over
the split/value arrays) must match what the parent published, and a
``transport_hash`` computed over **all** shipped arrays — including the
``n_samples``/``impurity`` statistics the content hash does not cover —
must match the mapped bytes.  A torn or corrupted segment can never
answer traffic.

Lifecycle: the parent owns the segment (it unlinks at service close);
workers only attach and close, and never unlink or unregister — the
resource tracker is shared across the process tree, so the parent's
single ``unlink()`` is the one true cleanup.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.tree.flat import FlatTree
from repro.serve.artifact import PolicyArtifact, _hash_arrays

#: FlatTree fields shipped through the segment, in layout order.
FLAT_FIELDS = (
    "feature", "threshold", "children_left", "children_right",
    "value", "n_samples", "impurity",
)

_ALIGN = 16  # keep every array slice aligned for numpy views


@dataclass(frozen=True)
class SharedArraySpec:
    """Placement of one flat array inside the segment."""

    field: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape)))


@dataclass(frozen=True)
class ShmArtifactHandle:
    """Everything a worker needs to rebuild one published artifact.

    The handle itself travels over the control pipe (it is tiny); the
    arrays it points at live in the shared segment ``shm_name``.
    """

    shm_name: str
    name: str
    kind: str
    n_features: int
    n_outputs: int
    content_hash: str
    source: Optional[str]
    meta: Dict[str, Any]
    arrays: Tuple[SharedArraySpec, ...]
    total_bytes: int
    #: Hash over ALL shipped arrays (content_hash covers only the
    #: decision-relevant ones); verified against the mapped bytes.
    transport_hash: str = ""


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def share_artifact(
    artifact: PolicyArtifact,
) -> Tuple[ShmArtifactHandle, shared_memory.SharedMemory]:
    """Pack ``artifact``'s flat arrays into a new shared-memory segment.

    Only tree artifacts carry flat arrays; teacher/function artifacts
    have live Python state and must travel by pickle instead.  Returns
    the handle plus the parent's segment object — the caller owns the
    segment and must keep it referenced until every worker has loaded
    it, then ``close()`` + ``unlink()`` it at teardown.
    """
    flat = artifact.flat
    if flat is None:
        raise TypeError(
            f"artifact {artifact.name!r} (kind {artifact.kind!r}) has no "
            f"flat arrays to share; only tree artifacts use the "
            f"shared-memory path"
        )
    specs = []
    arrays = []
    offset = 0
    for field in FLAT_FIELDS:
        arr = np.ascontiguousarray(getattr(flat, field))
        offset = _aligned(offset)
        specs.append(SharedArraySpec(
            field=field, dtype=str(arr.dtype), shape=arr.shape,
            offset=offset,
        ))
        arrays.append(arr)
        offset += arr.nbytes
    total = max(offset, 1)
    shm = shared_memory.SharedMemory(create=True, size=total)
    for spec, arr in zip(specs, arrays):
        view = np.ndarray(
            spec.shape, dtype=spec.dtype, buffer=shm.buf,
            offset=spec.offset,
        )
        view[...] = arr
    handle = ShmArtifactHandle(
        shm_name=shm.name,
        name=artifact.name,
        kind=artifact.kind,
        n_features=artifact.n_features,
        n_outputs=artifact.n_outputs,
        content_hash=artifact.content_hash,
        source=artifact.source,
        meta=dict(artifact.meta),
        arrays=tuple(specs),
        total_bytes=total,
        transport_hash=_hash_arrays(arrays),
    )
    return handle, shm


def host_cache_segment_name(token: str, key: str) -> str:
    """Name of the host-level artifact-cache segment for one wire key.

    Deterministic given the service's cache token and the artifact's
    transport-hash key, so the parent can ship ``payload=None`` for a
    key a host already holds and every worker on that host attaches to
    the same segment by name — one physical copy per (host, artifact)
    no matter how many shards or heal-replays reference it.  The token
    scopes names to one service instance (two services publishing the
    same artifact must not collide), and the whole name stays under
    the 31-character POSIX-portable shm limit.
    """
    return f"rhc_{token}_{key[:16]}"


def create_filled_segment(
    name: str, payload: bytes
) -> shared_memory.SharedMemory:
    """Create a named segment holding ``payload`` (host-cache fill).

    The first worker on a host to receive an artifact's bytes calls
    this; the parent serializes publishes under its control lock, so
    the create-by-name never races another creator for the same key.
    The caller closes its mapping; the segment itself lives until the
    parent (the lifetime owner, exactly as with anonymous segments)
    unlinks it when the last version referencing the key retires.
    """
    segment = shared_memory.SharedMemory(
        name=name, create=True, size=max(len(payload), 1)
    )
    segment.buf[:len(payload)] = payload
    return segment


def ensure_tracker_running() -> None:
    """Start the multiprocessing resource tracker in *this* process.

    The parent must call this before forking workers: a tracker forked
    into existence by a worker's first ``SharedMemory`` attach would be
    private to that worker and would unlink the parent's live segments
    when the worker exits.  Starting it up front makes every fork child
    share the parent's tracker, whose cache is a set — duplicate
    attach-registrations collapse and the parent's single ``unlink()``
    is the one cleanup.
    """
    from multiprocessing import resource_tracker

    resource_tracker.ensure_running()


def unregister_segment(shm: shared_memory.SharedMemory) -> None:
    """Drop one attach-registration from this process's tracker.

    Only correct when the worker has a *private* tracker (spawn start
    method): there, the attach registered the segment with a tracker
    the parent does not share, and leaving it would make the worker's
    tracker unlink a segment the parent still owns.  Under fork the
    tracker is shared and this must NOT be called.
    """
    from multiprocessing import resource_tracker

    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # noqa: BLE001 - best effort, platform-dependent
        pass


def segment_footprint(segments: Dict[Tuple[str, int], Any]) -> dict:
    """Memory accounting for a ``(name, version) -> SharedMemory`` map.

    The parent owns one segment per live tree version (retire releases
    them), so this is the cluster's resident model-memory story in two
    numbers — surfaced through ``cluster_metrics()`` so capacity
    planning can see artifact memory next to throughput.  Replacement
    replicas re-attach these same segments during log replay (the
    handle's ``transport_hash`` re-verifies the mapped bytes), which
    is why the parent must keep them alive for as long as the version
    lives, not just until the initial broadcast.
    """
    return {
        "n_segments": len(segments),
        "total_bytes": int(sum(shm.size for shm in segments.values())),
    }


def load_shared_artifact(
    handle: ShmArtifactHandle,
    private_tracker: bool = False,
) -> Tuple[PolicyArtifact, shared_memory.SharedMemory]:
    """Worker side: map the segment and rebuild the artifact zero-copy.

    The returned views are read-only (a worker bug cannot corrupt its
    siblings' model) and the content hash is re-verified over the
    mapped bytes before anything can serve.  The caller must keep the
    returned segment object alive as long as the artifact serves, and
    ``close()`` (never ``unlink()``) it afterwards.  Set
    ``private_tracker`` when this process does not share the segment
    owner's resource tracker (spawn-started workers).
    """
    shm = shared_memory.SharedMemory(name=handle.shm_name)
    if private_tracker:
        unregister_segment(shm)
    views = {}
    for spec in handle.arrays:
        view = np.ndarray(
            spec.shape, dtype=spec.dtype, buffer=shm.buf,
            offset=spec.offset,
        )
        view.flags.writeable = False
        views[spec.field] = view
    if handle.transport_hash:
        mapped = _hash_arrays([views[spec.field]
                               for spec in handle.arrays])
        if mapped != handle.transport_hash:
            shm.close()
            raise RuntimeError(
                f"shared artifact {handle.name!r} failed transport-hash "
                f"verification: expected {handle.transport_hash}, "
                f"mapped bytes hash to {mapped}"
            )
    flat = FlatTree(**views)
    artifact = PolicyArtifact.from_flat(
        flat,
        name=handle.name,
        kind=handle.kind,
        n_features=handle.n_features,
        source=handle.source,
        meta=handle.meta,
    )
    if artifact.content_hash != handle.content_hash:
        shm.close()
        raise RuntimeError(
            f"shared artifact {handle.name!r} failed content-hash "
            f"verification: expected {handle.content_hash}, mapped "
            f"bytes hash to {artifact.content_hash}"
        )
    return artifact, shm
