"""Sharded multi-process policy serving — the elastic cluster tier.

:class:`ShardedPolicyService` scales the PR-3 serving stack past the
GIL: N worker processes each hold a full registry replica (model arrays
shared zero-copy through :mod:`repro.serve.cluster.shm`), a front-end
microbatcher coalesces single-state requests exactly like the
single-process server, and whole flush groups ship to shards as stacked
arrays — one IPC message per group, never per request.

Since PR 5 the fan-out is *elastic* rather than static:

* **load-aware routing** — flush groups are placed by a pluggable
  :class:`~repro.serve.cluster.router.Router` (default: least expected
  drain time from each shard's in-flight count and EWMA service time);
  hash affinity remains available as an override, and round-robin as
  the measurable baseline;
* **shard autoscaling** — an optional
  :class:`~repro.serve.cluster.autoscale.Autoscaler` watches the
  adaptive-delay fill estimate, front-end queue depth, and p95 latency
  against an SLO, and grows/shrinks the fleet through
  :meth:`add_shard` / :meth:`remove_shard`;
* **resilient republish** — every control operation is appended to a
  linearized **control log**; when a shard dies (and ``self_heal`` is
  on) a replacement is spawned and the log is replayed into it —
  publishes re-attach the parent-owned shared-memory segments by
  transport hash, retired versions replay as tombstones so numbering
  never shifts, and splits/aliases restore routing state — so capacity
  returns without a restart and without a byte of divergence
  (:meth:`replica_states` proves it).

Since PR 6 the worker protocol is explicit and the channel pluggable:
messages travel as versioned wire frames
(:mod:`repro.serve.cluster.wire`) over a
:class:`~repro.serve.cluster.transport.Transport` —
``transport="pipe"`` (default, bit-for-bit the old duplex-pipe
behavior) or ``transport="socket"`` (workers run an asyncio TCP
server; the design template for multi-host fleets).  Artifact shipping
is transport-aware: co-located shards attach the parent's shm segments
by transport hash as before, while socket shards receive the raw
artifact bytes **once per host** into a named host-level cache segment
keyed by transport hash — later publishes and heal-replays of the same
bytes ship only the key, and workers attach to the cached copy.

What the parent keeps:

* a **mirror registry** — publishes validate and version here first, so
  version numbers are authoritative and `retire`'s refusal paths run
  before anything is broadcast;
* the **control log** — the single linearized history replay works
  from;
* **end-to-end metrics** — client-observed latency (queue + IPC +
  service) per model, the cluster-level percentiles; each worker also
  keeps its own service-time metrics, surfaced via
  :meth:`cluster_metrics`;
* the **shared-memory segments** — the parent owns their lifetime
  (replay re-attaches them) and unlinks them at close.

Guarantees carried over from the single-process stack: zero dropped
futures (close() drains, shard death fails pending requests with a
structured ``shard_error`` result instead of hanging them), atomic
hot-swap at flush granularity, per-request structured errors, and
shadow answers that never reach a client future.
"""

from __future__ import annotations

import hashlib
import inspect
import itertools
import multiprocessing as mp
import pickle
import secrets
import threading
import time
from concurrent.futures import Future
from dataclasses import replace as dataclass_replace
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.serve.adaptive import AdaptiveDelay, batching_state
from repro.serve.artifact import PolicyArtifact
from repro.serve.batcher import (
    MicroBatcher,
    ServeResult,
    _Request,
    coerce_state_row,
)
from repro.serve.cluster.autoscale import AutoscaleConfig, Autoscaler
from repro.serve.cluster.router import Router, make_router
from repro.serve.cluster.shm import (
    ensure_tracker_running,
    host_cache_segment_name,
    segment_footprint,
    share_artifact,
)
from repro.serve.cluster.transport import (
    Transport,
    WorkerFactory,
    make_worker_transport,
)
from repro.serve.cluster.wire import (
    Reply,
    Request as WireRequest,
    WireArtifact,
    WireError,
    decode_frame,
    encode_request,
)
from repro.obs.events import EventJournal
from repro.obs.metrics import MetricsHub, render_text, with_labels
from repro.obs.postmortem import FlightRecorder
from repro.obs.trace import Tracer
from repro.serve.cluster.worker import ERR_SHARD
from repro.serve.registry import ModelRegistry, control_state_digest
from repro.serve.server import (
    ServeError,
    ServerMetrics,
    register_serving_collectors,
)
from repro.serve.splitter import (
    TrafficSplit,
    TrafficSplitter,
    check_split_targets,
    guard_retire_against_splits,
    split_state,
)
from repro.utils.rng import SeedLike

_RPC_TIMEOUT_S = 60.0

#: EWMA weight for folding each worker-reported batch service time into
#: its shard's estimate (what the least-loaded router scores by).
_SERVICE_EWMA_ALPHA = 0.3


def _select_takes_ref(router: Router) -> bool:
    """Whether ``router.select`` accepts the routed reference.

    The Router interface grew ``select(shards, ref=None)`` for
    per-model load estimates; custom routers written against the old
    one-argument surface must keep working, so the service inspects
    the signature once and calls accordingly.
    """
    try:
        parameters = inspect.signature(router.select).parameters
    except (TypeError, ValueError):
        return True
    if any(p.kind in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
           for p in parameters.values()):
        return True
    return "ref" in parameters or len(parameters) >= 2


class _ArtifactShipment:
    """Transport-neutral record of one published artifact's bytes.

    Control-log publish entries store one of these instead of a
    concrete payload: at broadcast/replay time the service resolves it
    per shard — the shm handle (or pickled bytes) for co-located
    shards, a :class:`WireArtifact` for remote ones, with the raw
    bytes included only for hosts that don't hold the key yet.  The
    parent's own segment (kept in ``_segments`` for the version's
    life) doubles as the byte source for late remote replays, so
    nothing is serialized twice.
    """

    __slots__ = ("handle", "shm", "pickled", "key", "segment",
                 "wire_handle", "kernel_hash")

    def __init__(self, handle, shm, pickled, cache_token: str) -> None:
        self.handle = handle
        self.shm = shm
        self.pickled = pickled
        # Compiled-kernel provenance travels in the handle's meta; the
        # hash is what keys the .so in every host's kernel cache.
        self.kernel_hash = ""
        if handle is not None:
            kernel_meta = handle.meta.get("kernel") or {}
            self.kernel_hash = kernel_meta.get("hash") or ""
        if handle is not None:
            self.key = handle.transport_hash
        elif pickled is not None:
            self.key = hashlib.sha256(pickled).hexdigest()[:16]
        else:
            self.key = None
        if self.key is not None:
            self.segment = host_cache_segment_name(cache_token, self.key)
            self.wire_handle = (
                dataclass_replace(handle, shm_name=self.segment)
                if handle is not None else None
            )
        else:
            self.segment = None
            self.wire_handle = None

    def wire_bytes(self) -> bytes:
        """The raw bytes a remote host's cache segment is filled
        with: the parent segment's contents for trees, the pickle
        otherwise."""
        if self.shm is not None:
            return bytes(self.shm.buf)
        return self.pickled

    def kernel_bytes(self) -> Optional[bytes]:
        """The compiled kernel's ``.so`` bytes for shipping, if any.

        Read from the parent's kernel cache at broadcast/replay time
        (not pinned at publish) so late replays still find them; a
        pruned or never-compiled kernel returns None and the remote
        worker compiles for itself or serves numpy.
        """
        if not self.kernel_hash:
            return None
        from repro.core.tree import native

        return native.kernel_bytes(self.kernel_hash)


class _Shard:
    """Parent-side handle for one worker process.

    ``inflight`` (outstanding predict groups, maintained under the
    service's pending lock) and ``ewma_service_s`` (EWMA of the
    worker's reported batch service time) are load signals the router
    reads; ``ewma_by_model`` refines the latter per requested
    reference, so least-loaded scoring is not skewed by mixed model
    costs (the aggregate stays as fallback for unseen models).
    ``draining`` marks a shard being gracefully removed: still alive —
    its in-flight replies complete — but no longer routable.
    """

    __slots__ = ("shard_id", "process", "transport", "send_lock",
                 "alive", "reader", "inflight", "ewma_service_s",
                 "ewma_by_model", "draining")

    def __init__(self, shard_id: int, process,
                 transport: Transport) -> None:
        self.shard_id = shard_id
        self.process = process
        self.transport = transport
        self.send_lock = threading.Lock()
        self.alive = True
        self.reader: Optional[threading.Thread] = None
        self.inflight = 0
        self.ewma_service_s = 0.0
        self.ewma_by_model: Dict[str, float] = {}
        self.draining = False

    def send(self, msg_id: int, op: str, payload, trace=None) -> None:
        """Encode and ship one request frame (sends serialized — two
        threads interleaving a socket write would tear the stream).
        ``trace`` rides in the optional v2 wire field; leaving it None
        keeps the frame byte-identical to the v1 encoding."""
        frame = encode_request(WireRequest(msg_id, op, payload, trace=trace))
        with self.send_lock:
            self.transport.send_frame(frame)

    def observe_service(self, ref: str, service_s: float) -> None:
        """Fold one worker-reported batch service time into the
        aggregate and per-model EWMAs (called from the reader thread;
        routers read these without locks — float/dict stores are
        atomic under the GIL)."""
        if self.ewma_service_s > 0.0:
            self.ewma_service_s += _SERVICE_EWMA_ALPHA * (
                service_s - self.ewma_service_s
            )
        else:
            self.ewma_service_s = service_s
        previous = self.ewma_by_model.get(ref, 0.0)
        if previous > 0.0:
            self.ewma_by_model[ref] = previous + _SERVICE_EWMA_ALPHA * (
                service_s - previous
            )
        else:
            self.ewma_by_model[ref] = service_s


class _PredictJob:
    """Pending per-request flush group shipped to one shard."""

    __slots__ = ("requests", "shard_id")

    def __init__(self, requests: List[_Request], shard_id: int) -> None:
        self.requests = requests
        self.shard_id = shard_id


class _BulkChunk:
    """One shard's slice of a bulk submit_batch call."""

    __slots__ = ("job", "offset", "size", "shard_id")

    def __init__(self, job: "_BulkJob", offset: int, size: int,
                 shard_id: int) -> None:
        self.job = job
        self.offset = offset
        self.size = size
        self.shard_id = shard_id


class _BulkJob:
    """Aggregated future over all chunks of one submit_batch call."""

    __slots__ = ("future", "results", "outstanding", "lock", "enqueued",
                 "model")

    def __init__(self, n_rows: int, n_chunks: int, model: str) -> None:
        self.future: Future = Future()
        self.results: List[Optional[ServeResult]] = [None] * n_rows
        self.outstanding = n_chunks
        self.lock = threading.Lock()
        self.enqueued = time.perf_counter()
        #: Requested reference — failure results and metrics must
        #: attribute to it, not to a placeholder.
        self.model = model

    def chunk_done(self) -> None:
        with self.lock:
            self.outstanding -= 1
            done = self.outstanding == 0
        if done:
            self.future.set_result(list(self.results))


class _Control:
    """Pending control RPC (publish/metrics/...)."""

    __slots__ = ("event", "ok", "result", "shard_id")

    def __init__(self, shard_id: int) -> None:
        self.event = threading.Event()
        self.ok = False
        self.result: Any = None
        self.shard_id = shard_id


class _ClusterDispatcher(MicroBatcher):
    """Front-end batcher whose flush ships groups to shards.

    Inherits the queue/gather/close machinery (including the adaptive
    deadline and the zero-dropped-futures drain); only the flush is
    replaced — instead of predicting locally it stacks each reference's
    rows and hands the group to the service for routing.
    """

    def __init__(self, service: "ShardedPolicyService", **kwargs) -> None:
        super().__init__(service.registry, metrics=service._metrics,
                         **kwargs)
        self._service = service

    def _flush(self, batch: List[_Request]) -> None:
        # Parent-side validation is the artifact-independent half: the
        # worker owns the feature-count and finiteness checks (it knows
        # the artifact); the parent only guarantees numeric 1-D rows.
        self._note_flush(batch)
        by_ref: Dict[str, List[_Request]] = {}
        for request in batch:
            row, error, detail = coerce_state_row(request.state)
            if error is not None:
                self._complete_error(request, request.model, 0, error,
                                     detail)
                continue
            request.row = row
            by_ref.setdefault(request.model, []).append(request)
        for ref, requests in by_ref.items():
            # Rows of unequal length cannot stack; ship each length as
            # its own sub-group and let the worker's feature-count check
            # reject the wrong ones individually.
            by_len: Dict[int, List[_Request]] = {}
            for request in requests:
                by_len.setdefault(request.row.shape[0], []).append(request)
            for group in by_len.values():
                self._service._dispatch_group(ref, group)


class ShardedPolicyService:
    """Elastic multi-process serving front door (same surface as
    PolicyServer).

    Args:
        n_shards: initial worker process count (the autoscaler, if
            configured, moves it within its ``min_shards`` /
            ``max_shards`` bounds afterwards).
        registry: parent mirror registry (fresh one by default).
        max_batch / max_delay_s: front-end microbatching knobs.
        adaptive_delay: use a load-aware flush deadline capped at
            ``max_delay_s`` (recommended for mixed load; also the
            autoscaler's primary fill signal).
        routing: ``"least_loaded"`` (default) scores shards by expected
            drain time — in-flight groups x EWMA service time, an idle
            shard scoring 0; ``"round_robin"`` rotates whole flush
            groups; ``"hash"``
            routes each request by a stable hash of its state (shard
            affinity for cache-warm models) with least-loaded fallback
            for dead targets.  A :class:`Router` instance plugs in a
            custom strategy.
        self_heal: respawn a replacement worker when a shard dies and
            replay the control log into it, so capacity returns without
            a restart.  Off by default: a chaos test usually wants to
            observe the degraded state, and production wants this True.
        autoscale: optional :class:`AutoscaleConfig`; when given, an
            :class:`Autoscaler` thread resizes the fleet from observed
            load (see :mod:`repro.serve.cluster.autoscale`).
        split_seed: base seed for per-worker canary assignment RNGs
            (each shard derives an independent child seed).
        start_method: multiprocessing start method; default prefers
            ``fork`` (instant, shares the imported interpreter) and
            falls back to the platform default.
        transport: how frames reach the workers — ``"pipe"`` (default:
            duplex ``multiprocessing`` pipes, shm artifact handles,
            bit-for-bit the pre-transport behavior) or ``"socket"``
            (workers serve wire frames over TCP; artifacts ship as
            bytes once per host into the host-level cache).  A
            :class:`~repro.serve.cluster.transport.WorkerFactory`
            instance plugs in a custom transport.
        trace_sample: fraction of front-end requests to trace across
            the whole pipeline (queue-wait / batch-assembly / wire /
            worker-service / kernel spans); 0 disables tracing.
        exporter_port: when not None, start the observability HTTP
            exporter (``/metrics``, ``/traces``, ``/healthz``) on this
            port at construction (0 = ephemeral).  ``/metrics`` merges
            the parent hub with every live worker's hub snapshot under
            per-shard labels.

    Usage::

        with ShardedPolicyService(n_shards=2, self_heal=True) as service:
            service.publish("abr", PolicyArtifact.from_tree(tree))
            result = service.submit("abr", state).result()
            actions = [r.action for r in
                       service.predict_batch("abr", states)]
    """

    def __init__(
        self,
        n_shards: int = 2,
        registry: Optional[ModelRegistry] = None,
        max_batch: int = 128,
        max_delay_s: float = 1e-3,
        max_latency_samples: int = 200_000,
        adaptive_delay: bool = False,
        routing: Union[str, Router] = "least_loaded",
        self_heal: bool = False,
        autoscale: Optional[AutoscaleConfig] = None,
        split_seed: SeedLike = None,
        start_method: Optional[str] = None,
        transport: Union[str, WorkerFactory] = "pipe",
        trace_sample: float = 0.0,
        exporter_port: Optional[int] = None,
        postmortem_dir: Optional[str] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        #: Hash affinity is an override applied before routing; the
        #: router underneath handles fallback and non-sticky traffic.
        self._hash_affinity = routing == "hash"
        self._router = make_router(routing)
        self.routing = routing if isinstance(routing, str) else routing.name
        # Custom routers predating per-model routing define
        # ``select(self, shards)``; detect the old arity once so they
        # keep working unchanged next to ref-aware routers.
        self._router_takes_ref = _select_takes_ref(self._router)
        self._worker_transport = make_worker_transport(transport)
        self.transport = self._worker_transport.name
        # Validate the batcher knobs *before* anything spawns; the
        # dispatcher would reject them anyway, but only after worker
        # processes exist.
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_delay_s < 0:
            raise ValueError("max_delay_s must be non-negative")
        self.n_shards = n_shards
        self.self_heal = bool(self_heal)
        self.registry = registry if registry is not None else ModelRegistry()
        self.hub = MetricsHub()
        self.tracer = Tracer(sample_rate=trace_sample)
        #: The cluster's merged flight log: parent-side control and
        #: lifecycle events land here directly; worker journals are
        #: drained over the ``events_since`` op and re-sequenced in
        #: under a ``shard`` label (see :meth:`events`).
        self.journal = EventJournal(hub=self.hub)
        self.registry.journal = self.journal
        #: Per-shard high-water mark of drained worker event seqs.
        self._worker_event_seq: Dict[int, int] = {}
        self._events_lock = threading.Lock()
        #: Parent-side trace-capture ring (None until
        #: :meth:`start_online`): worker rings drain into it over the
        #: ``capture_drain`` op under the same per-shard high-water
        #: discipline as the journal.
        self.capture = None
        self._worker_capture_seq: Dict[int, int] = {}
        self._capture_lock = threading.Lock()
        self._metrics = ServerMetrics(max_latency_samples, hub=self.hub)
        self._m_routed = self.hub.counter(
            "repro_router_decisions_total",
            "Flush groups dispatched, per target shard",
        )
        self.exporter = None
        self.health = None
        self.online = None
        #: Black-box capture for shard deaths, publish rollbacks and
        #: page-severity alerts (disabled unless a directory is
        #: configured via the argument or $REPRO_POSTMORTEM_DIR).
        self.recorder = FlightRecorder(
            directory=postmortem_dir,
            journal=self.journal,
            metrics_fn=self.render_metrics,
            tracer=self.tracer,
            state_fn=self._blackbox_state,
        )
        #: (name, version) -> SharedMemory the parent owns; released on
        #: retire (workers unmapped theirs) or at close.  Kept alive for
        #: the version's whole life — replacement replicas re-attach
        #: these segments during log replay.
        self._segments: Dict[Tuple[str, int], Any] = {}
        #: Host-level artifact cache bookkeeping (remote transports).
        #: A wire key (transport hash) maps to the hosts whose named
        #: cache segment already holds the bytes, and to the number of
        #: live versions referencing it — the parent unlinks the cache
        #: segment when the last one retires.  The token scopes the
        #: deterministic segment names to this service instance.
        self._cache_token = secrets.token_hex(3)
        self._cache_hosts: Dict[str, set] = {}
        self._cache_refs: Dict[str, int] = {}
        self._version_keys: Dict[Tuple[str, int], str] = {}
        self._remote_fleet = self._worker_transport.locality == "remote"
        #: Parent-side record of active splits (workers hold the live
        #: routing state; this mirror backs the retire refusal check).
        self._splits: Dict[str, TrafficSplit] = {}
        #: Linearized history of applied control operations — entries
        #: are mutable lists so retire can tombstone a publish in
        #: place:
        #:   ["publish", name, payload, version]
        #:   ["publish_tombstone", name, version]
        #:   ["alias", (alias, target, version)]
        #:   ["set_split", (ref, canary, fraction, shadow)]
        #: Replaying the log into a fresh replica reproduces the exact
        #: registry/alias/split state of every live shard.
        self._control_log: List[list] = []
        # Serializes control-plane mutation (publish/alias/retire/
        # splits/scale) and the log against each other — interleaved
        # broadcasts would diverge the replicas.
        self._control_lock = threading.Lock()
        self._closed = False
        self._close_lock = threading.Lock()

        self._pending: Dict[int, Any] = {}
        self._pending_lock = threading.Lock()
        self._pending_empty = threading.Condition(self._pending_lock)
        self._msg_ids = itertools.count(1)
        self._next_shard_id = itertools.count(n_shards)
        self._repairs: List[threading.Thread] = []
        # Guards the _repairs prune-and-append: two shards dying
        # concurrently race their reader threads here, and an unlocked
        # read-modify-write would drop one repair from the list close()
        # joins.
        self._repairs_lock = threading.Lock()

        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = mp.get_context(start_method)
        # Children must inherit OUR resource tracker (fork inherits the
        # fd, spawn ships it in the preparation data), not grow private
        # ones that reap live segments when a worker exits.
        ensure_tracker_running()
        if split_seed is None:
            self._seed_seq: Optional[np.random.SeedSequence] = None
        else:
            self._seed_seq = np.random.SeedSequence(
                int(np.random.default_rng(split_seed).integers(1 << 31))
            )
        # Any failure after the first process spawns must tear down
        # what already started — the constructor raised, so the caller
        # never gets an object to close(), and half-started workers,
        # readers, and the dispatcher would leak for the process
        # lifetime.  (The knob validation that MicroBatcher repeats ran
        # above, before anything spawned.)
        self._shards: List[_Shard] = []
        self._shards_by_id: Dict[int, _Shard] = {}
        self._dispatcher: Optional[_ClusterDispatcher] = None
        self.autoscaler: Optional[Autoscaler] = None
        try:
            # The initial workers fork/spawn *before* any parent thread
            # starts, so these children never inherit a half-held lock.
            # (Elastic spawns later fork while parent threads run; the
            # worker entry point touches none of the parent's locks,
            # and segment registration is serialized under the control
            # lock, which add_shard holds across the fork.)
            for shard_id in range(n_shards):
                self._shards.append(self._spawn_worker(shard_id))
            for shard in self._shards:
                self._start_reader(shard)
            self._shards_by_id = {s.shard_id: s for s in self._shards}
            self._dispatcher = _ClusterDispatcher(
                self,
                max_batch=max_batch,
                max_delay_s=max_delay_s,
                delay=(AdaptiveDelay(max_delay_s=max_delay_s)
                       if adaptive_delay else None),
                tracer=self.tracer,
                hub=self.hub,
            ).start()
            # Fail fast if a worker died on startup (bad import, OOM).
            for shard in self._shards:
                reply = self._rpc(shard, "ping", None, timeout_s=30.0)
                if reply != ("pong", shard.shard_id):
                    raise RuntimeError(
                        f"shard {shard.shard_id} failed its startup ping"
                    )
            if autoscale is not None:
                self.autoscaler = Autoscaler(
                    self, autoscale, journal=self.journal
                ).start()
            register_serving_collectors(
                self.hub, batcher=self._dispatcher,
                delay=self._dispatcher.delay,
            )
            self._register_cluster_collectors()
            if exporter_port is not None:
                self.start_exporter(port=exporter_port)
        except BaseException:
            self.close()
            raise

    # -- worker lifecycle --------------------------------------------------
    def _next_child_seed(self) -> Optional[int]:
        if self._seed_seq is None:
            return None
        child = self._seed_seq.spawn(1)[0]
        return int(child.generate_state(1)[0])

    def _spawn_worker(self, shard_id: int) -> _Shard:
        process, transport = self._worker_transport.spawn(
            self._ctx, shard_id, self._next_child_seed()
        )
        self.journal.emit("shard_spawn",
                          labels={"shard": str(shard_id)},
                          transport=self.transport)
        return _Shard(shard_id, process, transport)

    def _start_reader(self, shard: _Shard) -> None:
        shard.reader = threading.Thread(
            target=self._reader_loop, args=(shard,),
            name=f"repro-serve-shard-{shard.shard_id}-reader",
            daemon=True,
        )
        shard.reader.start()

    def _destroy_shard(self, shard: _Shard) -> None:
        """Best-effort teardown of a shard that never joined the fleet
        (failed spawn/replay)."""
        shard.alive = False
        try:
            shard.transport.close()
        except Exception:  # noqa: BLE001
            pass
        try:
            shard.process.terminate()
        except Exception:  # noqa: BLE001
            pass
        shard.process.join(timeout=5.0)
        if shard.reader is not None:
            shard.reader.join(timeout=5.0)

    def _live_shards(self) -> List[_Shard]:
        """Routable shards: alive and not being drained for removal."""
        return [s for s in self._shards if s.alive and not s.draining]

    def add_shard(self) -> int:
        """Grow the fleet by one replica (the autoscaler's scale-up
        actuator, also a public capacity knob).

        The new worker is spawned, pinged, and fed the full control log
        before it becomes routable, so it can never serve a request
        against partial state.  Returns the new shard id.
        """
        with self._control_lock:
            if self._closed:
                raise RuntimeError("service is closed")
            shard = self._provision_shard_locked()
            if self._closed:
                # close() raced the provisioning; installing now would
                # leak a worker the (finished) shutdown never stops.
                self._destroy_shard(shard)
                raise RuntimeError("service closed during add_shard")
            self._shards = list(self._shards) + [shard]
            self._shards_by_id[shard.shard_id] = shard
            self.n_shards += 1
            return shard.shard_id

    def remove_shard(self, shard_id: Optional[int] = None,
                     timeout_s: float = 30.0) -> int:
        """Gracefully retire one worker (the scale-down actuator).

        The victim (least-loaded live shard unless ``shard_id`` pins
        one) is marked draining — no new groups route at it — its
        in-flight replies complete, then it stops.  Refuses to remove
        the last live shard.  Returns the removed shard id.

        Only victim selection and the membership update hold the
        control lock; the drain wait (seconds under heavy batches)
        runs outside it, so publishes, metrics, and the self-healing
        of *other* shards are never stalled behind a scale-down.
        """
        with self._control_lock:
            if self._closed:
                raise RuntimeError("service is closed")
            live = self._live_shards()
            if len(live) <= 1:
                raise RuntimeError("cannot remove the last live shard")
            if shard_id is None:
                shard = min(live, key=lambda s: (s.inflight, s.shard_id))
            else:
                shard = self._shards_by_id.get(shard_id)
                if shard is None or not shard.alive or shard.draining:
                    raise KeyError(f"no live shard {shard_id}")
            # The flag is what needs the lock: a concurrent
            # remove_shard selects from live = alive-and-not-draining,
            # so two removals can never pick the same victim or drain
            # the fleet past the last-shard check.
            shard.draining = True
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            with self._pending_lock:
                if shard.inflight == 0:
                    break
            time.sleep(0.005)
        # The channel is FIFO per connection (pipe or TCP stream): the
        # worker answers everything queued before the stop, then
        # exits; its EOF runs the _on_shard_death sweep, which fails
        # any straggler that raced the draining flag (zero stranded
        # futures).
        try:
            self._rpc(shard, "stop", None, timeout_s=10.0)
        except RuntimeError:
            pass
        if shard.reader is not None:
            shard.reader.join(timeout=10.0)
        shard.process.join(timeout=10.0)
        if shard.process.is_alive():
            shard.process.terminate()
            shard.process.join(timeout=5.0)
        shard.alive = False
        try:
            shard.transport.close()
        except Exception:  # noqa: BLE001
            pass
        with self._control_lock:
            self._shards = [s for s in self._shards if s is not shard]
            self._shards_by_id.pop(shard.shard_id, None)
            self.n_shards -= 1
        return shard.shard_id

    def kill_shard(self, shard_id: int) -> None:
        """Chaos helper: hard-kill one worker process (SIGTERM).

        Pending groups routed at it fail with structured
        ``shard_error`` results; with ``self_heal`` the death triggers
        a replacement replica that replays the control log.  Raises
        ``KeyError`` for an unknown or already-dead shard.
        """
        shard = self._shards_by_id.get(shard_id)
        if shard is None or not shard.alive:
            raise KeyError(f"no live shard {shard_id}")
        shard.process.terminate()
        shard.process.join(timeout=10.0)

    def _provision_shard_locked(self) -> _Shard:
        """Spawn + ping + replay one replica (caller holds the control
        lock); the shard is fully caught up but not yet routable."""
        shard = self._spawn_worker(next(self._next_shard_id))
        try:
            self._start_reader(shard)
            reply = self._rpc(shard, "ping", None, timeout_s=30.0)
            if reply != ("pong", shard.shard_id):
                raise RuntimeError(
                    f"shard {shard.shard_id} failed its startup ping"
                )
            self._replay_log_locked(shard)
        except BaseException:
            self._destroy_shard(shard)
            raise
        return shard

    def _replay_log_locked(self, shard: _Shard) -> None:
        """Feed the linearized control log into a fresh replica.

        Version numbers are cross-checked op by op — replay that does
        not reproduce the parent mirror's numbering exactly is replica
        divergence and fails the provisioning.
        """
        for entry in self._control_log:
            op = entry[0]
            if op == "publish":
                _, name, shipment, version = entry
                payload = self._shipment_payload(shard, shipment)
                worker_version = self._rpc(shard, "publish",
                                           (name, payload))
                self._note_shipped(shard, shipment, payload)
                if worker_version != version:
                    raise RuntimeError(
                        f"replay diverged: shard {shard.shard_id} "
                        f"registered {name!r} as version "
                        f"{worker_version}, log has {version}"
                    )
            elif op == "publish_tombstone":
                _, name, version = entry
                worker_version = self._rpc(shard, "publish_tombstone",
                                           name)
                if worker_version != version:
                    raise RuntimeError(
                        f"replay diverged: shard {shard.shard_id} "
                        f"tombstoned {name!r} at version "
                        f"{worker_version}, log has {version}"
                    )
            elif op == "alias":
                self._rpc(shard, "alias", entry[1])
            elif op == "set_split":
                self._rpc(shard, "set_split", entry[1])

    def _repair(self, dead: _Shard) -> None:
        """Self-heal worker: replace ``dead`` with a caught-up replica.

        Runs on its own thread (shard death is detected on the reader
        thread, which must keep failing pending futures, not block on
        the control lock).  Failure to heal is logged into nothing —
        the cluster keeps serving on the survivors, and the next death
        or scale-up tries again.
        """
        try:
            with self._control_lock:
                if self._closed:
                    return
                shard = self._provision_shard_locked()
                if self._closed:
                    # close() ran while we were provisioning (its
                    # repair-join timeout is shorter than a worst-case
                    # spawn+replay): installing now would hand a live
                    # worker to a service that already stopped its
                    # fleet and unlinked its segments — tear the
                    # replacement down instead.
                    self._destroy_shard(shard)
                    return
                shards = list(self._shards)
                if dead in shards:
                    # Replace in place so hash-affinity bucket order
                    # stays as stable as membership allows.
                    shards[shards.index(dead)] = shard
                else:
                    shards.append(shard)
                self._shards_by_id.pop(dead.shard_id, None)
                self._shards_by_id[shard.shard_id] = shard
                self._shards = shards
            self.journal.emit(
                "shard_heal", labels={"shard": str(shard.shard_id)},
                replaced=dead.shard_id,
                control_log_len=len(self._control_log),
            )
        except Exception:  # noqa: BLE001 - healing is best effort
            pass

    # -- registry control -------------------------------------------------
    def publish(
        self,
        name: str,
        artifact: PolicyArtifact,
        alias: Optional[str] = None,
    ) -> int:
        """Publish to every shard (shared memory for tree artifacts).

        The parent mirror registry publishes first — it is the
        authoritative version counter — then the artifact is broadcast;
        tree artifacts travel as one shared segment mapped by all
        shards, anything else falls back to pickling.  If any live
        shard rejects the publish, the shards that already applied it
        and the parent mirror are rolled back before the error is
        raised, so the replicas never diverge; the alias (if any) is
        installed only after every shard accepted.  A successful
        publish is appended to the control log, so replacement replicas
        replay it (re-attaching the same shared segment).

        Control-plane operations (publish / alias / retire / splits /
        scaling) serialize under one lock so every shard sees them in
        the same order — interleaved broadcasts would diverge the
        replicas.
        """
        with self._control_lock:
            return self._publish_locked(name, artifact, alias)

    def _publish_locked(
        self,
        name: str,
        artifact: PolicyArtifact,
        alias: Optional[str],
    ) -> int:
        if artifact.flat is None:
            # Pickle fallback: serialize *once*, before the parent
            # registry publishes — an unpicklable artifact must fail
            # cleanly here (not desync replicas mid-broadcast), and the
            # resulting bytes ship to every shard without re-pickling
            # multi-MB teacher weights per shard.
            try:
                pickled: Optional[bytes] = pickle.dumps(artifact)
            except Exception as exc:  # noqa: BLE001 - any pickle error
                raise TypeError(
                    f"artifact {artifact.name!r} (kind "
                    f"{artifact.kind!r}) cannot be shipped to shards: "
                    f"it has no flat arrays for shared memory and does "
                    f"not pickle ({exc})"
                ) from exc
        else:
            pickled = None
        # Build the transport payload *before* the parent mirror
        # publishes: a share_artifact failure (e.g. /dev/shm exhausted)
        # after the mirror write would leave a phantom parent version
        # that wedges every later publish of the model.
        shm = None
        handle = None
        if artifact.flat is not None:
            # Compile the native kernel *before* the handle snapshots
            # ``meta`` — the kernel provenance (hash, compiler, flags)
            # must ride to the workers, whose own publish-time compile
            # hook then dlopens the cached binary instead of paying a
            # second compile.  Best-effort: no compiler just means the
            # fleet serves through numpy.
            try:
                artifact.compile_native()
            except Exception:  # noqa: BLE001 - publish must not fail
                pass
            handle, shm = share_artifact(artifact)
        try:
            version = self.registry.publish(name, artifact)
        except Exception:
            if shm is not None:
                shm.close()
                shm.unlink()
            raise
        if shm is not None:
            self._segments[(name, version)] = shm
        # The shipment is what the control log stores: the concrete
        # per-shard payload (shm handle, pickled bytes, or a
        # WireArtifact with/without the raw bytes) is resolved at
        # broadcast and replay time, because it depends on each
        # shard's transport and on what its host already caches.
        shipment = _ArtifactShipment(handle, shm, pickled,
                                     self._cache_token)
        applied: List[_Shard] = []
        try:
            for shard in self._shards:
                # A draining shard is leaving the fleet (scale-down
                # waits outside the control lock): it serves what it
                # already holds and must not make a racing publish
                # fail-and-roll-back when its stop lands first.
                if not shard.alive or shard.draining:
                    continue
                payload = self._shipment_payload(shard, shipment)
                worker_version = self._rpc(
                    shard, "publish", (name, payload)
                )
                applied.append(shard)
                self._note_shipped(shard, shipment, payload)
                if worker_version != version:
                    raise RuntimeError(
                        f"shard {shard.shard_id} registered {name!r} "
                        f"as version {worker_version}, parent has "
                        f"{version}: registry replicas diverged"
                    )
            if not applied:
                raise RuntimeError("no live shards")
        except Exception:
            # Roll the already-applied shards and the parent mirror
            # back so every replica forgets the failed version.
            for shard in applied:
                if not shard.alive:
                    continue
                try:
                    self._rpc(shard, "rollback_publish", (name, version),
                              timeout_s=10.0)
                except Exception:  # noqa: BLE001 - rollback best effort
                    pass
            try:
                self.registry.rollback_publish(name, version)
            except ValueError:
                pass  # a concurrent publish superseded it; leave it
            shm = self._segments.pop((name, version), None)
            if shm is not None:
                try:
                    shm.close()
                    shm.unlink()
                except Exception:  # noqa: BLE001
                    pass
            # If no *live* version still references the wire key, the
            # host-cache segment a worker may have just filled is an
            # orphan — drop it (workers rolled back, so their mappings
            # are closed).
            if (self._remote_fleet and shipment.key is not None
                    and self._cache_refs.get(shipment.key, 0) == 0):
                self._release_cache_segment(shipment.key)
            # The registry hook already journaled the rollback; the
            # black box keeps the evidence (which shards applied, the
            # metrics page at failure time).
            self.recorder.capture(
                f"publish_rollback_{name}",
                extra={"model": name, "version": version,
                       "applied_shards": [s.shard_id for s in applied]},
            )
            raise
        self._control_log.append(["publish", name, shipment, version])
        if self._remote_fleet and shipment.key is not None:
            self._version_keys[(name, version)] = shipment.key
            self._cache_refs[shipment.key] = (
                self._cache_refs.get(shipment.key, 0) + 1
            )
        if alias is not None:
            self._alias_locked(alias, name, None)
        return version

    def _shipment_payload(self, shard: _Shard,
                          shipment: _ArtifactShipment) -> Any:
        """Resolve a shipment to what *this* shard's publish carries.

        Co-located shards get the shm handle (zero-copy attach by
        transport hash) or the pickled bytes — the pre-transport
        behavior, unchanged.  Remote shards get a
        :class:`WireArtifact`; the raw bytes ride along only when the
        shard's host has not cached the key yet (the second publish of
        the same hash to a host ships zero payload bytes).
        """
        if shard.transport.locality == "local":
            if shipment.handle is not None:
                return shipment.handle
            return shipment.pickled
        cached = shard.transport.host_key in self._cache_hosts.get(
            shipment.key, ()
        )
        # The kernel .so rides the same once-per-(host, key) discipline
        # as the artifact bytes: a host that caches the arrays also
        # caches the kernel (the first worker installed it).
        return WireArtifact(
            key=shipment.key,
            segment=shipment.segment,
            handle=shipment.wire_handle,
            payload=None if cached else shipment.wire_bytes(),
            kernel=None if cached else shipment.kernel_bytes(),
        )

    def _note_shipped(self, shard: _Shard, shipment: _ArtifactShipment,
                      payload: Any) -> None:
        """Record that a host now caches a key (its worker filled the
        named segment as part of a successful publish RPC)."""
        if isinstance(payload, WireArtifact) and payload.payload is not None:
            self._cache_hosts.setdefault(shipment.key, set()).add(
                shard.transport.host_key
            )

    def _release_cache_segment(self, key: str) -> None:
        """Unlink one host-cache segment (last referencing version is
        gone).  Best effort: on a truly remote host the parent cannot
        reach the segment — there, the host's worker runtime owns
        sweeping orphans — but for the localhost fleets this repo runs
        the attach-and-unlink reclaims the memory immediately."""
        self._cache_refs.pop(key, None)
        self._cache_hosts.pop(key, None)
        try:
            segment = shared_memory.SharedMemory(
                name=host_cache_segment_name(self._cache_token, key)
            )
            segment.close()
            segment.unlink()
        except Exception:  # noqa: BLE001 - never created / already gone
            pass

    def alias(
        self, alias: str, target: str, version: Optional[int] = None
    ) -> None:
        """Install (or repoint) an alias on the parent mirror and every
        live shard, and log it for replay."""
        with self._control_lock:
            self._alias_locked(alias, target, version)

    def _alias_locked(
        self, alias: str, target: str, version: Optional[int]
    ) -> None:
        self.registry.alias(alias, target, version)
        # Log with the mirror, *before* the broadcast: the log's
        # invariant is "replaying it reproduces the parent mirror".
        # If the broadcast fails outright (every shard evicted), the
        # mirror has the alias — so the log must too, or the repaired
        # replicas would replay to a divergent state.  Only the final
        # binding matters to a fresh replica; earlier repoints of the
        # same alias are compacted away.
        self._control_log = [
            entry for entry in self._control_log
            if not (entry[0] == "alias" and entry[1][0] == alias)
        ]
        self._control_log.append(["alias", (alias, target, version)])
        self._broadcast_or_evict("alias", (alias, target, version))

    def retire(self, name: str, version: int) -> None:
        """Retire an old version cluster-wide (parent refusal rules —
        including active splits routing to it — run first, so an
        illegal retire never reaches a shard).

        The version's control-log publish entry is tombstoned in place:
        a replacement replica replays the slot as
        ``publish_tombstone``, keeping version numbering identical
        while the artifact bytes (and their shared segment) are gone.
        """
        with self._control_lock:
            guard_retire_against_splits(
                dict(self._splits), self.registry, name, version
            )
            self.registry.retire(name, version)
            # Tombstone the log with the mirror, before the broadcast:
            # if the broadcast fails wholesale, the mirror considers
            # the version gone, and a repaired replica must not replay
            # it back to life.
            for entry in self._control_log:
                if (entry[0] == "publish" and entry[1] == name
                        and entry[3] == version):
                    entry[:] = ["publish_tombstone", name, version]
                    break
            self._broadcast_or_evict("retire", (name, version))
            # Workers have unmapped the retired version; drop the
            # parent's mapping (under the lock — metrics readers
            # snapshot this dict) so memory tracks the live set, not
            # the publish history.
            shm = self._segments.pop((name, version), None)
            # Host-cache accounting: this version no longer references
            # its wire key; unlink the cached segment once the last
            # referencing version is gone.
            key = self._version_keys.pop((name, version), None)
            if key is not None:
                refs = self._cache_refs.get(key, 0) - 1
                if refs <= 0:
                    self._release_cache_segment(key)
                else:
                    self._cache_refs[key] = refs
        if shm is not None:
            try:
                shm.close()
                shm.unlink()
            except Exception:  # noqa: BLE001 - release best effort
                pass

    def rollback_publish(self, name: str, version: int) -> None:
        """Undo the most recent publish of ``name`` cluster-wide — the
        auto-canary controller's abort path.

        Parent refusal rules run first (must be the current latest, no
        pinned alias, no active split routing to it), then the mirror
        rolls back, the publish entry leaves the replay log, and the
        rollback broadcasts to every live shard.  The version slot is
        freed for reuse — unlike :meth:`retire`, which tombstones it —
        because a rolled-back canary was never a legitimate part of the
        version history.
        """
        with self._control_lock:
            guard_retire_against_splits(
                dict(self._splits), self.registry, name, version
            )
            self.registry.rollback_publish(name, version)
            # Mirror and log first (log == mirror even when the
            # broadcast fails wholesale): the slot is simply gone, so
            # a replacement replica never replays it.
            self._control_log = [
                entry for entry in self._control_log
                if not (entry[0] == "publish" and entry[1] == name
                        and entry[3] == version)
            ]
            self._broadcast_or_evict("rollback_publish", (name, version))
            shm = self._segments.pop((name, version), None)
            key = self._version_keys.pop((name, version), None)
            if key is not None:
                refs = self._cache_refs.get(key, 0) - 1
                if refs <= 0:
                    self._release_cache_segment(key)
                else:
                    self._cache_refs[key] = refs
        if shm is not None:
            try:
                shm.close()
                shm.unlink()
            except Exception:  # noqa: BLE001 - release best effort
                pass

    # -- traffic splitting -------------------------------------------------
    def set_split(
        self,
        ref: str,
        canary: Optional[str] = None,
        canary_fraction: float = 0.0,
        shadow: Optional[str] = None,
    ) -> None:
        """Install a canary/shadow split on every shard.

        Each shard applies the new configuration atomically at its next
        flush; cross-shard skew is bounded by one in-flight batch.
        """
        with self._control_lock:
            check_split_targets(self.registry, ref, canary, shadow)
            # Constructing the config validates it before any broadcast.
            split = TrafficSplit(
                ref=ref, canary=canary,
                canary_fraction=float(canary_fraction), shadow=shadow,
            )
            # Record the mirror *before* broadcasting: if the broadcast
            # fails partway, some shard may already be routing under
            # this split, and the retire() guard must keep seeing it.
            self._splits[ref] = split
            payload = (ref, canary, float(canary_fraction), shadow)
            # Mirror and log first (same invariant as _alias_locked:
            # log == mirror even when the broadcast fails wholesale).
            self._drop_split_log_entries(ref)
            self._control_log.append(["set_split", payload])
            self._broadcast_or_evict("set_split", payload)
        self.journal.emit(
            "canary_change", labels={"ref": ref},
            canary=canary, canary_fraction=float(canary_fraction),
            shadow=shadow,
        )

    def clear_split(self, ref: str) -> None:
        """Remove ``ref``'s split on every shard (and from the replay
        log — a fresh replica simply never installs it)."""
        with self._control_lock:
            self._broadcast_or_evict("clear_split", ref)
            removed = self._splits.pop(ref, None)
            self._drop_split_log_entries(ref)
        if removed is not None:
            self.journal.emit("canary_change", labels={"ref": ref},
                              cleared=True)

    def _drop_split_log_entries(self, ref: str) -> None:
        self._control_log = [
            entry for entry in self._control_log
            if not (entry[0] == "set_split" and entry[1][0] == ref)
        ]

    def splits(self) -> Dict[str, TrafficSplit]:
        """Active splits as recorded by the parent."""
        return dict(self._splits)

    def shadow_report(self) -> Dict[str, dict]:
        """Cluster-wide shadow fidelity (summed over shards)."""
        merger = TrafficSplitter()
        for _shard, report in self._broadcast_tolerant("shadow_report",
                                                       None):
            merger.merge_shadow_report(report)
        return merger.shadow_report()

    def replica_states(self) -> Dict[str, Any]:
        """Control-state fingerprints of the parent mirror and every
        live shard.

        Returns ``{"parent": state, "shards": {shard_id: state}}``
        where each state is ``{"models": {name: [hash-or-None, ...]},
        "aliases": {...}, "splits": {...}}``.  Lockstep means every
        value here is *identical* — the replacement-replay tests
        compare them byte for byte (via ``repr``) after healing a
        killed shard.  Taken under the control lock, so no broadcast
        can land between the parent's view and the shards'.
        """
        with self._control_lock:
            parent = dict(self.registry.fingerprint())
            parent["splits"] = split_state(self._splits)
            # Digest goes in LAST (workers do the same in describe):
            # byte-for-byte repr comparison needs identical key order.
            parent["digest"] = control_state_digest(parent)
            shards = {
                shard.shard_id: reply
                for shard, reply in self._broadcast_tolerant("describe",
                                                             None)
            }
        return {"parent": parent, "shards": shards}

    # -- traffic -----------------------------------------------------------
    def submit(self, model: str, state: Any) -> "Future[ServeResult]":
        """One decision request; microbatched and routed to a shard."""
        return self._dispatcher.submit(model, state)

    def submit_async(self, model: str, state: Any):
        """Asyncio submission path; awaitable from a running loop."""
        return self._dispatcher.submit_async(model, state)

    def submit_many(
        self, model: str, states: Any
    ) -> List["Future[ServeResult]"]:
        """Submit a stack of single-state requests (they may co-batch
        at the front end and ship as one group)."""
        states = np.atleast_2d(np.asarray(states, dtype=float))
        return [self._dispatcher.submit(model, row) for row in states]

    def submit_batch(
        self, model: str, states: Any
    ) -> "Future[List[ServeResult]]":
        """Bulk path: one future for a whole state matrix.

        The matrix is split into contiguous chunks across live shards
        and shipped as arrays — per-row Python cost at the front end is
        a slice, which is what lets the cluster outrun the per-request
        future machinery of the single-process server.
        """
        if self._dispatcher.closed:
            raise RuntimeError(
                "ShardedPolicyService is closed: submit_batch() after "
                "close() can never complete"
            )
        x = np.atleast_2d(np.ascontiguousarray(states, dtype=float))
        if x.ndim != 2:
            raise ValueError("submit_batch expects an (n, d) state matrix")
        shards = self._live_shards()
        n = x.shape[0]
        if not shards or n == 0:
            job = _BulkJob(n, 1, model)
            for i in range(n):
                self._metrics.record(model, 0, 0.0, error=ERR_SHARD)
                job.results[i] = ServeResult(
                    ok=False, action=None, model=model, version=0,
                    error=ERR_SHARD, detail="no live shards",
                )
            job.chunk_done()
            return job.future
        n_chunks = min(len(shards), n)
        bounds = np.linspace(0, n, n_chunks + 1).astype(int)
        job = _BulkJob(n, n_chunks, model)
        for k in range(n_chunks):
            lo, hi = int(bounds[k]), int(bounds[k + 1])
            shard = shards[k % len(shards)]
            chunk = _BulkChunk(job, lo, hi - lo, shard.shard_id)
            self._send_predict(shard, model, x[lo:hi], chunk)
        return job.future

    def predict_batch(
        self, model: str, states: Any, timeout_s: float = 60.0
    ) -> List[ServeResult]:
        """Synchronous bulk convenience returning per-row results."""
        return self.submit_batch(model, states).result(timeout=timeout_s)

    def predict(
        self, model: str, states: Any, timeout_s: float = 60.0
    ) -> np.ndarray:
        """Synchronous bulk convenience: actions or :class:`ServeError`."""
        results = self.predict_batch(model, states, timeout_s=timeout_s)
        for res in results:
            if not res.ok:
                raise ServeError(f"{model}: {res.error} ({res.detail})")
        return np.asarray([res.action for res in results])

    # -- dispatch internals ------------------------------------------------
    def _pick_shard(self, ref: Optional[str] = None) -> Optional[_Shard]:
        live = self._live_shards()
        if self._router_takes_ref:
            return self._router.select(live, ref)
        # Back-compat: custom routers written against the pre-PR-6
        # single-argument signature keep working unchanged.
        return self._router.select(live)

    def _dispatch_group(self, ref: str, requests: List[_Request]) -> None:
        """Route one stacked flush group to a shard (or fail it fast).

        Hash affinity (when configured) pins each request to a shard by
        a stable hash of its state while the live membership holds;
        everything else — including fallback for a just-died target —
        goes through the pluggable router.
        """
        live = self._live_shards()
        if self._hash_affinity and len(live) > 1:
            buckets: Dict[int, List[_Request]] = {}
            for request in requests:
                key = hash(request.row.tobytes()) % len(live)
                buckets.setdefault(key, []).append(request)
            parts: List[Tuple[Optional[_Shard], List[_Request]]] = [
                (live[key], group) for key, group in buckets.items()
            ]
        else:
            parts = [(None, requests)]
        for target, group in parts:
            if target is not None and target.alive and not target.draining:
                shard: Optional[_Shard] = target
            else:
                shard = self._pick_shard(ref)
            if shard is None:
                self._fail_requests(group, ref, "no live shards")
                continue
            x = np.stack([request.row for request in group])
            self._send_predict(shard, ref, x, _PredictJob(group,
                                                          shard.shard_id))

    def _send_predict(self, shard: _Shard, ref: str, x: np.ndarray,
                      entry: Any) -> None:
        msg_id = next(self._msg_ids)
        trace_ctx = None
        if isinstance(entry, _PredictJob):
            now = time.perf_counter()
            traced = [request.trace for request in entry.requests
                      if request.trace is not None]
            for trace in traced:
                trace.mark_send(now)
            if traced:
                # Only ids cross the wire — the TraceRecord objects stay
                # parent-side, where spans are reassembled on completion.
                trace_ctx = {"trace_ids": [t.trace_id for t in traced]}
        self._m_routed.labels(shard=str(shard.shard_id)).inc()
        with self._pending_lock:
            self._pending[msg_id] = entry
            shard.inflight += 1
        try:
            shard.send(msg_id, "predict", (ref, x), trace=trace_ctx)
        except Exception as exc:  # noqa: BLE001 - fail, never strand
            with self._pending_lock:
                owned = self._pending.pop(msg_id, None)
                if owned is not None:
                    shard.inflight -= 1
            if isinstance(exc, OSError):  # broken pipe == dead shard
                self._on_shard_death(shard)
                detail = f"shard {shard.shard_id} is unreachable"
            else:  # payload problem; the shard is healthy
                detail = (
                    f"request could not be shipped to shard "
                    f"{shard.shard_id}: {exc}"
                )
            if owned is None:
                # The reader's shard-death sweep claimed the entry
                # between our insert and the send — it already failed
                # these futures; failing them twice would raise.
                return
            if isinstance(owned, _PredictJob):
                self._fail_requests(owned.requests, ref, detail)
            else:
                self._fail_chunk(owned, detail)

    def _fail_requests(self, requests: List[_Request], ref: str,
                       detail: str) -> None:
        now = time.perf_counter()
        for request in requests:
            if request.future.done():  # belt: never double-resolve
                continue
            self._metrics.record(ref, 0, now - request.enqueued,
                                 error=ERR_SHARD)
            if request.trace is not None:
                request.trace.finish(ok=False, now=now)
                self.tracer.record(request.trace)
            request.future.set_result(ServeResult(
                ok=False, action=None, model=ref, version=0,
                error=ERR_SHARD, detail=detail,
                latency_s=now - request.enqueued,
            ))

    def _fail_chunk(self, chunk: _BulkChunk, detail: str) -> None:
        ref = chunk.job.model
        now = time.perf_counter()
        latency = now - chunk.job.enqueued
        for i in range(chunk.offset, chunk.offset + chunk.size):
            self._metrics.record(ref, 0, latency, error=ERR_SHARD)
            chunk.job.results[i] = ServeResult(
                ok=False, action=None, model=ref, version=0,
                error=ERR_SHARD, detail=detail, latency_s=latency,
            )
        chunk.job.chunk_done()

    # -- reply handling ----------------------------------------------------
    def _reader_loop(self, shard: _Shard) -> None:
        transport = shard.transport
        while True:
            try:
                reply = decode_frame(transport.recv_frame())
            except (EOFError, OSError, WireError):
                # A frame the parent cannot decode means the stream is
                # torn — same terminal condition as a closed channel.
                break
            msg_id, ok, payload = reply.msg_id, reply.ok, reply.payload
            with self._pending_lock:
                entry = self._pending.pop(msg_id, None)
                if isinstance(entry, (_PredictJob, _BulkChunk)):
                    shard.inflight -= 1
                if not self._pending:
                    self._pending_empty.notify_all()
            if entry is None:
                continue
            if (ok and isinstance(entry, (_PredictJob, _BulkChunk))
                    and isinstance(payload, dict)):
                # Fold the worker's reported pure service time into
                # the shard's EWMAs (aggregate + per-model) — the
                # router's quality signals.  Keyed by the *requested*
                # ref, which is what routing sees.
                service_s = float(payload.get("service_s") or 0.0)
                if service_s > 0.0:
                    if isinstance(entry, _PredictJob):
                        ref = entry.requests[0].model
                    else:
                        ref = entry.job.model
                    shard.observe_service(ref, service_s)
            if isinstance(entry, _Control):
                entry.ok = bool(ok)
                entry.result = payload
                entry.event.set()
            elif isinstance(entry, _PredictJob):
                self._complete_predict(entry, ok, payload)
            elif isinstance(entry, _BulkChunk):
                self._complete_chunk(entry, ok, payload)
        self._on_shard_death(shard)

    def _complete_predict(self, job: _PredictJob, ok: bool,
                          payload) -> None:
        requests = job.requests
        if not ok:
            self._fail_requests(
                requests, requests[0].model,
                f"shard {job.shard_id} failed: {payload}",
            )
            return
        now = time.perf_counter()
        service_s = float(payload.get("service_s") or 0.0)
        kernel_s = float(payload.get("kernel_s") or 0.0)

        def _finish_trace(request: _Request, ok_row: bool) -> None:
            if request.trace is None:
                return
            request.trace.finish(
                service_s=service_s, kernel_s=kernel_s,
                shard=job.shard_id, batch_size=len(requests),
                ok=ok_row, now=now,
            )
            self.tracer.record(request.trace)

        for name, version, idx, actions in payload["groups"]:
            if np.ndim(actions) == 1:
                values = np.asarray(actions).tolist()
            else:
                values = [np.array(row) for row in actions]
            latencies = []
            for i, action in zip(idx, values):
                request = requests[int(i)]
                latency = now - request.enqueued
                latencies.append(latency)
                _finish_trace(request, True)
                request.future.set_result(ServeResult(
                    ok=True, action=action, model=name, version=version,
                    latency_s=latency,
                ))
            self._metrics.record_group(name, version, latencies)
        for i, model, version, kind, detail in payload["errors"]:
            request = requests[int(i)]
            latency = now - request.enqueued
            self._metrics.record(model, version, latency, error=kind)
            _finish_trace(request, False)
            request.future.set_result(ServeResult(
                ok=False, action=None, model=model, version=version,
                error=kind, detail=detail, latency_s=latency,
            ))

    def _complete_chunk(self, chunk: _BulkChunk, ok: bool,
                        payload) -> None:
        job = chunk.job
        if not ok:
            self._fail_chunk(
                chunk, f"shard {chunk.shard_id} failed: {payload}"
            )
            return
        now = time.perf_counter()
        latency = now - job.enqueued
        for name, version, idx, actions in payload["groups"]:
            if np.ndim(actions) == 1:
                values = np.asarray(actions).tolist()
            else:
                values = [np.array(row) for row in actions]
            for i, action in zip(idx, values):
                job.results[chunk.offset + int(i)] = ServeResult(
                    ok=True, action=action, model=name, version=version,
                    latency_s=latency,
                )
            self._metrics.record_group(
                name, version, [latency] * int(len(idx))
            )
        for i, model, version, kind, detail in payload["errors"]:
            job.results[chunk.offset + int(i)] = ServeResult(
                ok=False, action=None, model=model, version=version,
                error=kind, detail=detail, latency_s=latency,
            )
            self._metrics.record(model, version, latency, error=kind)
        job.chunk_done()

    def _on_shard_death(self, shard: _Shard) -> None:
        # Claim the death atomically: the reader thread (EOF) and a
        # sender (EPIPE) can detect it concurrently, and two claimants
        # would sweep twice and — with self_heal — spawn two repairs
        # for one corpse, growing the fleet past n_shards.
        with self._pending_lock:
            if not shard.alive:
                return
            shard.alive = False
            doomed = [
                (msg_id, entry) for msg_id, entry in self._pending.items()
                if getattr(entry, "shard_id", None) == shard.shard_id
            ]
            for msg_id, _entry in doomed:
                del self._pending[msg_id]
            shard.inflight = 0
            if not self._pending:
                self._pending_empty.notify_all()
        for _msg_id, entry in doomed:
            if isinstance(entry, _PredictJob):
                self._fail_requests(
                    entry.requests, entry.requests[0].model,
                    f"shard {shard.shard_id} died",
                )
            elif isinstance(entry, _BulkChunk):
                self._fail_chunk(entry, f"shard {shard.shard_id} died")
            elif isinstance(entry, _Control):
                entry.ok = False
                entry.result = f"shard {shard.shard_id} died"
                entry.event.set()
        # Journal + black-box capture run on the detector thread but
        # take no control lock (the journal has its own, the recorder
        # only reads) — the reader must stay free to fail futures.
        self.journal.emit(
            "shard_death",
            severity="info" if shard.draining else "error",
            labels={"shard": str(shard.shard_id)},
            draining=shard.draining, failed_requests=len(doomed),
        )
        if not shard.draining and not self._closed:
            self.recorder.capture(
                f"shard_death_{shard.shard_id}",
                extra={"shard": shard.shard_id},
            )
        if self.self_heal and not self._closed and not shard.draining:
            # Healing replays the control log, which needs the control
            # lock — never block the reader thread (it may *be* the
            # detector during a control broadcast) on it.
            repair = threading.Thread(
                target=self._repair, args=(shard,),
                name=f"repro-serve-shard-{shard.shard_id}-repair",
                daemon=True,
            )
            # Prune finished repairs while appending, so a chaos-heavy
            # service doesn't hoard one dead Thread per healed death
            # forever.
            with self._repairs_lock:
                self._repairs = [
                    t for t in self._repairs if t.is_alive()
                ] + [repair]
            repair.start()

    # -- control RPC -------------------------------------------------------
    def _rpc(self, shard: _Shard, op: str, payload,
             timeout_s: float = _RPC_TIMEOUT_S):
        control = _Control(shard.shard_id)
        msg_id = next(self._msg_ids)
        with self._pending_lock:
            self._pending[msg_id] = control
        try:
            shard.send(msg_id, op, payload)
        except OSError as exc:  # broken channel: the shard really died
            with self._pending_lock:
                self._pending.pop(msg_id, None)
            self._on_shard_death(shard)
            raise RuntimeError(
                f"shard {shard.shard_id} is unreachable: {exc}"
            ) from exc
        except Exception as exc:
            # A payload problem (e.g. unpicklable object) is the
            # caller's fault — the shard is perfectly healthy.
            with self._pending_lock:
                self._pending.pop(msg_id, None)
            raise TypeError(
                f"payload for {op!r} cannot be shipped to shard "
                f"{shard.shard_id}: {exc}"
            ) from exc
        if not control.event.wait(timeout_s):
            raise RuntimeError(
                f"shard {shard.shard_id} did not answer {op!r} within "
                f"{timeout_s:.0f}s"
            )
        if not control.ok:
            raise RuntimeError(
                f"shard {shard.shard_id} rejected {op!r}: "
                f"{control.result}"
            )
        return control.result

    def _broadcast_tolerant(
        self, op: str, payload
    ) -> List[Tuple[_Shard, Any]]:
        """Read-only broadcast that skips shards dying mid-call.

        Observability ops (metrics / shadow_report / describe) race
        shard death by design — a monitoring poll right after a kill
        must report the surviving fleet, not crash because one pipe
        went dark between the liveness check and the RPC.  (``_rpc``
        already marks a shard dead on a broken pipe; this just doesn't
        let that abort the read.)  May return an empty list when no
        shard is reachable.
        """
        replies = []
        for shard in list(self._shards):
            if not shard.alive:
                continue
            try:
                replies.append((shard, self._rpc(shard, op, payload)))
            except RuntimeError:
                continue
        return replies

    def _broadcast_or_evict(
        self, op: str, payload
    ) -> List[Tuple[_Shard, Any]]:
        """Apply a control op on every live shard, evicting any shard
        that cannot apply it.

        Publish has a rollback protocol; cheaper control ops (alias /
        retire / splits) use fail-stop instead: a replica that missed a
        control op would silently serve stale routing state forever,
        and losing one shard's capacity is strictly better than that.
        (With ``self_heal`` the evicted shard is replaced by a replica
        replaying the post-op log, so even the capacity loss is
        transient.)  Raises only when no shard applied the op.
        """
        replies = []
        for shard in list(self._shards):
            # Draining shards are leaving: broadcasting to one could
            # race its stop and evict-terminate it mid-drain for no
            # gain (it serves only what it already holds).
            if not shard.alive or shard.draining:
                continue
            try:
                replies.append((shard, self._rpc(shard, op, payload)))
            except Exception:  # noqa: BLE001 - evict, keep the rest
                self._on_shard_death(shard)
                try:
                    shard.process.terminate()
                except Exception:  # noqa: BLE001
                    pass
        if not replies:
            raise RuntimeError(f"no live shard could apply {op!r}")
        return replies

    # -- observability -----------------------------------------------------
    def metrics(self) -> Dict[str, dict]:
        """Cluster-level per-model metrics (client-observed latency)."""
        return self._metrics.snapshot()

    def cluster_metrics(self) -> Dict[str, Any]:
        """Full cluster view: end-to-end, per-shard, and aggregate.

        ``cluster`` carries the client-observed percentiles (the number
        that matters for SLOs); ``shards`` the per-worker service-time
        snapshots; ``aggregate`` sums shard counters and throughput —
        aggregate throughput is the scaling headline.  ``routing``
        exposes the router plus each shard's load signals (in-flight
        groups, EWMA service time), ``shm`` the resident artifact
        memory, and ``autoscale`` the autoscaler's event history when
        one is configured.  ``backend`` reports which inference engine
        served each model's rows — compiled native kernel vs numpy —
        with the fallback counter that makes a silent degradation (no
        compiler on a host, failed compile) observable in production.
        """
        shard_snaps = []
        for shard, snap in self._broadcast_tolerant("metrics", None):
            shard_snaps.append({"shard": shard.shard_id, "models": snap})
        aggregate: Dict[str, dict] = {}
        for snap in shard_snaps:
            for model, stats in snap["models"].items():
                agg = aggregate.setdefault(model, {
                    "requests": 0, "errors": 0, "throughput_rps": 0.0,
                    "versions": {}, "batch_sizes": {},
                })
                agg["requests"] += stats["requests"]
                agg["errors"] += stats["errors"]
                agg["throughput_rps"] += stats["throughput_rps"]
                for key, count in stats["versions"].items():
                    agg["versions"][key] = (
                        agg["versions"].get(key, 0) + count
                    )
                for key, count in stats["batch_sizes"].items():
                    agg["batch_sizes"][key] = (
                        agg["batch_sizes"].get(key, 0) + count
                    )
        routing = dict(self._router.snapshot())
        routing["hash_affinity"] = self._hash_affinity
        routing["per_shard"] = {
            str(shard.shard_id): {
                "inflight": shard.inflight,
                "ewma_service_ms": shard.ewma_service_s * 1e3,
                "ewma_by_model_ms": {
                    ref: ewma * 1e3
                    for ref, ewma in shard.ewma_by_model.items()
                },
                "draining": shard.draining,
            }
            for shard in self._shards if shard.alive
        }
        transport_view: Dict[str, Any] = {
            "name": self.transport,
            "per_shard": {
                str(shard.shard_id): {
                    "host": shard.transport.host_key,
                    "bytes_sent": shard.transport.bytes_sent,
                    "bytes_received": shard.transport.bytes_received,
                }
                for shard in self._shards if shard.alive
            },
        }
        with self._control_lock:
            # Snapshot under the lock: publish/retire mutate the
            # segment map, and iterating it concurrently would raise.
            footprint = segment_footprint(self._segments)
            transport_view["host_cache"] = {
                "keys": len(self._cache_refs),
                "hosts": sorted(
                    {host for hosts in self._cache_hosts.values()
                     for host in hosts}
                ),
            }
        return {
            "n_shards": self.n_shards,
            "live_shards": len([s for s in self._shards if s.alive]),
            "cluster": self.metrics(),
            "shards": shard_snaps,
            "aggregate": aggregate,
            "routing": routing,
            "transport": transport_view,
            "shm": footprint,
            "backend": self.backend_report(),
            "autoscale": (self.autoscaler.snapshot()
                          if self.autoscaler is not None else None),
        }

    def backend_report(self) -> Dict[str, Any]:
        """Fleet-wide native-vs-numpy serving view.

        ``models`` sums each model's native/numpy/fallback row counters
        across every live shard (a model is ``native`` only if *every*
        reporting shard has a ready kernel — one host without a
        compiler degrades the label, and its rows show up in
        ``fallback_rows``); ``per_shard`` keeps the raw replica
        reports for debugging which host degraded.
        """
        per_shard = {}
        for shard, report in self._broadcast_tolerant(
            "backend_report", None
        ):
            per_shard[str(shard.shard_id)] = report
        models: Dict[str, Any] = {}
        for report in per_shard.values():
            for name, entry in report.items():
                agg = models.setdefault(name, {
                    "native_rows": 0, "numpy_rows": 0,
                    "fallback_rows": 0, "backend": entry["backend"],
                })
                for key in ("native_rows", "numpy_rows",
                            "fallback_rows"):
                    agg[key] += int(entry.get(key, 0))
                if entry["backend"] != agg["backend"]:
                    agg["backend"] = "mixed"
        return {"models": models, "per_shard": per_shard}

    def _register_cluster_collectors(self) -> None:
        """Wire cluster-local load signals into the metrics hub.

        Collectors run at scrape time (pull-style), so the hot path
        pays nothing: shard in-flight counts, router EWMAs, transport
        byte counters, shm footprint, and autoscale actuations are all
        read from state the serving loops already maintain.  Transport
        bytes and autoscale actuations are cumulative upstream values,
        so they are *assigned* onto counter children rather than
        inc'ed.
        """
        g_live = self.hub.gauge(
            "repro_cluster_live_shards", "Shards currently serving",
        )
        g_inflight = self.hub.gauge(
            "repro_cluster_shard_inflight",
            "Dispatched flush groups awaiting a reply, per shard",
        )
        g_ewma = self.hub.gauge(
            "repro_cluster_shard_ewma_service_seconds",
            "EWMA of worker-reported batch service time, per shard",
        )
        c_sent = self.hub.counter(
            "repro_transport_bytes_sent_total",
            "Frame bytes shipped to each shard",
        )
        c_received = self.hub.counter(
            "repro_transport_bytes_received_total",
            "Frame bytes received from each shard",
        )
        g_segments = self.hub.gauge(
            "repro_shm_segments", "Live shared-memory artifact segments",
        )
        g_shm_bytes = self.hub.gauge(
            "repro_shm_resident_bytes",
            "Resident bytes across shared-memory artifact segments",
        )
        c_scale = self.hub.counter(
            "repro_autoscale_actuations_total",
            "Autoscaler scale decisions actuated, per direction",
        )

        def _collect() -> None:
            shards = [s for s in self._shards if s.alive]
            g_live.labels().set(float(len(shards)))
            for shard in shards:
                key = {"shard": str(shard.shard_id)}
                g_inflight.labels(**key).set(float(shard.inflight))
                g_ewma.labels(**key).set(float(shard.ewma_service_s))
                c_sent.labels(**key).value = float(
                    shard.transport.bytes_sent
                )
                c_received.labels(**key).value = float(
                    shard.transport.bytes_received
                )
            # Shallow-copy the map instead of taking the control lock:
            # a scrape must never contend with publish/retire.
            footprint = segment_footprint(dict(self._segments))
            g_segments.labels().set(float(footprint["n_segments"]))
            g_shm_bytes.labels().set(float(footprint["total_bytes"]))
            if self.autoscaler is not None:
                snap = self.autoscaler.snapshot()
                c_scale.labels(direction="up").value = float(
                    snap["scale_ups"]
                )
                c_scale.labels(direction="down").value = float(
                    snap["scale_downs"]
                )

        self.hub.register_collector(_collect)

    def render_metrics(self) -> str:
        """Prometheus text exposition for the whole cluster.

        The parent's own hub (batcher, router, transport, shm,
        autoscale series) is merged with a ``metrics_snapshot`` pulled
        from every live worker over the control channel, each worker's
        series labeled with its ``shard`` id so per-replica kernel and
        service counters stay distinguishable after aggregation.
        """
        snaps = [self.hub.snapshot()]
        if not self._closed:
            for shard, snap in self._broadcast_tolerant(
                "metrics_snapshot", None
            ):
                if isinstance(snap, dict):
                    snaps.append(
                        with_labels(snap, {"shard": str(shard.shard_id)})
                    )
        return render_text(*snaps)

    def _drain_worker_events(self) -> None:
        """Pull every worker journal's new events into the parent journal.

        Incremental: the parent remembers the last drained seq per
        shard and asks ``events_since`` for the delta only; replies are
        re-sequenced into the merged journal under a ``shard`` label.
        Read-only and shard-death-tolerant (same posture as
        ``render_metrics``), serialized so two concurrent ``/events``
        scrapes cannot double-ingest one delta.
        """
        if self._closed:
            return
        with self._events_lock:
            for shard in list(self._shards):
                if not shard.alive:
                    continue
                last = self._worker_event_seq.get(shard.shard_id, 0)
                try:
                    events = self._rpc(shard, "events_since", last)
                except RuntimeError:
                    continue  # dying shard: the survivors still drain
                if not events:
                    continue
                self._worker_event_seq[shard.shard_id] = max(
                    int(e.get("seq", last)) for e in events
                )
                self.journal.ingest(
                    events, {"shard": str(shard.shard_id)}
                )

    def _drain_worker_captures(self) -> None:
        """Pull every worker capture ring's new entries into the parent
        ring (``self.capture``), shard-labeled and re-sequenced.

        Same incremental discipline as :meth:`_drain_worker_events`:
        per-shard high-water seq, shard-death-tolerant, serialized so
        two concurrent drains cannot double-ingest a delta.  The drain
        request also carries the parent ring's current sample rate, so
        the whole fleet's capture turns on (and off) from one knob.
        """
        if self._closed or self.capture is None:
            return
        with self._capture_lock:
            for shard in list(self._shards):
                if not shard.alive:
                    continue
                last = self._worker_capture_seq.get(shard.shard_id, 0)
                try:
                    entries = self._rpc(shard, "capture_drain", {
                        "since": last,
                        "sample_rate": self.capture.sample_rate,
                    })
                except RuntimeError:
                    continue  # dying shard: the survivors still drain
                if not entries:
                    continue
                self._worker_capture_seq[shard.shard_id] = max(
                    int(e.get("seq", last)) for e in entries
                )
                self.capture.ingest(
                    entries, {"shard": str(shard.shard_id)}
                )

    def routed_service_estimate_ms(self, ref: str) -> Optional[float]:
        """Worst-case per-(shard, model) service-time estimate for
        ``ref``, in milliseconds.

        Each shard keeps one EWMA per *requested* model ref alongside
        its blended per-shard EWMA (which mixes model costs — the
        ROADMAP's known routing blind spot).  This read prefers the
        per-model estimate and falls back to the blended one only for
        shards that have never served ``ref``; the max over live
        shards is what the auto-canary controller compares against its
        p95 SLO before advancing a ramp.  ``None`` means no live shard
        has any signal yet.
        """
        worst: Optional[float] = None
        for shard in list(self._shards):
            if not shard.alive:
                continue
            estimate = shard.ewma_by_model.get(ref)
            if estimate is None and shard.ewma_service_s > 0.0:
                estimate = shard.ewma_service_s
            if estimate is None or estimate <= 0.0:
                continue
            if worst is None or estimate > worst:
                worst = estimate
        return None if worst is None else worst * 1e3

    def events(self, since: int = 0) -> List[dict]:
        """The merged cluster event stream (parent + every worker),
        newer than ``since`` — what ``/events?since=`` serves.

        Each read first drains the worker journals, so the merged
        stream is current as of the call; ``seq`` is globally
        monotonic over the merged journal (worker-origin events keep
        their per-shard seq in ``fields.origin_seq``).
        """
        self._drain_worker_events()
        return self.journal.events_since(since)

    def _blackbox_state(self) -> Dict[str, Any]:
        """Tier state for postmortem bundles.

        Deliberately lock-free (list/dict reads are atomic snapshots):
        capture runs on reader threads and inside control operations,
        so taking the control lock here could deadlock the very
        failure path being recorded.
        """
        return {
            "tier": "ShardedPolicyService",
            "transport": self.transport,
            "routing": self.routing,
            "shards": [
                {"shard": s.shard_id, "alive": s.alive,
                 "draining": s.draining, "inflight": s.inflight}
                for s in list(self._shards)
            ],
            "splits": split_state(dict(self._splits)),
            "control_log_len": len(self._control_log),
            "registry": self.registry.fingerprint(),
        }

    def start_exporter(self, port: int = 0,
                       host: str = "127.0.0.1") -> "MetricsExporter":
        """Start the HTTP exporter serving ``/metrics``, ``/traces``,
        ``/events`` and ``/healthz`` for this service.

        One-shot per service: calling it again while an exporter runs,
        or after :meth:`close`, raises ``RuntimeError`` — the old
        silent-return behaviour could leak a second HTTP server.
        """
        if self._closed:
            raise RuntimeError(
                "service is closed: start_exporter() would serve "
                "metrics for a dead cluster"
            )
        if self.exporter is not None:
            raise RuntimeError(
                f"exporter already running on {self.exporter.url}; "
                f"close() it before starting another"
            )
        from repro.obs.exporter import MetricsExporter

        self.exporter = MetricsExporter(
            self.render_metrics, tracer=self.tracer,
            host=host, port=port, events_fn=self.events,
        )
        self.exporter.start()
        return self.exporter

    def start_health(self, rules: Optional[list] = None,
                     interval_s: float = 1.0, **rule_kwargs):
        """Start the SLO alert engine over the cluster's client-side
        metrics (see :meth:`PolicyServer.start_health
        <repro.serve.server.PolicyServer.start_health>` — same
        contract, cluster signal sources)."""
        from repro.obs.health import HealthMonitor, standard_rules

        if self.health is not None:
            raise RuntimeError("health monitor already running")
        if rules is None:
            rules = standard_rules(
                self._metrics,
                queue_depth_fn=self._dispatcher.queue_depth,
                shadow_report_fn=self.shadow_report,
                backend_report_fn=self.backend_report,
                **rule_kwargs,
            )
        self.health = HealthMonitor(
            rules, journal=self.journal, hub=self.hub,
            interval_s=interval_s, recorder=self.recorder,
        ).start()
        return self.health

    def start_online(
        self,
        ref: str,
        teacher: Any,
        sample_rate: float = 0.05,
        capacity: int = 4096,
        monitor: Optional[Any] = None,
        interval_s: Optional[float] = None,
        seed: Optional[int] = None,
        min_samples: int = 256,
        leaf_nodes: int = 200,
        hist_bins: int = 256,
        n_classes: Optional[int] = None,
        **controller_kwargs: Any,
    ):
        """Close the loop cluster-wide: drain sampled worker captures,
        refit against ``teacher``, auto-canary the refits (see
        :mod:`repro.serve.online` and
        :meth:`PolicyServer.start_online
        <repro.serve.server.PolicyServer.start_online>` — same
        contract).

        The cluster flavor wires two extra things: worker rings drain
        through :meth:`_drain_worker_captures` on every controller
        tick, and the controller's SLO gate reads
        :meth:`routed_service_estimate_ms` — the per-(shard, model)
        estimate, not the blended per-shard EWMA.
        """
        from repro.serve.online import (
            AutoCanaryController,
            Redistiller,
            TraceCapture,
        )

        if self._closed:
            raise RuntimeError(
                "service is closed: start_online() would capture for a "
                "dead cluster"
            )
        if self.online is not None:
            raise RuntimeError("online controller already running")
        self.capture = TraceCapture(
            capacity=capacity, sample_rate=sample_rate, seed=seed,
            hub=self.hub,
        )
        redistiller = Redistiller(
            self.capture, teacher, min_samples=min_samples,
            leaf_nodes=leaf_nodes, hist_bins=hist_bins,
            n_classes=n_classes,
            name=controller_kwargs.get("candidate") or f"{ref}-refit",
        )
        controller_kwargs.setdefault(
            "service_estimate_fn", self.routed_service_estimate_ms
        )
        self.online = AutoCanaryController(
            self, ref, redistiller,
            monitor=monitor if monitor is not None else self.health,
            journal=self.journal, hub=self.hub,
            drain_fn=self._drain_worker_captures, **controller_kwargs,
        )
        if interval_s is not None:
            self.online.start(interval_s)
        return self.online

    def batching_state(self) -> Dict[str, Any]:
        """Current front-end microbatching posture (adaptive-delay
        telemetry when the controller is wired in)."""
        return batching_state(self._dispatcher.delay,
                              self._dispatcher.max_delay_s)

    def scale_events(self) -> List[dict]:
        """Actuated autoscaling decisions so far (empty without an
        autoscaler) — what the cluster benchmark persists."""
        if self.autoscaler is None:
            return []
        return self.autoscaler.snapshot()["events"]

    def _autoscale_signals(
        self, want_p95: bool = False,
        p95_window_s: Optional[float] = None,
    ) -> Optional[dict]:
        """One load sample for the autoscaler (None once closed).

        ``p95_ms`` is computed only on request — the percentile sweep
        over the retention window is the one non-trivial cost here.
        ``p95_window_s`` restricts the sweep to recent samples so the
        SLO signal tracks current load, not the session's history.
        """
        if self._closed or self._dispatcher is None:
            return None
        delay = self._dispatcher.delay
        with self._pending_lock:
            inflight = sum(s.inflight for s in self._shards if s.alive)
        return {
            "live_shards": len(self._live_shards()),
            "fill": delay.fill if delay is not None else None,
            "queue_depth": self._dispatcher.queue_depth(),
            "inflight": inflight,
            "p95_ms": (self._metrics.p95_ms(window_s=p95_window_s)
                       if want_p95 else 0.0),
            "total_requests": self._metrics.total_requests(),
        }

    def worker_endpoints(self) -> Dict[int, Tuple[str, int]]:
        """``(host, port)`` of every live socket worker's server.

        Empty for pipe fleets (pipes have no out-of-band address).
        An :class:`~repro.serve.aio.AsyncWorkerClient` can connect to
        these endpoints directly, alongside the parent's own
        connection.
        """
        return {
            shard.shard_id: shard.transport.peer
            for shard in self._shards
            if shard.alive and hasattr(shard.transport, "peer")
        }

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Drain, stop the shards, release the shared segments.

        Ordering matters: the autoscaler stops first (no scaling races
        teardown), the front-end batcher drains (every accepted request
        is dispatched), pending replies are awaited, in-flight repairs
        are joined (a half-provisioned replacement must not leak), then
        shards stop — so zero futures drop.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        if self.online is not None:
            try:
                self.online.close()
            except Exception:  # noqa: BLE001 - teardown best effort
                pass
            self.online = None
        if self.health is not None:
            try:
                self.health.close()
            except Exception:  # noqa: BLE001 - teardown best effort
                pass
            self.health = None
        if self.exporter is not None:
            try:
                self.exporter.close()
            except Exception:  # noqa: BLE001 - teardown best effort
                pass
        if self.autoscaler is not None:
            self.autoscaler.stop()
        if self._dispatcher is not None:
            self._dispatcher.close()
        deadline = time.monotonic() + _RPC_TIMEOUT_S
        with self._pending_lock:
            while self._pending and time.monotonic() < deadline:
                self._pending_empty.wait(timeout=0.25)
        with self._repairs_lock:
            repairs = list(self._repairs)
        for repair in repairs:
            repair.join(timeout=10.0)
        for shard in self._shards:
            if shard.alive:
                try:
                    self._rpc(shard, "stop", None, timeout_s=10.0)
                except RuntimeError:
                    pass
        for shard in self._shards:
            try:
                shard.transport.close()
            except Exception:  # noqa: BLE001 - teardown best effort
                pass
            if shard.reader is not None:
                shard.reader.join(timeout=10.0)
            shard.process.join(timeout=10.0)
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=5.0)
            shard.alive = False
        for shm in self._segments.values():
            try:
                shm.close()
                shm.unlink()
            except Exception:  # noqa: BLE001 - teardown best effort
                pass
        self._segments.clear()
        # Host-cache segments are service-owned, like the anonymous
        # ones above — release whatever retire has not already.
        for key in list(self._cache_refs):
            self._release_cache_segment(key)

    def __enter__(self) -> "ShardedPolicyService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
