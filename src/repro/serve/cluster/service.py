"""Sharded multi-process policy serving.

:class:`ShardedPolicyService` scales the PR-3 serving stack past the
GIL: N worker processes each hold a full registry replica (model arrays
shared zero-copy through :mod:`repro.serve.cluster.shm`), a front-end
microbatcher coalesces single-state requests exactly like the
single-process server, and whole flush groups are round-robined (or
hash-routed) across shards as stacked arrays — one IPC message per
group, never per request.

What the parent keeps:

* a **mirror registry** — publishes validate and version here first, so
  version numbers are authoritative and `retire`'s refusal paths run
  before anything is broadcast;
* **end-to-end metrics** — client-observed latency (queue + IPC +
  service) per model, the cluster-level percentiles; each worker also
  keeps its own service-time metrics, surfaced via
  :meth:`cluster_metrics`;
* the **shared-memory segments** — the parent owns their lifetime and
  unlinks them at close.

Guarantees carried over from the single-process stack: zero dropped
futures (close() drains, shard death fails pending requests with a
structured ``shard_error`` result instead of hanging them), atomic
hot-swap at flush granularity, per-request structured errors, and
shadow answers that never reach a client future.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import pickle
import threading
import time
from concurrent.futures import Future
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.adaptive import AdaptiveDelay, batching_state
from repro.serve.artifact import PolicyArtifact
from repro.serve.batcher import (
    MicroBatcher,
    ServeResult,
    _Request,
    coerce_state_row,
)
from repro.serve.cluster.shm import ensure_tracker_running, share_artifact
from repro.serve.cluster.worker import ERR_SHARD, worker_main
from repro.serve.registry import ModelRegistry
from repro.serve.server import ServeError, ServerMetrics
from repro.serve.splitter import (
    TrafficSplit,
    TrafficSplitter,
    check_split_targets,
    guard_retire_against_splits,
)
from repro.utils.rng import SeedLike

_RPC_TIMEOUT_S = 60.0


class _Shard:
    """Parent-side handle for one worker process."""

    __slots__ = ("shard_id", "process", "conn", "send_lock", "alive",
                 "reader")

    def __init__(self, shard_id: int, process, conn) -> None:
        self.shard_id = shard_id
        self.process = process
        self.conn = conn
        self.send_lock = threading.Lock()
        self.alive = True
        self.reader: Optional[threading.Thread] = None

    def send(self, message) -> None:
        with self.send_lock:
            self.conn.send(message)


class _PredictJob:
    """Pending per-request flush group shipped to one shard."""

    __slots__ = ("requests", "shard_id")

    def __init__(self, requests: List[_Request], shard_id: int) -> None:
        self.requests = requests
        self.shard_id = shard_id


class _BulkChunk:
    """One shard's slice of a bulk submit_batch call."""

    __slots__ = ("job", "offset", "size", "shard_id")

    def __init__(self, job: "_BulkJob", offset: int, size: int,
                 shard_id: int) -> None:
        self.job = job
        self.offset = offset
        self.size = size
        self.shard_id = shard_id


class _BulkJob:
    """Aggregated future over all chunks of one submit_batch call."""

    __slots__ = ("future", "results", "outstanding", "lock", "enqueued",
                 "model")

    def __init__(self, n_rows: int, n_chunks: int, model: str) -> None:
        self.future: Future = Future()
        self.results: List[Optional[ServeResult]] = [None] * n_rows
        self.outstanding = n_chunks
        self.lock = threading.Lock()
        self.enqueued = time.perf_counter()
        #: Requested reference — failure results and metrics must
        #: attribute to it, not to a placeholder.
        self.model = model

    def chunk_done(self) -> None:
        with self.lock:
            self.outstanding -= 1
            done = self.outstanding == 0
        if done:
            self.future.set_result(list(self.results))


class _Control:
    """Pending control RPC (publish/metrics/...)."""

    __slots__ = ("event", "ok", "result", "shard_id")

    def __init__(self, shard_id: int) -> None:
        self.event = threading.Event()
        self.ok = False
        self.result: Any = None
        self.shard_id = shard_id


class _ClusterDispatcher(MicroBatcher):
    """Front-end batcher whose flush ships groups to shards.

    Inherits the queue/gather/close machinery (including the adaptive
    deadline and the zero-dropped-futures drain); only the flush is
    replaced — instead of predicting locally it stacks each reference's
    rows and hands the group to the service for routing.
    """

    def __init__(self, service: "ShardedPolicyService", **kwargs) -> None:
        super().__init__(service.registry, metrics=service._metrics,
                         **kwargs)
        self._service = service

    def _flush(self, batch: List[_Request]) -> None:
        # Parent-side validation is the artifact-independent half: the
        # worker owns the feature-count and finiteness checks (it knows
        # the artifact); the parent only guarantees numeric 1-D rows.
        by_ref: Dict[str, List[_Request]] = {}
        for request in batch:
            row, error, detail = coerce_state_row(request.state)
            if error is not None:
                self._complete_error(request, request.model, 0, error,
                                     detail)
                continue
            request.row = row
            by_ref.setdefault(request.model, []).append(request)
        for ref, requests in by_ref.items():
            # Rows of unequal length cannot stack; ship each length as
            # its own sub-group and let the worker's feature-count check
            # reject the wrong ones individually.
            by_len: Dict[int, List[_Request]] = {}
            for request in requests:
                by_len.setdefault(request.row.shape[0], []).append(request)
            for group in by_len.values():
                self._service._dispatch_group(ref, group)


class ShardedPolicyService:
    """Multi-process serving front door (same surface as PolicyServer).

    Args:
        n_shards: worker process count.
        registry: parent mirror registry (fresh one by default).
        max_batch / max_delay_s: front-end microbatching knobs.
        adaptive_delay: use a load-aware flush deadline capped at
            ``max_delay_s`` (recommended for mixed load).
        routing: ``"round_robin"`` rotates whole flush groups across
            shards; ``"hash"`` routes each request by a stable hash of
            its state (shard affinity for cache-warm models).
        split_seed: base seed for per-worker canary assignment RNGs
            (each shard derives an independent child seed).
        start_method: multiprocessing start method; default prefers
            ``fork`` (instant, shares the imported interpreter) and
            falls back to the platform default.

    Usage::

        with ShardedPolicyService(n_shards=2) as service:
            service.publish("abr", PolicyArtifact.from_tree(tree))
            result = service.submit("abr", state).result()
            actions = [r.action for r in
                       service.predict_batch("abr", states)]
    """

    def __init__(
        self,
        n_shards: int = 2,
        registry: Optional[ModelRegistry] = None,
        max_batch: int = 128,
        max_delay_s: float = 1e-3,
        max_latency_samples: int = 200_000,
        adaptive_delay: bool = False,
        routing: str = "round_robin",
        split_seed: SeedLike = None,
        start_method: Optional[str] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        if routing not in ("round_robin", "hash"):
            raise ValueError("routing must be 'round_robin' or 'hash'")
        # Validate the batcher knobs *before* anything spawns; the
        # dispatcher would reject them anyway, but only after worker
        # processes exist.
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_delay_s < 0:
            raise ValueError("max_delay_s must be non-negative")
        self.n_shards = n_shards
        self.routing = routing
        self.registry = registry if registry is not None else ModelRegistry()
        self._metrics = ServerMetrics(max_latency_samples)
        #: (name, version) -> SharedMemory the parent owns; released on
        #: retire (workers unmapped theirs) or at close.
        self._segments: Dict[Tuple[str, int], Any] = {}
        #: Parent-side record of active splits (workers hold the live
        #: routing state; this mirror backs the retire refusal check).
        self._splits: Dict[str, TrafficSplit] = {}
        # Serializes split reconfiguration against retire (the retire
        # guard is check-then-act over the split mirror).
        self._control_lock = threading.Lock()
        self._closed = False
        self._close_lock = threading.Lock()

        self._pending: Dict[int, Any] = {}
        self._pending_lock = threading.Lock()
        self._pending_empty = threading.Condition(self._pending_lock)
        self._msg_ids = itertools.count(1)
        self._rr = itertools.count()

        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        ctx = mp.get_context(start_method)
        # Children must inherit OUR resource tracker (fork inherits the
        # fd, spawn ships it in the preparation data), not grow private
        # ones that reap live segments when a worker exits.
        ensure_tracker_running()
        if split_seed is None:
            child_seeds: List[Optional[int]] = [None] * n_shards
        else:
            seq = np.random.SeedSequence(
                int(np.random.default_rng(split_seed).integers(1 << 31))
            )
            child_seeds = [
                int(child.generate_state(1)[0])
                for child in seq.spawn(n_shards)
            ]
        # Any failure after the first process spawns must tear down
        # what already started — the constructor raised, so the caller
        # never gets an object to close(), and half-started workers,
        # readers, and the dispatcher would leak for the process
        # lifetime.  (The knob validation that MicroBatcher repeats ran
        # above, before anything spawned.)
        self._shards: List[_Shard] = []
        self._dispatcher: Optional[_ClusterDispatcher] = None
        try:
            # Workers fork/spawn *before* any parent thread starts, so
            # the children never inherit a half-held lock.
            for shard_id in range(n_shards):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                process = ctx.Process(
                    target=worker_main,
                    args=(child_conn, shard_id, child_seeds[shard_id]),
                    name=f"repro-serve-shard-{shard_id}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._shards.append(_Shard(shard_id, process, parent_conn))
            for shard in self._shards:
                shard.reader = threading.Thread(
                    target=self._reader_loop, args=(shard,),
                    name=f"repro-serve-shard-{shard.shard_id}-reader",
                    daemon=True,
                )
                shard.reader.start()
            self._dispatcher = _ClusterDispatcher(
                self,
                max_batch=max_batch,
                max_delay_s=max_delay_s,
                delay=(AdaptiveDelay(max_delay_s=max_delay_s)
                       if adaptive_delay else None),
            ).start()
            # Fail fast if a worker died on startup (bad import, OOM).
            for shard in self._shards:
                reply = self._rpc(shard, "ping", None, timeout_s=30.0)
                if reply != ("pong", shard.shard_id):
                    raise RuntimeError(
                        f"shard {shard.shard_id} failed its startup ping"
                    )
        except BaseException:
            self.close()
            raise

    # -- registry control -------------------------------------------------
    def publish(
        self,
        name: str,
        artifact: PolicyArtifact,
        alias: Optional[str] = None,
    ) -> int:
        """Publish to every shard (shared memory for tree artifacts).

        The parent mirror registry publishes first — it is the
        authoritative version counter — then the artifact is broadcast;
        tree artifacts travel as one shared segment mapped by all
        shards, anything else falls back to pickling.  If any live
        shard rejects the publish, the shards that already applied it
        and the parent mirror are rolled back before the error is
        raised, so the replicas never diverge; the alias (if any) is
        installed only after every shard accepted.

        Control-plane operations (publish / alias / retire / splits)
        serialize under one lock so every shard sees them in the same
        order — interleaved broadcasts would diverge the replicas.
        """
        with self._control_lock:
            return self._publish_locked(name, artifact, alias)

    def _publish_locked(
        self,
        name: str,
        artifact: PolicyArtifact,
        alias: Optional[str],
    ) -> int:
        if artifact.flat is None:
            # Pickle fallback: serialize *once*, before the parent
            # registry publishes — an unpicklable artifact must fail
            # cleanly here (not desync replicas mid-broadcast), and the
            # resulting bytes ship to every shard without re-pickling
            # multi-MB teacher weights per shard.
            try:
                pickled: Optional[bytes] = pickle.dumps(artifact)
            except Exception as exc:  # noqa: BLE001 - any pickle error
                raise TypeError(
                    f"artifact {artifact.name!r} (kind "
                    f"{artifact.kind!r}) cannot be shipped to shards: "
                    f"it has no flat arrays for shared memory and does "
                    f"not pickle ({exc})"
                ) from exc
        else:
            pickled = None
        # Build the transport payload *before* the parent mirror
        # publishes: a share_artifact failure (e.g. /dev/shm exhausted)
        # after the mirror write would leave a phantom parent version
        # that wedges every later publish of the model.
        shm = None
        if artifact.flat is not None:
            handle, shm = share_artifact(artifact)
            payload: Any = handle
        else:
            payload = pickled
        try:
            version = self.registry.publish(name, artifact)
        except Exception:
            if shm is not None:
                shm.close()
                shm.unlink()
            raise
        if shm is not None:
            self._segments[(name, version)] = shm
        applied: List[_Shard] = []
        try:
            for shard in self._shards:
                if not shard.alive:
                    continue
                worker_version = self._rpc(
                    shard, "publish", (name, payload)
                )
                applied.append(shard)
                if worker_version != version:
                    raise RuntimeError(
                        f"shard {shard.shard_id} registered {name!r} "
                        f"as version {worker_version}, parent has "
                        f"{version}: registry replicas diverged"
                    )
            if not applied:
                raise RuntimeError("no live shards")
        except Exception:
            # Roll the already-applied shards and the parent mirror
            # back so every replica forgets the failed version.
            for shard in applied:
                if not shard.alive:
                    continue
                try:
                    self._rpc(shard, "rollback_publish", (name, version),
                              timeout_s=10.0)
                except Exception:  # noqa: BLE001 - rollback best effort
                    pass
            try:
                self.registry.rollback_publish(name, version)
            except ValueError:
                pass  # a concurrent publish superseded it; leave it
            shm = self._segments.pop((name, version), None)
            if shm is not None:
                try:
                    shm.close()
                    shm.unlink()
                except Exception:  # noqa: BLE001
                    pass
            raise
        if alias is not None:
            self._alias_locked(alias, name, None)
        return version

    def alias(
        self, alias: str, target: str, version: Optional[int] = None
    ) -> None:
        with self._control_lock:
            self._alias_locked(alias, target, version)

    def _alias_locked(
        self, alias: str, target: str, version: Optional[int]
    ) -> None:
        self.registry.alias(alias, target, version)
        self._broadcast_or_evict("alias", (alias, target, version))

    def retire(self, name: str, version: int) -> None:
        """Retire an old version cluster-wide (parent refusal rules —
        including active splits routing to it — run first, so an
        illegal retire never reaches a shard)."""
        with self._control_lock:
            guard_retire_against_splits(
                dict(self._splits), self.registry, name, version
            )
            self.registry.retire(name, version)
            self._broadcast_or_evict("retire", (name, version))
        # Workers have unmapped the retired version; release the
        # parent-owned segment so memory tracks the live set, not the
        # publish history.
        shm = self._segments.pop((name, version), None)
        if shm is not None:
            try:
                shm.close()
                shm.unlink()
            except Exception:  # noqa: BLE001 - release best effort
                pass

    # -- traffic splitting -------------------------------------------------
    def set_split(
        self,
        ref: str,
        canary: Optional[str] = None,
        canary_fraction: float = 0.0,
        shadow: Optional[str] = None,
    ) -> None:
        """Install a canary/shadow split on every shard.

        Each shard applies the new configuration atomically at its next
        flush; cross-shard skew is bounded by one in-flight batch.
        """
        with self._control_lock:
            check_split_targets(self.registry, ref, canary, shadow)
            # Constructing the config validates it before any broadcast.
            split = TrafficSplit(
                ref=ref, canary=canary,
                canary_fraction=float(canary_fraction), shadow=shadow,
            )
            # Record the mirror *before* broadcasting: if the broadcast
            # fails partway, some shard may already be routing under
            # this split, and the retire() guard must keep seeing it.
            self._splits[ref] = split
            self._broadcast_or_evict(
                "set_split", (ref, canary, float(canary_fraction), shadow)
            )

    def clear_split(self, ref: str) -> None:
        with self._control_lock:
            self._broadcast_or_evict("clear_split", ref)
            self._splits.pop(ref, None)

    def splits(self) -> Dict[str, TrafficSplit]:
        """Active splits as recorded by the parent."""
        return dict(self._splits)

    def shadow_report(self) -> Dict[str, dict]:
        """Cluster-wide shadow fidelity (summed over shards)."""
        merger = TrafficSplitter()
        for _shard, report in self._broadcast("shadow_report", None):
            merger.merge_shadow_report(report)
        return merger.shadow_report()

    # -- traffic -----------------------------------------------------------
    def submit(self, model: str, state: Any) -> "Future[ServeResult]":
        """One decision request; microbatched and routed to a shard."""
        return self._dispatcher.submit(model, state)

    def submit_async(self, model: str, state: Any):
        """Asyncio submission path; awaitable from a running loop."""
        return self._dispatcher.submit_async(model, state)

    def submit_many(
        self, model: str, states: Any
    ) -> List["Future[ServeResult]"]:
        states = np.atleast_2d(np.asarray(states, dtype=float))
        return [self._dispatcher.submit(model, row) for row in states]

    def submit_batch(
        self, model: str, states: Any
    ) -> "Future[List[ServeResult]]":
        """Bulk path: one future for a whole state matrix.

        The matrix is split into contiguous chunks across live shards
        and shipped as arrays — per-row Python cost at the front end is
        a slice, which is what lets the cluster outrun the per-request
        future machinery of the single-process server.
        """
        if self._dispatcher.closed:
            raise RuntimeError(
                "ShardedPolicyService is closed: submit_batch() after "
                "close() can never complete"
            )
        x = np.atleast_2d(np.ascontiguousarray(states, dtype=float))
        if x.ndim != 2:
            raise ValueError("submit_batch expects an (n, d) state matrix")
        shards = [s for s in self._shards if s.alive]
        n = x.shape[0]
        if not shards or n == 0:
            job = _BulkJob(n, 1, model)
            for i in range(n):
                self._metrics.record(model, 0, 0.0, error=ERR_SHARD)
                job.results[i] = ServeResult(
                    ok=False, action=None, model=model, version=0,
                    error=ERR_SHARD, detail="no live shards",
                )
            job.chunk_done()
            return job.future
        n_chunks = min(len(shards), n)
        bounds = np.linspace(0, n, n_chunks + 1).astype(int)
        job = _BulkJob(n, n_chunks, model)
        for k in range(n_chunks):
            lo, hi = int(bounds[k]), int(bounds[k + 1])
            shard = shards[k % len(shards)]
            chunk = _BulkChunk(job, lo, hi - lo, shard.shard_id)
            self._send_predict(shard, model, x[lo:hi], chunk)
        return job.future

    def predict_batch(
        self, model: str, states: Any, timeout_s: float = 60.0
    ) -> List[ServeResult]:
        """Synchronous bulk convenience returning per-row results."""
        return self.submit_batch(model, states).result(timeout=timeout_s)

    def predict(
        self, model: str, states: Any, timeout_s: float = 60.0
    ) -> np.ndarray:
        """Synchronous bulk convenience: actions or :class:`ServeError`."""
        results = self.predict_batch(model, states, timeout_s=timeout_s)
        for res in results:
            if not res.ok:
                raise ServeError(f"{model}: {res.error} ({res.detail})")
        return np.asarray([res.action for res in results])

    # -- dispatch internals ------------------------------------------------
    def _pick_shard(self) -> Optional[_Shard]:
        shards = [s for s in self._shards if s.alive]
        if not shards:
            return None
        return shards[next(self._rr) % len(shards)]

    def _dispatch_group(self, ref: str, requests: List[_Request]) -> None:
        """Route one stacked flush group to a shard (or fail it fast)."""
        if self.routing == "hash" and len(self._shards) > 1:
            buckets: Dict[int, List[_Request]] = {}
            for request in requests:
                key = hash(request.row.tobytes()) % self.n_shards
                buckets.setdefault(key, []).append(request)
            parts = list(buckets.items())
        else:
            parts = [(-1, requests)]
        for key, group in parts:
            if key >= 0 and self._shards[key].alive:
                shard: Optional[_Shard] = self._shards[key]
            else:
                shard = self._pick_shard()
            if shard is None:
                self._fail_requests(group, ref, "no live shards")
                continue
            x = np.stack([request.row for request in group])
            self._send_predict(shard, ref, x, _PredictJob(group,
                                                          shard.shard_id))

    def _send_predict(self, shard: _Shard, ref: str, x: np.ndarray,
                      entry: Any) -> None:
        msg_id = next(self._msg_ids)
        with self._pending_lock:
            self._pending[msg_id] = entry
        try:
            shard.send((msg_id, "predict", (ref, x)))
        except Exception as exc:  # noqa: BLE001 - fail, never strand
            with self._pending_lock:
                owned = self._pending.pop(msg_id, None)
            if isinstance(exc, OSError):  # broken pipe == dead shard
                self._on_shard_death(shard)
                detail = f"shard {shard.shard_id} is unreachable"
            else:  # payload problem; the shard is healthy
                detail = (
                    f"request could not be shipped to shard "
                    f"{shard.shard_id}: {exc}"
                )
            if owned is None:
                # The reader's shard-death sweep claimed the entry
                # between our insert and the send — it already failed
                # these futures; failing them twice would raise.
                return
            if isinstance(owned, _PredictJob):
                self._fail_requests(owned.requests, ref, detail)
            else:
                self._fail_chunk(owned, detail)

    def _fail_requests(self, requests: List[_Request], ref: str,
                       detail: str) -> None:
        now = time.perf_counter()
        for request in requests:
            if request.future.done():  # belt: never double-resolve
                continue
            self._metrics.record(ref, 0, now - request.enqueued,
                                 error=ERR_SHARD)
            request.future.set_result(ServeResult(
                ok=False, action=None, model=ref, version=0,
                error=ERR_SHARD, detail=detail,
                latency_s=now - request.enqueued,
            ))

    def _fail_chunk(self, chunk: _BulkChunk, detail: str) -> None:
        ref = chunk.job.model
        now = time.perf_counter()
        latency = now - chunk.job.enqueued
        for i in range(chunk.offset, chunk.offset + chunk.size):
            self._metrics.record(ref, 0, latency, error=ERR_SHARD)
            chunk.job.results[i] = ServeResult(
                ok=False, action=None, model=ref, version=0,
                error=ERR_SHARD, detail=detail, latency_s=latency,
            )
        chunk.job.chunk_done()

    # -- reply handling ----------------------------------------------------
    def _reader_loop(self, shard: _Shard) -> None:
        conn = shard.conn
        while True:
            try:
                msg_id, ok, payload = conn.recv()
            except (EOFError, OSError):
                break
            with self._pending_lock:
                entry = self._pending.pop(msg_id, None)
                if not self._pending:
                    self._pending_empty.notify_all()
            if entry is None:
                continue
            if isinstance(entry, _Control):
                entry.ok = bool(ok)
                entry.result = payload
                entry.event.set()
            elif isinstance(entry, _PredictJob):
                self._complete_predict(entry, ok, payload)
            elif isinstance(entry, _BulkChunk):
                self._complete_chunk(entry, ok, payload)
        self._on_shard_death(shard)

    def _complete_predict(self, job: _PredictJob, ok: bool,
                          payload) -> None:
        requests = job.requests
        if not ok:
            self._fail_requests(
                requests, requests[0].model,
                f"shard {job.shard_id} failed: {payload}",
            )
            return
        now = time.perf_counter()
        for name, version, idx, actions in payload["groups"]:
            if np.ndim(actions) == 1:
                values = np.asarray(actions).tolist()
            else:
                values = [np.array(row) for row in actions]
            latencies = []
            for i, action in zip(idx, values):
                request = requests[int(i)]
                latency = now - request.enqueued
                latencies.append(latency)
                request.future.set_result(ServeResult(
                    ok=True, action=action, model=name, version=version,
                    latency_s=latency,
                ))
            self._metrics.record_group(name, version, latencies)
        for i, model, version, kind, detail in payload["errors"]:
            request = requests[int(i)]
            latency = now - request.enqueued
            self._metrics.record(model, version, latency, error=kind)
            request.future.set_result(ServeResult(
                ok=False, action=None, model=model, version=version,
                error=kind, detail=detail, latency_s=latency,
            ))

    def _complete_chunk(self, chunk: _BulkChunk, ok: bool,
                        payload) -> None:
        job = chunk.job
        if not ok:
            self._fail_chunk(
                chunk, f"shard {chunk.shard_id} failed: {payload}"
            )
            return
        now = time.perf_counter()
        latency = now - job.enqueued
        for name, version, idx, actions in payload["groups"]:
            if np.ndim(actions) == 1:
                values = np.asarray(actions).tolist()
            else:
                values = [np.array(row) for row in actions]
            for i, action in zip(idx, values):
                job.results[chunk.offset + int(i)] = ServeResult(
                    ok=True, action=action, model=name, version=version,
                    latency_s=latency,
                )
            self._metrics.record_group(
                name, version, [latency] * int(len(idx))
            )
        for i, model, version, kind, detail in payload["errors"]:
            job.results[chunk.offset + int(i)] = ServeResult(
                ok=False, action=None, model=model, version=version,
                error=kind, detail=detail, latency_s=latency,
            )
            self._metrics.record(model, version, latency, error=kind)
        job.chunk_done()

    def _on_shard_death(self, shard: _Shard) -> None:
        if not shard.alive:
            return
        shard.alive = False
        # Fail everything still routed at the dead shard — a crashed
        # worker must never strand a future.
        with self._pending_lock:
            doomed = [
                (msg_id, entry) for msg_id, entry in self._pending.items()
                if getattr(entry, "shard_id", None) == shard.shard_id
            ]
            for msg_id, _entry in doomed:
                del self._pending[msg_id]
            if not self._pending:
                self._pending_empty.notify_all()
        for _msg_id, entry in doomed:
            if isinstance(entry, _PredictJob):
                self._fail_requests(
                    entry.requests, entry.requests[0].model,
                    f"shard {shard.shard_id} died",
                )
            elif isinstance(entry, _BulkChunk):
                self._fail_chunk(entry, f"shard {shard.shard_id} died")
            elif isinstance(entry, _Control):
                entry.ok = False
                entry.result = f"shard {shard.shard_id} died"
                entry.event.set()

    # -- control RPC -------------------------------------------------------
    def _rpc(self, shard: _Shard, op: str, payload,
             timeout_s: float = _RPC_TIMEOUT_S):
        control = _Control(shard.shard_id)
        msg_id = next(self._msg_ids)
        with self._pending_lock:
            self._pending[msg_id] = control
        try:
            shard.send((msg_id, op, payload))
        except OSError as exc:  # broken pipe: the shard really died
            with self._pending_lock:
                self._pending.pop(msg_id, None)
            self._on_shard_death(shard)
            raise RuntimeError(
                f"shard {shard.shard_id} is unreachable: {exc}"
            ) from exc
        except Exception as exc:
            # A payload problem (e.g. unpicklable object) is the
            # caller's fault — the shard is perfectly healthy.
            with self._pending_lock:
                self._pending.pop(msg_id, None)
            raise TypeError(
                f"payload for {op!r} cannot be shipped to shard "
                f"{shard.shard_id}: {exc}"
            ) from exc
        if not control.event.wait(timeout_s):
            raise RuntimeError(
                f"shard {shard.shard_id} did not answer {op!r} within "
                f"{timeout_s:.0f}s"
            )
        if not control.ok:
            raise RuntimeError(
                f"shard {shard.shard_id} rejected {op!r}: "
                f"{control.result}"
            )
        return control.result

    def _broadcast(self, op: str, payload) -> List[Tuple[_Shard, Any]]:
        replies = []
        for shard in self._shards:
            if shard.alive:
                replies.append((shard, self._rpc(shard, op, payload)))
        if not replies:
            raise RuntimeError("no live shards")
        return replies

    def _broadcast_or_evict(
        self, op: str, payload
    ) -> List[Tuple[_Shard, Any]]:
        """Apply a control op on every live shard, evicting any shard
        that cannot apply it.

        Publish has a rollback protocol; cheaper control ops (alias /
        retire / splits) use fail-stop instead: a replica that missed a
        control op would silently serve stale routing state forever,
        and losing one shard's capacity is strictly better than that.
        Raises only when no shard applied the op.
        """
        replies = []
        for shard in self._shards:
            if not shard.alive:
                continue
            try:
                replies.append((shard, self._rpc(shard, op, payload)))
            except Exception:  # noqa: BLE001 - evict, keep the rest
                self._on_shard_death(shard)
                try:
                    shard.process.terminate()
                except Exception:  # noqa: BLE001
                    pass
        if not replies:
            raise RuntimeError(f"no live shard could apply {op!r}")
        return replies

    # -- observability -----------------------------------------------------
    def metrics(self) -> Dict[str, dict]:
        """Cluster-level per-model metrics (client-observed latency)."""
        return self._metrics.snapshot()

    def cluster_metrics(self) -> Dict[str, Any]:
        """Full cluster view: end-to-end, per-shard, and aggregate.

        ``cluster`` carries the client-observed percentiles (the number
        that matters for SLOs); ``shards`` the per-worker service-time
        snapshots; ``aggregate`` sums shard counters and throughput —
        aggregate throughput is the scaling headline.
        """
        shard_snaps = []
        for shard, snap in self._broadcast("metrics", None):
            shard_snaps.append({"shard": shard.shard_id, "models": snap})
        aggregate: Dict[str, dict] = {}
        for snap in shard_snaps:
            for model, stats in snap["models"].items():
                agg = aggregate.setdefault(model, {
                    "requests": 0, "errors": 0, "throughput_rps": 0.0,
                    "versions": {}, "batch_sizes": {},
                })
                agg["requests"] += stats["requests"]
                agg["errors"] += stats["errors"]
                agg["throughput_rps"] += stats["throughput_rps"]
                for key, count in stats["versions"].items():
                    agg["versions"][key] = (
                        agg["versions"].get(key, 0) + count
                    )
                for key, count in stats["batch_sizes"].items():
                    agg["batch_sizes"][key] = (
                        agg["batch_sizes"].get(key, 0) + count
                    )
        return {
            "n_shards": self.n_shards,
            "live_shards": sum(1 for s in self._shards if s.alive),
            "cluster": self.metrics(),
            "shards": shard_snaps,
            "aggregate": aggregate,
        }

    def batching_state(self) -> Dict[str, Any]:
        return batching_state(self._dispatcher.delay,
                              self._dispatcher.max_delay_s)

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Drain, stop the shards, release the shared segments.

        Ordering matters: the front-end batcher drains first (every
        accepted request is dispatched), then pending replies are
        awaited, then shards stop — so zero futures drop.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        if self._dispatcher is not None:
            self._dispatcher.close()
        deadline = time.monotonic() + _RPC_TIMEOUT_S
        with self._pending_lock:
            while self._pending and time.monotonic() < deadline:
                self._pending_empty.wait(timeout=0.25)
        for shard in self._shards:
            if shard.alive:
                try:
                    self._rpc(shard, "stop", None, timeout_s=10.0)
                except RuntimeError:
                    pass
        for shard in self._shards:
            try:
                shard.conn.close()
            except OSError:
                pass
            if shard.reader is not None:
                shard.reader.join(timeout=10.0)
            shard.process.join(timeout=10.0)
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=5.0)
            shard.alive = False
        for shm in self._segments.values():
            try:
                shm.close()
                shm.unlink()
            except Exception:  # noqa: BLE001 - teardown best effort
                pass
        self._segments.clear()

    def __enter__(self) -> "ShardedPolicyService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
