"""Versioned binary wire protocol shared by every cluster transport.

PR 5's worker protocol was implicit: the parent ``conn.send()``-ed
``(msg_id, op, payload)`` tuples and let ``multiprocessing`` pickle
them, which welds the protocol to same-machine pipes (pickle framing is
the pipe's, and the payloads lean on objects only a forked child can
use).  This module makes the protocol explicit so any byte stream can
carry it:

* **frames** — every message is one self-delimiting frame: a fixed
  16-byte header (magic, protocol version, kind, body length, message
  id) followed by the body.  Pipes preserve message boundaries on
  their own; a TCP transport uses the header's body length to cut the
  stream back into frames.  The version byte is checked on every
  decode, so a mixed-version fleet fails loudly instead of
  misinterpreting bytes;
* **typed messages** — :class:`Request` (op + payload) and
  :class:`Reply` (ok + payload) with a fixed op registry
  (:data:`OPS`: publish / alias / retire / split / predict / describe
  / stop and friends).  Unknown ops and unknown type tags raise
  :class:`WireError`;
* **a typed value codec** — payloads are encoded with explicit type
  tags (None, bools, ints, floats, str, bytes, tuple/list/dict,
  numpy arrays with dtype+shape, :class:`ShmArtifactHandle`,
  :class:`WireArtifact`), with pickle only as the escape hatch for
  exotic values (e.g. a teacher artifact's closure state).  The codec
  round-trips exactly — the elastic tier's byte-identical
  replica-state comparisons run over decoded values — and is
  property-tested in ``tests/test_wire.py``.

:class:`WireArtifact` is the transport-aware artifact shipment for
remote shards: shm handles only work for co-located processes, so the
socket path ships the raw segment bytes (or the pickled artifact) once
per host into a named host-level cache segment keyed by the artifact's
transport hash; subsequent publishes of the same bytes to that host
send only the key and workers attach to the cached segment.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from typing import Any, Optional, Union

import numpy as np

from repro.serve.cluster.shm import SharedArraySpec, ShmArtifactHandle

#: First two bytes of every frame ("repro wire").
WIRE_MAGIC = b"RW"
#: Highest protocol version this side speaks, checked on every decode.
#: Version 2 adds an optional trace field to request frames (body =
#: op code + typed trace value + typed payload).  Encoding is
#: conservative: frames that carry no trace — and every reply — are
#: still emitted as version 1, byte-identical to the version-1 codec,
#: so a mixed-version fleet interoperates until tracing is actually
#: switched on.  Decoding accepts both versions.
WIRE_VERSION = 2
#: Oldest version still decoded (and the on-wire version of every
#: untraced frame).
WIRE_VERSION_MIN = 1

#: Frame kinds (header byte 3).
KIND_REQUEST = 0
KIND_REPLY_OK = 1
KIND_REPLY_ERR = 2

#: magic(2) | version(1) | kind(1) | body length(4) | message id(8).
_HEADER = struct.Struct("!2sBBIQ")
HEADER_SIZE = _HEADER.size

#: The complete op registry; requests carry the op as a 1-byte code.
OPS = (
    "publish", "publish_tombstone", "rollback_publish", "alias",
    "retire", "predict", "set_split", "clear_split", "metrics",
    "shadow_report", "describe", "ping", "stop", "backend_report",
    "metrics_snapshot", "events_since", "capture_drain",
)
_OP_CODES = {op: index + 1 for index, op in enumerate(OPS)}
_CODE_OPS = {code: op for op, code in _OP_CODES.items()}


class WireError(ValueError):
    """Malformed frame: bad magic, version mismatch, truncated body,
    unknown op code, or an unknown value tag."""


@dataclass(frozen=True)
class Request:
    """One control/data-plane request (parent -> worker).

    ``trace`` is the optional observability context (version 2): a
    plain typed value — in practice a small dict with the trace id —
    forwarded verbatim so the worker can continue a sampled trace.
    ``None`` (the default) keeps the frame on the version-1 encoding.
    """

    msg_id: int
    op: str
    payload: Any = None
    trace: Any = None


@dataclass(frozen=True)
class Reply:
    """One response (worker -> parent); ``payload`` is the result when
    ``ok`` and the error text otherwise."""

    msg_id: int
    ok: bool
    payload: Any = None


@dataclass(frozen=True)
class WireArtifact:
    """Transport-aware artifact shipment for non-co-located shards.

    ``key`` is the content key of the shipped bytes (the shm transport
    hash for tree artifacts, a digest of the pickled bytes otherwise)
    and ``segment`` the name of the host-level cache segment those
    bytes live in.  ``payload`` carries the raw bytes exactly once per
    (host, key): the first worker on a host creates and fills the
    named segment, every later publish/replay of the same key ships
    ``payload=None`` and the worker attaches to the existing segment.
    ``handle`` describes the array layout for tree artifacts (its
    ``shm_name`` already points at ``segment``); ``handle=None`` means
    the segment holds one length-prefixed pickled artifact.
    ``kernel`` piggybacks the compiled native kernel's ``.so`` bytes on
    the same once-per-(host, key) discipline as ``payload``: shipped
    only alongside the raw artifact bytes, installed into the host's
    kernel cache (keyed by the kernel hash in ``handle.meta``), and
    hash-verified at dlopen — a worker that can't use it just serves
    through numpy.
    """

    key: str
    segment: str
    handle: Optional[ShmArtifactHandle]
    payload: Optional[bytes]
    kernel: Optional[bytes] = None


# -- typed value codec ----------------------------------------------------
_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3       # 8-byte signed big-endian
_T_BIGINT = 4    # decimal string (outside int64 range)
_T_FLOAT = 5     # IEEE-754 double
_T_STR = 6
_T_BYTES = 7
_T_TUPLE = 8
_T_LIST = 9
_T_DICT = 10
_T_NDARRAY = 11  # dtype + shape + C-contiguous raw bytes
_T_HANDLE = 12   # ShmArtifactHandle
_T_WIREART = 13  # WireArtifact
_T_PICKLE = 14   # escape hatch for values outside the typed surface

_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")
_INT64_MIN, _INT64_MAX = -(1 << 63), (1 << 63) - 1


def _encode_value(buf: bytearray, value: Any) -> None:
    if value is None:
        buf.append(_T_NONE)
    elif value is True:
        buf.append(_T_TRUE)
    elif value is False:
        buf.append(_T_FALSE)
    elif isinstance(value, (int, np.integer)) and not isinstance(
        value, np.bool_
    ):
        value = int(value)
        if _INT64_MIN <= value <= _INT64_MAX:
            buf.append(_T_INT)
            buf += _I64.pack(value)
        else:
            raw = str(value).encode("ascii")
            buf.append(_T_BIGINT)
            buf += _U32.pack(len(raw))
            buf += raw
    elif isinstance(value, (float, np.floating)):
        buf.append(_T_FLOAT)
        buf += _F64.pack(float(value))
    elif isinstance(value, np.bool_):
        buf.append(_T_TRUE if bool(value) else _T_FALSE)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        buf.append(_T_STR)
        buf += _U32.pack(len(raw))
        buf += raw
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        buf.append(_T_BYTES)
        buf += _U64.pack(len(raw))
        buf += raw
    elif isinstance(value, tuple):
        buf.append(_T_TUPLE)
        buf += _U32.pack(len(value))
        for item in value:
            _encode_value(buf, item)
    elif isinstance(value, list):
        buf.append(_T_LIST)
        buf += _U32.pack(len(value))
        for item in value:
            _encode_value(buf, item)
    elif isinstance(value, dict):
        buf.append(_T_DICT)
        buf += _U32.pack(len(value))
        for key, item in value.items():
            _encode_value(buf, key)
            _encode_value(buf, item)
    elif isinstance(value, np.ndarray) and not value.dtype.hasobject:
        arr = np.ascontiguousarray(value)
        if arr.shape != value.shape:
            # ascontiguousarray promotes 0-d to 1-d; the wire must
            # return exactly the shape that was sent.
            arr = arr.reshape(value.shape)
        dtype = str(arr.dtype).encode("ascii")
        buf.append(_T_NDARRAY)
        buf += _U32.pack(len(dtype))
        buf += dtype
        buf.append(arr.ndim)
        for dim in arr.shape:
            buf += _U64.pack(dim)
        raw = arr.tobytes()
        buf += _U64.pack(len(raw))
        buf += raw
    elif isinstance(value, ShmArtifactHandle):
        buf.append(_T_HANDLE)
        _encode_value(buf, (
            value.shm_name, value.name, value.kind, value.n_features,
            value.n_outputs, value.content_hash, value.source,
            value.meta,
            tuple((spec.field, spec.dtype, spec.shape, spec.offset)
                  for spec in value.arrays),
            value.total_bytes, value.transport_hash,
        ))
    elif isinstance(value, WireArtifact):
        buf.append(_T_WIREART)
        _encode_value(buf, (
            value.key, value.segment, value.handle, value.payload,
            value.kernel,
        ))
    else:
        raw = pickle.dumps(value)
        buf.append(_T_PICKLE)
        buf += _U64.pack(len(raw))
        buf += raw


def _decode_value(view: memoryview, pos: int) -> tuple:
    try:
        tag = view[pos]
    except IndexError:
        raise WireError("truncated frame: missing value tag") from None
    pos += 1
    try:
        if tag == _T_NONE:
            return None, pos
        if tag == _T_TRUE:
            return True, pos
        if tag == _T_FALSE:
            return False, pos
        if tag == _T_INT:
            return _I64.unpack_from(view, pos)[0], pos + 8
        if tag == _T_BIGINT:
            size = _U32.unpack_from(view, pos)[0]
            pos += 4
            return int(bytes(view[pos:pos + size]).decode("ascii")), \
                pos + size
        if tag == _T_FLOAT:
            return _F64.unpack_from(view, pos)[0], pos + 8
        if tag == _T_STR:
            size = _U32.unpack_from(view, pos)[0]
            pos += 4
            return bytes(view[pos:pos + size]).decode("utf-8"), pos + size
        if tag == _T_BYTES:
            size = _U64.unpack_from(view, pos)[0]
            pos += 8
            if pos + size > len(view):
                raise WireError("truncated frame: bytes run past body")
            return bytes(view[pos:pos + size]), pos + size
        if tag in (_T_TUPLE, _T_LIST):
            count = _U32.unpack_from(view, pos)[0]
            pos += 4
            items = []
            for _ in range(count):
                item, pos = _decode_value(view, pos)
                items.append(item)
            return (tuple(items) if tag == _T_TUPLE else items), pos
        if tag == _T_DICT:
            count = _U32.unpack_from(view, pos)[0]
            pos += 4
            out = {}
            for _ in range(count):
                key, pos = _decode_value(view, pos)
                item, pos = _decode_value(view, pos)
                out[key] = item
            return out, pos
        if tag == _T_NDARRAY:
            size = _U32.unpack_from(view, pos)[0]
            pos += 4
            dtype = np.dtype(bytes(view[pos:pos + size]).decode("ascii"))
            pos += size
            ndim = view[pos]
            pos += 1
            shape = []
            for _ in range(ndim):
                shape.append(_U64.unpack_from(view, pos)[0])
                pos += 8
            nbytes = _U64.unpack_from(view, pos)[0]
            pos += 8
            if pos + nbytes > len(view):
                raise WireError("truncated frame: array runs past body")
            arr = np.frombuffer(
                bytes(view[pos:pos + nbytes]), dtype=dtype
            ).reshape(tuple(shape))
            return arr, pos + nbytes
        if tag == _T_HANDLE:
            fields, pos = _decode_value(view, pos)
            (shm_name, name, kind, n_features, n_outputs, content_hash,
             source, meta, specs, total_bytes, transport_hash) = fields
            return ShmArtifactHandle(
                shm_name=shm_name, name=name, kind=kind,
                n_features=n_features, n_outputs=n_outputs,
                content_hash=content_hash, source=source, meta=meta,
                arrays=tuple(
                    SharedArraySpec(field=field, dtype=dtype,
                                    shape=tuple(shape), offset=offset)
                    for field, dtype, shape, offset in specs
                ),
                total_bytes=total_bytes, transport_hash=transport_hash,
            ), pos
        if tag == _T_WIREART:
            fields, pos = _decode_value(view, pos)
            key, segment, handle, payload, kernel = fields
            return WireArtifact(key=key, segment=segment, handle=handle,
                                payload=payload, kernel=kernel), pos
        if tag == _T_PICKLE:
            size = _U64.unpack_from(view, pos)[0]
            pos += 8
            if pos + size > len(view):
                raise WireError("truncated frame: pickle runs past body")
            return pickle.loads(bytes(view[pos:pos + size])), pos + size
    except struct.error as exc:
        raise WireError(f"truncated frame: {exc}") from exc
    raise WireError(f"unknown value tag {tag}")


def encode_value(value: Any) -> bytes:
    """Encode one payload value (exposed for tests and tooling)."""
    buf = bytearray()
    _encode_value(buf, value)
    return bytes(buf)


def decode_value(raw: bytes) -> Any:
    """Decode one payload value; trailing bytes are a :class:`WireError`."""
    value, pos = _decode_value(memoryview(raw), 0)
    if pos != len(raw):
        raise WireError(
            f"trailing garbage: {len(raw) - pos} bytes after value"
        )
    return value


# -- framing --------------------------------------------------------------
def _frame(kind: int, msg_id: int, body: bytes,
           version: int = WIRE_VERSION_MIN) -> bytes:
    if len(body) > 0xFFFFFFFF:
        raise WireError(
            f"frame body of {len(body)} bytes exceeds the u32 length "
            f"field; ship oversized artifacts through the host cache"
        )
    return _HEADER.pack(WIRE_MAGIC, version, kind, len(body),
                        msg_id) + body


def encode_request(request: Request) -> bytes:
    """Frame one :class:`Request`.

    Untraced requests encode exactly as version 1 did (op code byte +
    payload); a request carrying a trace context encodes as version 2
    (op code byte + trace value + payload), which a version-1 peer
    rejects loudly rather than misreading.
    """
    code = _OP_CODES.get(request.op)
    if code is None:
        raise WireError(f"unknown op {request.op!r}")
    buf = bytearray([code])
    if request.trace is None:
        _encode_value(buf, request.payload)
        return _frame(KIND_REQUEST, request.msg_id, bytes(buf))
    _encode_value(buf, request.trace)
    _encode_value(buf, request.payload)
    return _frame(KIND_REQUEST, request.msg_id, bytes(buf),
                  version=WIRE_VERSION)


def encode_reply(reply: Reply) -> bytes:
    """Frame one :class:`Reply` (kind encodes ok/error).  Replies carry
    no trace field and always use the version-1 encoding."""
    kind = KIND_REPLY_OK if reply.ok else KIND_REPLY_ERR
    buf = bytearray()
    _encode_value(buf, reply.payload)
    return _frame(kind, reply.msg_id, bytes(buf))


def parse_header(header: bytes) -> tuple:
    """Validate a frame header; returns ``(kind, body_len, msg_id)``."""
    if len(header) < HEADER_SIZE:
        raise WireError(
            f"short header: {len(header)} bytes, need {HEADER_SIZE}"
        )
    magic, version, kind, body_len, msg_id = _HEADER.unpack_from(header)
    if magic != WIRE_MAGIC:
        raise WireError(f"bad magic {magic!r} (not a wire frame)")
    if not WIRE_VERSION_MIN <= version <= WIRE_VERSION:
        raise WireError(
            f"wire version {version} is not supported "
            f"(this side speaks {WIRE_VERSION_MIN}..{WIRE_VERSION})"
        )
    if kind not in (KIND_REQUEST, KIND_REPLY_OK, KIND_REPLY_ERR):
        raise WireError(f"unknown frame kind {kind}")
    return kind, body_len, msg_id


def frame_size(header: bytes) -> int:
    """Total frame size from its header — how stream transports cut a
    byte stream back into frames."""
    _kind, body_len, _msg_id = parse_header(header)
    return HEADER_SIZE + body_len


def decode_frame(frame: bytes) -> Union[Request, Reply]:
    """Decode one complete frame into a :class:`Request` or
    :class:`Reply`.  Accepts every version in
    ``WIRE_VERSION_MIN..WIRE_VERSION``."""
    kind, body_len, msg_id = parse_header(frame)
    if len(frame) != HEADER_SIZE + body_len:
        raise WireError(
            f"frame length {len(frame)} does not match header "
            f"({HEADER_SIZE + body_len})"
        )
    version = frame[2]
    body = memoryview(frame)[HEADER_SIZE:]
    if kind == KIND_REQUEST:
        if body_len < 1:
            raise WireError("request frame without an op code")
        op = _CODE_OPS.get(body[0])
        if op is None:
            raise WireError(f"unknown op code {body[0]}")
        trace = None
        pos = 1
        if version >= 2:
            trace, pos = _decode_value(body, pos)
        payload, pos = _decode_value(body, pos)
        if pos != len(body):
            raise WireError("trailing garbage after request payload")
        return Request(msg_id=msg_id, op=op, payload=payload, trace=trace)
    payload, pos = _decode_value(body, 0)
    if pos != len(body):
        raise WireError("trailing garbage after reply payload")
    return Reply(msg_id=msg_id, ok=kind == KIND_REPLY_OK, payload=payload)
