"""Trace-replay load generators for the policy server.

One harness, three scenarios — the heterogeneous per-scenario serving
story the related work motivates (BBRv3-style measurement harness around
a deployed policy; side-by-side heterogeneous policies):

* **ABR** — realistic Pensieve-layout session states collected by
  rolling the trace-driven ABR environment under a rate-based heuristic;
* **flows** — AuTO lRLA decision states produced by the fabric simulator
  under Poisson flow arrivals (``envs/flows/workloads.py`` workloads);
* **routing** — RouteNet-style candidate-path scoring queries (demand,
  hops, link-load context) over NSFNet gravity traffic.

``run_load`` replays any state matrix against a live
:class:`~repro.serve.server.PolicyServer` with N closed-loop client
threads submitting single-state requests — exactly the concurrency shape
microbatching exists for — and reports client-observed throughput and
latency percentiles plus the registry versions that answered.
:func:`run_load_async` is the thread-free sibling: N closed-loop
*coroutine* clients in one event loop, driving the same batcher through
its asyncio submission path (optionally in pipelined chunks — the
cluster tier's bulk mode).

**Measurement methodology** (documented in ``docs/benchmarks.md``):
both harnesses support a ``warmup`` phase — each client replays
``warmup`` unmeasured requests, all clients rendezvous, and only then
does the measured window open.  Throughput therefore divides measured
requests by the measured window alone; cold-start costs (thread/loop
spin-up, first-flush ramp, allocator warm paths) never inflate the
denominator.  With ``warmup=0`` the harness behaves exactly as before.

**Load shapes** for exercising the elastic cluster tier:

* :func:`hot_key_states` — a skewed key distribution (one hot state
  repeated for most rows), which concentrates hash-affinity traffic
  onto one shard;
* ``run_load_async(burst=..., burst_pause_s=...)`` — bursty arrivals:
  each client fires a burst of requests concurrently, then pauses, so
  offered load arrives in spikes instead of a steady stream;
* :class:`SyntheticCost` / :func:`synthetic_artifact` — a picklable
  fixed-cost decision function for heterogeneous-workload experiments
  (an expensive model next to a cheap one is what separates load-aware
  routing from round-robin);
* :func:`run_mixed_load_async` — several (model, states, clients)
  workloads sharing one event loop and one measured window, reporting
  per-workload and aggregate throughput.

Every state generator takes ``seed: SeedLike`` — an int, ``None``, or an
explicit ``numpy.random.Generator``.  Passing one shared Generator
across several calls draws from a single deterministic stream, which is
how the async harness gives many logical clients reproducible but
distinct workloads.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

from repro.utils.rng import SeedLike, as_rng


# ----------------------------------------------------------------------
# Scenario state generators
# ----------------------------------------------------------------------
def abr_request_states(
    n_sessions: int = 8,
    n_chunks: int = 48,
    seed: SeedLike = 0,
    trace_kind: str = "hsdpa",
) -> np.ndarray:
    """Pensieve-layout states from rate-based ABR sessions, shape (n, 25).

    ``seed`` may be an explicit ``numpy.random.Generator``; the session
    randomness is drawn from it (and advances it), so several calls can
    share one deterministic stream.
    """
    from repro.envs.abr import ABREnv, Video
    from repro.envs.abr.baselines import RateBased
    from repro.envs.traces import trace_set

    video = Video.synthetic(n_chunks=n_chunks, seed=7)
    traces = trace_set(trace_kind, max(n_sessions, 1), seed=11)
    env = ABREnv(video, traces)
    policy = RateBased()
    rng = as_rng(seed)
    states: List[np.ndarray] = []
    for _ in range(n_sessions):
        policy.reset()
        state = env.reset(rng)
        done = False
        while not done:
            states.append(np.asarray(state, dtype=float))
            state, _, done, _ = env.step(policy.select(state, env))
    return np.asarray(states)


def flow_request_states(
    duration_s: float = 2.0,
    load: float = 0.7,
    seed: SeedLike = 0,
    capacity_bps: float = 1e9,
    min_rows: int = 256,
    workload=None,
) -> np.ndarray:
    """AuTO lRLA decision states from simulated flow arrivals, (n, 12).

    Simulation windows are repeated (fresh seeds) until at least
    ``min_rows`` central decisions are recorded.  ``seed`` accepts an
    explicit ``numpy.random.Generator``, which every window draws from
    (one shared deterministic stream across callers).
    """
    from repro.envs.flows.mlfq import MLFQConfig
    from repro.envs.flows.simulator import FabricSimulator
    from repro.envs.flows.workloads import WEB_SEARCH, generate_flows
    from repro.teachers.auto import LONG_FLOW_BYTES, sjf_priority

    if workload is None:
        workload = WEB_SEARCH
    rng = as_rng(seed)
    records: List[np.ndarray] = []
    for _ in range(50):  # bounded retries; each window adds decisions
        flows = generate_flows(
            workload, load=load, capacity_bps=capacity_bps,
            duration_s=duration_s, seed=rng,
        )

        def decide(flow, snapshot):
            features = np.asarray(snapshot.feature_vector(), dtype=float)
            records.append(features)
            return sjf_priority(features)

        FabricSimulator(
            capacity_bps=capacity_bps,
            mlfq=MLFQConfig(),
            decision_fn=decide,
            decision_latency_s=0.0,
            decision_min_bytes=LONG_FLOW_BYTES,
        ).run(flows)
        if len(records) >= min_rows:
            break
    return np.asarray(records)


def routing_request_states(
    n_queries: int = 512,
    seed: SeedLike = 0,
    utilization: float = 0.5,
) -> np.ndarray:
    """RouteNet-style candidate-path queries over NSFNet, shape (n, 4).

    Each row scores one candidate path for one demand pair under one
    gravity traffic matrix: ``[demand, hops, max_link_load,
    mean_link_load]`` — the per-candidate context RouteNet* builds when
    it probes paths.  ``seed`` accepts an explicit
    ``numpy.random.Generator`` (traffic-matrix seeds are drawn from it).
    """
    from repro.envs.routing import gravity_demands, nsfnet
    from repro.envs.routing.delay import shortest_path_routing

    topology = nsfnet()
    routing = shortest_path_routing(topology)
    pairs = routing.pairs()
    inc = routing.incidence(topology)
    rng = as_rng(seed)
    rows: List[List[float]] = []
    tm_count = 0
    while len(rows) < n_queries:
        tm_count += 1
        tm = gravity_demands(
            topology, utilization=utilization,
            seed=int(rng.integers(1 << 31)), count=1,
        )[0]
        demands = np.asarray([tm.volume(*p) for p in pairs])
        loads = inc.T @ demands
        for pair in pairs:
            demand = tm.volume(*pair)
            for cand in topology.candidate_paths(*pair):
                link_loads = np.asarray([
                    loads[topology.link_index(link)]
                    for link in topology.path_links(cand)
                ])
                rows.append([
                    float(demand),
                    float(len(cand) - 1),
                    float(link_loads.max()),
                    float(link_loads.mean()),
                ])
                if len(rows) >= n_queries:
                    break
            if len(rows) >= n_queries:
                break
        if tm_count > 50:
            break
    return np.asarray(rows)


def hot_key_states(
    pool: np.ndarray,
    n_rows: int = 4096,
    hot_fraction: float = 0.9,
    seed: SeedLike = 0,
) -> np.ndarray:
    """A skewed request mix: one hot state dominates the stream.

    ``hot_fraction`` of the returned rows are a single row drawn from
    ``pool`` (the "hot key"), the rest are sampled uniformly from the
    pool; the order is shuffled.  Under hash-affinity routing the hot
    key pins to one shard, which is the classic skew that load-blind
    placement cannot absorb — the workload the cluster benchmark uses
    to compare routers.
    """
    pool = np.atleast_2d(np.asarray(pool, dtype=float))
    if pool.shape[0] == 0:
        raise ValueError("pool must contain at least one row")
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in [0, 1]")
    rng = as_rng(seed)
    hot = pool[int(rng.integers(pool.shape[0]))]
    n_hot = int(round(n_rows * hot_fraction))
    cold = pool[rng.integers(0, pool.shape[0], n_rows - n_hot)]
    rows = np.concatenate([np.tile(hot, (n_hot, 1)), cold], axis=0)
    rng.shuffle(rows, axis=0)
    return rows


class SyntheticCost:
    """A picklable decision function with a fixed per-call service cost.

    Occupies a shard for ``per_call_s`` seconds per predict call, then
    answers a cheap deterministic action per row.  Defined at module
    level with plain attributes so the cluster's pickle transport ships
    it to shards; wrap via :func:`synthetic_artifact`.

    By default the cost is a *sleep*: the worker process is occupied
    (it answers nothing else — its pipe is FIFO) while the CPU stays
    free, so the serving-time asymmetry is exact on any machine,
    including single-core CI runners where a busy wait would just be
    scheduler noise.  ``spin=True`` burns CPU instead, for experiments
    about compute saturation rather than routing.

    Heterogeneous per-model cost is the cleanest way to make routing
    quality measurable: publish one expensive and one cheap synthetic
    model and round-robin's load-blindness becomes a throughput gap
    instead of an argument.
    """

    def __init__(self, n_features: int = 8, per_call_s: float = 1e-3,
                 n_actions: int = 4, spin: bool = False) -> None:
        if per_call_s < 0:
            raise ValueError("per_call_s must be non-negative")
        self.n_features = int(n_features)
        self.per_call_s = float(per_call_s)
        self.n_actions = int(n_actions)
        self.spin = bool(spin)

    def __call__(self, states: np.ndarray) -> np.ndarray:
        states = np.atleast_2d(np.asarray(states, dtype=float))
        if self.spin:
            deadline = time.perf_counter() + self.per_call_s
            while time.perf_counter() < deadline:
                pass
        elif self.per_call_s > 0:
            time.sleep(self.per_call_s)
        return np.abs(states).sum(axis=1).astype(int) % self.n_actions


def synthetic_artifact(
    name: str,
    per_call_s: float,
    n_features: int = 8,
    n_actions: int = 4,
    spin: bool = False,
):
    """Package a :class:`SyntheticCost` as a servable function artifact.

    The content hash derives from the cost parameters, so two
    artifacts with the same knobs are (correctly) content-identical.
    """
    import hashlib

    from repro.serve.artifact import PolicyArtifact

    content = hashlib.sha256(
        f"synthetic:{n_features}:{per_call_s}:{n_actions}:{spin}".encode()
    ).hexdigest()[:16]
    return PolicyArtifact(
        name=name,
        kind="function",
        n_features=n_features,
        n_outputs=n_actions,
        predict_batch=SyntheticCost(n_features, per_call_s, n_actions,
                                    spin=spin),
        content_hash=content,
        meta={"synthetic_per_call_s": per_call_s, "synthetic_spin": spin},
    )


# ----------------------------------------------------------------------
# Replay harness
# ----------------------------------------------------------------------
@dataclass
class LoadReport:
    """Client-side view of one load run against a live server."""

    scenario: str
    model: str
    n_clients: int
    n_requests: int
    n_errors: int
    duration_s: float
    throughput_rps: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    versions: Dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "model": self.model,
            "n_clients": self.n_clients,
            "n_requests": self.n_requests,
            "n_errors": self.n_errors,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_mean_ms": self.latency_mean_ms,
            "versions": {int(k): int(v) for k, v in self.versions.items()},
        }


def run_load(
    server,
    model: str,
    states: np.ndarray,
    n_clients: int = 8,
    repeats: int = 1,
    scenario: str = "custom",
    timeout_s: float = 60.0,
    warmup: int = 0,
) -> LoadReport:
    """Replay ``states`` through ``server`` with closed-loop clients.

    Rows are dealt round-robin across ``n_clients`` threads; each client
    submits its rows one request at a time (``repeats`` passes), waiting
    for every response — so server-side concurrency equals the number of
    clients still running, and microbatching is what coalesces them.

    With ``warmup > 0``, each client first replays that many unmeasured
    requests; all clients then rendezvous at a barrier before the
    measured window opens.  Warmup requests appear in neither the
    request count nor the wall time, so reported throughput is
    steady-state, not cold-start-diluted (see ``docs/benchmarks.md``).
    """
    states = np.atleast_2d(np.asarray(states, dtype=float))
    if states.shape[0] == 0:
        raise ValueError("states must contain at least one row")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    n_clients = max(1, min(n_clients, states.shape[0]))
    chunks = [states[i::n_clients] for i in range(n_clients)]
    outputs: List[tuple] = [None] * n_clients
    barrier = threading.Barrier(n_clients + 1)
    # Second rendezvous between warmup and the measured window: the
    # window must not open while any client is still warming up.
    measured = threading.Barrier(n_clients + 1)

    failures: List[BaseException] = []

    def client(idx: int, rows: np.ndarray) -> None:
        latencies: List[float] = []
        versions: Counter = Counter()
        errors = 0
        try:
            barrier.wait()
            try:
                for i in range(warmup):
                    server.submit(model, rows[i % rows.shape[0]]).result(
                        timeout=timeout_s
                    )
            finally:
                # Release the measured barrier even on a warmup
                # failure, or every other client would deadlock in it.
                measured.wait()
            for _ in range(repeats):
                for row in rows:
                    start = time.perf_counter()
                    result = server.submit(model, row).result(
                        timeout=timeout_s
                    )
                    latencies.append(time.perf_counter() - start)
                    if result.ok:
                        versions[result.version] += 1
                    else:
                        errors += 1
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            failures.append(exc)
        outputs[idx] = (latencies, versions, errors)

    threads = [
        threading.Thread(target=client, args=(i, chunk), daemon=True)
        for i, chunk in enumerate(chunks)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    measured.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - start
    if failures:
        # Surface the real failure (timeout, closed server) instead of
        # letting a half-empty aggregation produce a cryptic error.
        raise RuntimeError(
            f"{len(failures)} load client(s) failed; first failure: "
            f"{failures[0]!r}"
        ) from failures[0]

    return _assemble_report(outputs, duration, scenario, model, n_clients)


def _assemble_report(
    outputs, duration: float, scenario: str, model: str, n_clients: int
) -> LoadReport:
    """Merge per-client ``(latencies, versions, errors)`` tuples into
    one :class:`LoadReport` (shared by the threaded and async
    harnesses, so the two can never drift apart)."""
    all_latencies: List[float] = []
    versions: Counter = Counter()
    errors = 0
    for latencies, client_versions, client_errors in outputs:
        all_latencies.extend(latencies)
        versions.update(client_versions)
        errors += client_errors
    lat = np.asarray(all_latencies)
    p50, p95, p99 = (
        np.percentile(lat, [50, 95, 99]) if lat.size else (0.0, 0.0, 0.0)
    )
    return LoadReport(
        scenario=scenario,
        model=model,
        n_clients=n_clients,
        n_requests=int(lat.size),
        n_errors=errors,
        duration_s=float(duration),
        throughput_rps=float(lat.size / duration) if duration > 0 else 0.0,
        latency_p50_ms=float(p50 * 1e3),
        latency_p95_ms=float(p95 * 1e3),
        latency_p99_ms=float(p99 * 1e3),
        latency_mean_ms=float(lat.mean() * 1e3) if lat.size else 0.0,
        versions=dict(versions),
    )


async def _async_client(
    aio,
    model: str,
    rows: np.ndarray,
    repeats: int,
    chunk: int,
    timeout_s: float,
    burst: int = 1,
    burst_pause_s: float = 0.0,
):
    """One closed-loop coroutine client (shared by the async harnesses).

    Submits ``burst`` chunks concurrently per await round, then pauses
    ``burst_pause_s`` — ``burst=1`` with no pause is the strict closed
    loop.  Returns the ``(latencies, versions, errors)`` triple
    :func:`_assemble_report` merges.
    """
    latencies: List[float] = []
    versions: Counter = Counter()
    errors = 0
    for _ in range(repeats):
        pos = 0
        while pos < rows.shape[0]:
            tasks = []
            begin = time.perf_counter()
            for _b in range(burst):
                if pos >= rows.shape[0]:
                    break
                sub = rows[pos:pos + chunk]
                pos += chunk
                if chunk == 1:
                    tasks.append(aio.predict(model, sub[0]))
                else:
                    tasks.append(aio.predict_many(model, sub))
            answers = await asyncio.wait_for(
                asyncio.gather(*tasks), timeout_s
            )
            elapsed = time.perf_counter() - begin
            results = []
            for answer in answers:
                results.extend(answer if isinstance(answer, list)
                               else [answer])
            # Per-row latency within one awaited round is the round's
            # trip time (each row waited for the whole answer).
            latencies.extend([elapsed] * len(results))
            for result in results:
                if result.ok:
                    versions[result.version] += 1
                else:
                    errors += 1
            if burst_pause_s > 0:
                await asyncio.sleep(burst_pause_s)
    return latencies, versions, errors


def run_load_async(
    server,
    model: str,
    states: np.ndarray,
    n_clients: int = 64,
    repeats: int = 1,
    scenario: str = "custom",
    timeout_s: float = 60.0,
    chunk: int = 1,
    warmup: int = 0,
    burst: int = 1,
    burst_pause_s: float = 0.0,
) -> LoadReport:
    """Closed-loop replay with coroutine clients instead of threads.

    The async twin of :func:`run_load`: rows are dealt round-robin
    across ``n_clients`` *coroutines* in one event loop, so a thousand
    concurrent clients cost a thousand coroutine frames, not a thousand
    OS threads fighting over the GIL.

    Args:
        chunk: requests each client keeps in flight per await.  1 is a
            strict closed loop (one request, await, repeat) measuring
            per-decision latency; larger values submit ``chunk`` rows
            per await through :meth:`AsyncPolicyClient.predict_many` —
            on a cluster backend that is the bulk array path, the
            throughput mode.
        warmup: unmeasured requests per client before the measured
            window opens (all clients finish warming before timing
            starts; see :func:`run_load`).
        burst / burst_pause_s: arrival shaping — each client fires
            ``burst`` chunks concurrently, awaits them all, then
            sleeps ``burst_pause_s``.  Offered load arrives in spikes,
            the pattern that exposes load-blind routing.
    """
    from repro.serve.aio import AsyncPolicyClient

    if chunk < 1:
        raise ValueError("chunk must be at least 1")
    if burst < 1:
        raise ValueError("burst must be at least 1")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    states = np.atleast_2d(np.asarray(states, dtype=float))
    if states.shape[0] == 0:
        raise ValueError("states must contain at least one row")
    n_clients = max(1, min(n_clients, states.shape[0]))
    deals = [states[i::n_clients] for i in range(n_clients)]
    timing: Dict[str, float] = {}

    async def main():
        aio = AsyncPolicyClient(server)
        if warmup:
            # The warmup gather is itself the rendezvous: no client
            # enters the measured window until every warmup completed.
            await asyncio.gather(*[
                _async_client(aio, model, rows[:1].repeat(warmup, axis=0),
                              1, chunk, timeout_s)
                for rows in deals
            ])
        timing["start"] = time.perf_counter()
        outputs = await asyncio.gather(*[
            _async_client(aio, model, rows, repeats, chunk, timeout_s,
                          burst=burst, burst_pause_s=burst_pause_s)
            for rows in deals
        ])
        timing["duration"] = time.perf_counter() - timing["start"]
        return outputs

    outputs = asyncio.run(main())
    return _assemble_report(
        outputs, timing["duration"], scenario, model, n_clients
    )


def run_mixed_load_async(
    server,
    jobs: List[dict],
    timeout_s: float = 60.0,
    warmup: int = 0,
) -> Dict[str, Any]:
    """Drive several workloads through one server in one measured window.

    Each job is ``{"model", "states", "n_clients", "chunk"?,
    "repeats"?, "burst"?, "burst_pause_s"?, "scenario"?}`` — e.g. a
    cheap model under many closed-loop clients next to an expensive one
    under a few.  All clients of all jobs start together in one event
    loop, so every job's numbers are *contended* by the others.  Each
    job's throughput divides its requests by its **own** duration
    (start-of-window to its last client finishing) — jobs of unequal
    length would otherwise dilute each other's rates; the ``aggregate``
    covers the whole window (until the last job finished).

    Returns ``{"jobs": {scenario: LoadReport}, "aggregate":
    {"n_requests", "n_errors", "duration_s", "throughput_rps"}}``.
    """
    from repro.serve.aio import AsyncPolicyClient

    if not jobs:
        raise ValueError("jobs must not be empty")
    prepared = []
    for k, job in enumerate(jobs):
        states = np.atleast_2d(np.asarray(job["states"], dtype=float))
        if states.shape[0] == 0:
            raise ValueError("every job needs at least one state row")
        n_clients = max(1, min(int(job.get("n_clients", 8)),
                               states.shape[0]))
        prepared.append({
            "model": job["model"],
            "scenario": job.get("scenario", f"job-{k}:{job['model']}"),
            "deals": [states[i::n_clients] for i in range(n_clients)],
            "n_clients": n_clients,
            "chunk": int(job.get("chunk", 1)),
            "repeats": int(job.get("repeats", 1)),
            "burst": int(job.get("burst", 1)),
            "burst_pause_s": float(job.get("burst_pause_s", 0.0)),
        })
    timing: Dict[str, float] = {}

    async def main():
        aio = AsyncPolicyClient(server)
        if warmup:
            await asyncio.gather(*[
                _async_client(aio, job["model"],
                              rows[:1].repeat(warmup, axis=0),
                              1, job["chunk"], timeout_s)
                for job in prepared for rows in job["deals"]
            ])
        async def run_job(job):
            begin = time.perf_counter()
            outputs = await asyncio.gather(*[
                _async_client(
                    aio, job["model"], rows, job["repeats"],
                    job["chunk"], timeout_s, burst=job["burst"],
                    burst_pause_s=job["burst_pause_s"],
                )
                for rows in job["deals"]
            ])
            return outputs, time.perf_counter() - begin

        timing["start"] = time.perf_counter()
        per_job = await asyncio.gather(*[run_job(j) for j in prepared])
        timing["duration"] = time.perf_counter() - timing["start"]
        return per_job

    per_job = asyncio.run(main())
    duration = timing["duration"]
    reports: Dict[str, LoadReport] = {}
    total_requests = 0
    total_errors = 0
    for job, (outputs, job_duration) in zip(prepared, per_job):
        report = _assemble_report(
            outputs, job_duration, job["scenario"], job["model"],
            job["n_clients"],
        )
        reports[job["scenario"]] = report
        total_requests += report.n_requests
        total_errors += report.n_errors
    return {
        "jobs": reports,
        "aggregate": {
            "n_requests": total_requests,
            "n_errors": total_errors,
            "duration_s": duration,
            "throughput_rps": (
                total_requests / duration if duration > 0 else 0.0
            ),
        },
    }
