"""Trace-replay load generators for the policy server.

One harness, three scenarios — the heterogeneous per-scenario serving
story the related work motivates (BBRv3-style measurement harness around
a deployed policy; side-by-side heterogeneous policies):

* **ABR** — realistic Pensieve-layout session states collected by
  rolling the trace-driven ABR environment under a rate-based heuristic;
* **flows** — AuTO lRLA decision states produced by the fabric simulator
  under Poisson flow arrivals (``envs/flows/workloads.py`` workloads);
* **routing** — RouteNet-style candidate-path scoring queries (demand,
  hops, link-load context) over NSFNet gravity traffic.

``run_load`` replays any state matrix against a live
:class:`~repro.serve.server.PolicyServer` with N closed-loop client
threads submitting single-state requests — exactly the concurrency shape
microbatching exists for — and reports client-observed throughput and
latency percentiles plus the registry versions that answered.
:func:`run_load_async` is the thread-free sibling: N closed-loop
*coroutine* clients in one event loop, driving the same batcher through
its asyncio submission path (optionally in pipelined chunks — the
cluster tier's bulk mode).

Every state generator takes ``seed: SeedLike`` — an int, ``None``, or an
explicit ``numpy.random.Generator``.  Passing one shared Generator
across several calls draws from a single deterministic stream, which is
how the async harness gives many logical clients reproducible but
distinct workloads.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.utils.rng import SeedLike, as_rng


# ----------------------------------------------------------------------
# Scenario state generators
# ----------------------------------------------------------------------
def abr_request_states(
    n_sessions: int = 8,
    n_chunks: int = 48,
    seed: SeedLike = 0,
    trace_kind: str = "hsdpa",
) -> np.ndarray:
    """Pensieve-layout states from rate-based ABR sessions, shape (n, 25).

    ``seed`` may be an explicit ``numpy.random.Generator``; the session
    randomness is drawn from it (and advances it), so several calls can
    share one deterministic stream.
    """
    from repro.envs.abr import ABREnv, Video
    from repro.envs.abr.baselines import RateBased
    from repro.envs.traces import trace_set

    video = Video.synthetic(n_chunks=n_chunks, seed=7)
    traces = trace_set(trace_kind, max(n_sessions, 1), seed=11)
    env = ABREnv(video, traces)
    policy = RateBased()
    rng = as_rng(seed)
    states: List[np.ndarray] = []
    for _ in range(n_sessions):
        policy.reset()
        state = env.reset(rng)
        done = False
        while not done:
            states.append(np.asarray(state, dtype=float))
            state, _, done, _ = env.step(policy.select(state, env))
    return np.asarray(states)


def flow_request_states(
    duration_s: float = 2.0,
    load: float = 0.7,
    seed: SeedLike = 0,
    capacity_bps: float = 1e9,
    min_rows: int = 256,
    workload=None,
) -> np.ndarray:
    """AuTO lRLA decision states from simulated flow arrivals, (n, 12).

    Simulation windows are repeated (fresh seeds) until at least
    ``min_rows`` central decisions are recorded.  ``seed`` accepts an
    explicit ``numpy.random.Generator``, which every window draws from
    (one shared deterministic stream across callers).
    """
    from repro.envs.flows.mlfq import MLFQConfig
    from repro.envs.flows.simulator import FabricSimulator
    from repro.envs.flows.workloads import WEB_SEARCH, generate_flows
    from repro.teachers.auto import LONG_FLOW_BYTES, sjf_priority

    if workload is None:
        workload = WEB_SEARCH
    rng = as_rng(seed)
    records: List[np.ndarray] = []
    for _ in range(50):  # bounded retries; each window adds decisions
        flows = generate_flows(
            workload, load=load, capacity_bps=capacity_bps,
            duration_s=duration_s, seed=rng,
        )

        def decide(flow, snapshot):
            features = np.asarray(snapshot.feature_vector(), dtype=float)
            records.append(features)
            return sjf_priority(features)

        FabricSimulator(
            capacity_bps=capacity_bps,
            mlfq=MLFQConfig(),
            decision_fn=decide,
            decision_latency_s=0.0,
            decision_min_bytes=LONG_FLOW_BYTES,
        ).run(flows)
        if len(records) >= min_rows:
            break
    return np.asarray(records)


def routing_request_states(
    n_queries: int = 512,
    seed: SeedLike = 0,
    utilization: float = 0.5,
) -> np.ndarray:
    """RouteNet-style candidate-path queries over NSFNet, shape (n, 4).

    Each row scores one candidate path for one demand pair under one
    gravity traffic matrix: ``[demand, hops, max_link_load,
    mean_link_load]`` — the per-candidate context RouteNet* builds when
    it probes paths.  ``seed`` accepts an explicit
    ``numpy.random.Generator`` (traffic-matrix seeds are drawn from it).
    """
    from repro.envs.routing import gravity_demands, nsfnet
    from repro.envs.routing.delay import shortest_path_routing

    topology = nsfnet()
    routing = shortest_path_routing(topology)
    pairs = routing.pairs()
    inc = routing.incidence(topology)
    rng = as_rng(seed)
    rows: List[List[float]] = []
    tm_count = 0
    while len(rows) < n_queries:
        tm_count += 1
        tm = gravity_demands(
            topology, utilization=utilization,
            seed=int(rng.integers(1 << 31)), count=1,
        )[0]
        demands = np.asarray([tm.volume(*p) for p in pairs])
        loads = inc.T @ demands
        for pair in pairs:
            demand = tm.volume(*pair)
            for cand in topology.candidate_paths(*pair):
                link_loads = np.asarray([
                    loads[topology.link_index(link)]
                    for link in topology.path_links(cand)
                ])
                rows.append([
                    float(demand),
                    float(len(cand) - 1),
                    float(link_loads.max()),
                    float(link_loads.mean()),
                ])
                if len(rows) >= n_queries:
                    break
            if len(rows) >= n_queries:
                break
        if tm_count > 50:
            break
    return np.asarray(rows)


# ----------------------------------------------------------------------
# Replay harness
# ----------------------------------------------------------------------
@dataclass
class LoadReport:
    """Client-side view of one load run against a live server."""

    scenario: str
    model: str
    n_clients: int
    n_requests: int
    n_errors: int
    duration_s: float
    throughput_rps: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    versions: Dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "model": self.model,
            "n_clients": self.n_clients,
            "n_requests": self.n_requests,
            "n_errors": self.n_errors,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_mean_ms": self.latency_mean_ms,
            "versions": {int(k): int(v) for k, v in self.versions.items()},
        }


def run_load(
    server,
    model: str,
    states: np.ndarray,
    n_clients: int = 8,
    repeats: int = 1,
    scenario: str = "custom",
    timeout_s: float = 60.0,
) -> LoadReport:
    """Replay ``states`` through ``server`` with closed-loop clients.

    Rows are dealt round-robin across ``n_clients`` threads; each client
    submits its rows one request at a time (``repeats`` passes), waiting
    for every response — so server-side concurrency equals the number of
    clients still running, and microbatching is what coalesces them.
    """
    states = np.atleast_2d(np.asarray(states, dtype=float))
    if states.shape[0] == 0:
        raise ValueError("states must contain at least one row")
    n_clients = max(1, min(n_clients, states.shape[0]))
    chunks = [states[i::n_clients] for i in range(n_clients)]
    outputs: List[tuple] = [None] * n_clients
    barrier = threading.Barrier(n_clients + 1)

    failures: List[BaseException] = []

    def client(idx: int, rows: np.ndarray) -> None:
        latencies: List[float] = []
        versions: Counter = Counter()
        errors = 0
        try:
            barrier.wait()
            for _ in range(repeats):
                for row in rows:
                    start = time.perf_counter()
                    result = server.submit(model, row).result(
                        timeout=timeout_s
                    )
                    latencies.append(time.perf_counter() - start)
                    if result.ok:
                        versions[result.version] += 1
                    else:
                        errors += 1
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            failures.append(exc)
        outputs[idx] = (latencies, versions, errors)

    threads = [
        threading.Thread(target=client, args=(i, chunk), daemon=True)
        for i, chunk in enumerate(chunks)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - start
    if failures:
        # Surface the real failure (timeout, closed server) instead of
        # letting a half-empty aggregation produce a cryptic error.
        raise RuntimeError(
            f"{len(failures)} load client(s) failed; first failure: "
            f"{failures[0]!r}"
        ) from failures[0]

    return _assemble_report(outputs, duration, scenario, model, n_clients)


def _assemble_report(
    outputs, duration: float, scenario: str, model: str, n_clients: int
) -> LoadReport:
    """Merge per-client ``(latencies, versions, errors)`` tuples into
    one :class:`LoadReport` (shared by the threaded and async
    harnesses, so the two can never drift apart)."""
    all_latencies: List[float] = []
    versions: Counter = Counter()
    errors = 0
    for latencies, client_versions, client_errors in outputs:
        all_latencies.extend(latencies)
        versions.update(client_versions)
        errors += client_errors
    lat = np.asarray(all_latencies)
    p50, p95, p99 = (
        np.percentile(lat, [50, 95, 99]) if lat.size else (0.0, 0.0, 0.0)
    )
    return LoadReport(
        scenario=scenario,
        model=model,
        n_clients=n_clients,
        n_requests=int(lat.size),
        n_errors=errors,
        duration_s=float(duration),
        throughput_rps=float(lat.size / duration) if duration > 0 else 0.0,
        latency_p50_ms=float(p50 * 1e3),
        latency_p95_ms=float(p95 * 1e3),
        latency_p99_ms=float(p99 * 1e3),
        latency_mean_ms=float(lat.mean() * 1e3) if lat.size else 0.0,
        versions=dict(versions),
    )


def run_load_async(
    server,
    model: str,
    states: np.ndarray,
    n_clients: int = 64,
    repeats: int = 1,
    scenario: str = "custom",
    timeout_s: float = 60.0,
    chunk: int = 1,
) -> LoadReport:
    """Closed-loop replay with coroutine clients instead of threads.

    The async twin of :func:`run_load`: rows are dealt round-robin
    across ``n_clients`` *coroutines* in one event loop, so a thousand
    concurrent clients cost a thousand coroutine frames, not a thousand
    OS threads fighting over the GIL.

    Args:
        chunk: requests each client keeps in flight per await.  1 is a
            strict closed loop (one request, await, repeat) measuring
            per-decision latency; larger values submit ``chunk`` rows
            per await through :meth:`AsyncPolicyClient.predict_many` —
            on a cluster backend that is the bulk array path, the
            throughput mode.
    """
    from repro.serve.aio import AsyncPolicyClient

    if chunk < 1:
        raise ValueError("chunk must be at least 1")
    states = np.atleast_2d(np.asarray(states, dtype=float))
    if states.shape[0] == 0:
        raise ValueError("states must contain at least one row")
    n_clients = max(1, min(n_clients, states.shape[0]))
    deals = [states[i::n_clients] for i in range(n_clients)]
    timing: Dict[str, float] = {}

    async def client(aio: "AsyncPolicyClient", rows: np.ndarray):
        latencies: List[float] = []
        versions: Counter = Counter()
        errors = 0
        for _ in range(repeats):
            for start in range(0, rows.shape[0], chunk):
                sub = rows[start:start + chunk]
                begin = time.perf_counter()
                if chunk == 1:
                    results = [await asyncio.wait_for(
                        aio.predict(model, sub[0]), timeout_s
                    )]
                else:
                    results = await asyncio.wait_for(
                        aio.predict_many(model, sub), timeout_s
                    )
                elapsed = time.perf_counter() - begin
                # Per-row latency within one awaited chunk is the chunk
                # round trip (each row waited for the whole answer).
                latencies.extend([elapsed] * len(results))
                for result in results:
                    if result.ok:
                        versions[result.version] += 1
                    else:
                        errors += 1
        return latencies, versions, errors

    async def main():
        aio = AsyncPolicyClient(server)
        timing["start"] = time.perf_counter()
        outputs = await asyncio.gather(
            *[client(aio, rows) for rows in deals]
        )
        timing["duration"] = time.perf_counter() - timing["start"]
        return outputs

    outputs = asyncio.run(main())
    return _assemble_report(
        outputs, timing["duration"], scenario, model, n_clients
    )
