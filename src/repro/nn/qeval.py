"""Fitted Q evaluation of a trained teacher policy.

Metis' resampling step (Eq. 1 / Appendix A) weighs each (state, action)
pair by ``V(s) - min_a' Q(s, a')``.  The VIPER recipe assumes access to a
Q-function; policy-gradient teachers (Pensieve, lRLA) expose only a policy
and a value baseline.  We therefore evaluate the teacher with fitted
SARSA-style regression on its own trajectories:

    Q(s_t, a_t) <- r_t + gamma * Q(s_{t+1}, a_{t+1})

iterated to a fixed point, where the action sequence comes from the teacher
itself.  ``V(s)`` is then ``Q(s, pi(s))`` and the resampling weight follows
directly.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.nn.mlp import MLP
from repro.nn.optim import Adam
from repro.utils.rng import SeedLike


class QEstimator:
    """Per-action Q head trained by fitted SARSA evaluation."""

    def __init__(
        self,
        d_in: int,
        n_actions: int,
        hidden: Sequence[int] = (64, 32),
        gamma: float = 0.99,
        lr: float = 2e-3,
        seed: SeedLike = None,
    ) -> None:
        self.n_actions = n_actions
        self.gamma = gamma
        self.net = MLP(d_in, hidden, n_actions, activation="relu", seed=seed)
        self._opt = Adam(lr=lr)

    def predict(self, states: np.ndarray) -> np.ndarray:
        """Q-values for all actions, shape ``(n, A)``."""
        return self.net.forward(np.atleast_2d(states))

    def fit(
        self,
        trajectories: Sequence,
        sweeps: int = 8,
        epochs_per_sweep: int = 30,
    ) -> List[float]:
        """Fitted evaluation over teacher trajectories.

        Each sweep recomputes bootstrapped targets with the current Q and
        regresses the taken-action outputs onto them; the final sweep's
        losses are returned for diagnostics.
        """
        states = np.concatenate([t.states for t in trajectories])
        actions = np.concatenate([t.actions for t in trajectories])
        losses: List[float] = []
        for _ in range(sweeps):
            targets = self._bootstrap_targets(trajectories)
            losses = [
                self._fit_epoch(states, actions, targets)
                for _ in range(epochs_per_sweep)
            ]
        return losses

    def _bootstrap_targets(self, trajectories: Sequence) -> np.ndarray:
        chunks = []
        for traj in trajectories:
            n = len(traj)
            q_next = np.zeros(n)
            if n > 1:
                q_all = self.predict(traj.states[1:])
                q_next[:-1] = q_all[np.arange(n - 1), traj.actions[1:]]
            chunks.append(traj.rewards + self.gamma * q_next)
        return np.concatenate(chunks)

    def _fit_epoch(
        self, states: np.ndarray, actions: np.ndarray, targets: np.ndarray
    ) -> float:
        n = states.shape[0]
        preds = self.net.forward(states)
        taken = preds[np.arange(n), actions]
        err = taken - targets
        loss = float((err**2).mean())
        grad = np.zeros_like(preds)
        grad[np.arange(n), actions] = 2.0 * err / n
        self.net.zero_grads()
        self.net.backward(grad)
        self._opt.step(self.net.params(), self.net.grads())
        return loss

    def resampling_weights(
        self, states: np.ndarray, value: np.ndarray = None
    ) -> np.ndarray:
        """Eq. 1 weights: ``V(s) - min_a' Q(s, a')`` (clipped at >= 0).

        Args:
            states: batch of states.
            value: optional externally supplied ``V(s)``; defaults to
                ``max_a Q(s, a)`` (the greedy-policy value).
        """
        q = self.predict(states)
        v = q.max(axis=1) if value is None else np.asarray(value, dtype=float)
        weights = v - q.min(axis=1)
        return np.maximum(weights, 0.0)
