"""A multi-layer perceptron with an optional *skip-to-output* connection.

The skip connection implements the paper's §6.2 "modified structure"
(Fig. 10b): selected input features are concatenated directly onto the
penultimate activation so they reach the output layer through a single
affine map.  The original and modified Pensieve DNNs are mathematically
equivalent in expressiveness, but the modified one optimizes more easily —
exactly the effect the experiment measures.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn.layers import Dense, Layer, ReLU, Tanh
from repro.utils.rng import SeedLike, spawn_rngs

_ACTIVATIONS = {"relu": ReLU, "tanh": Tanh}


class MLP:
    """Feed-forward network ``d_in -> hidden... -> d_out``.

    Args:
        d_in: input dimensionality.
        hidden: sizes of hidden layers.
        d_out: output dimensionality (raw scores; heads apply softmax etc.).
        activation: "relu" or "tanh".
        skip_features: optional indices of input features concatenated onto
            the last hidden activation (Fig. 10b modified structure).
        seed: RNG seed for weight init.
    """

    def __init__(
        self,
        d_in: int,
        hidden: Sequence[int],
        d_out: int,
        activation: str = "relu",
        skip_features: Optional[Sequence[int]] = None,
        seed: SeedLike = None,
    ) -> None:
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        self.d_in = d_in
        self.d_out = d_out
        self.skip_features = list(skip_features) if skip_features else []
        for idx in self.skip_features:
            if not 0 <= idx < d_in:
                raise ValueError(f"skip feature index {idx} out of range")

        sizes = [d_in, *hidden]
        rngs = spawn_rngs(seed, len(sizes))
        act_cls = _ACTIVATIONS[activation]
        self.body: List[Layer] = []
        for i in range(len(sizes) - 1):
            self.body.append(Dense(sizes[i], sizes[i + 1], seed=rngs[i]))
            self.body.append(act_cls())
        head_in = sizes[-1] + len(self.skip_features)
        self.head = Dense(head_in, d_out, seed=rngs[-1])
        self._last_batch: Optional[int] = None

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute raw outputs for a batch ``(n, d_in)``."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.d_in:
            raise ValueError(f"expected {self.d_in} features, got {x.shape[1]}")
        h = x
        for layer in self.body:
            h = layer.forward(h)
        if self.skip_features:
            h = np.concatenate([h, x[:, self.skip_features]], axis=1)
        self._last_batch = x.shape[0]
        return self.head.forward(h)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate ``dL/d(out)``; returns ``dL/d(in)`` (body path only
        plus the skip path merged back into the right input columns)."""
        grad_h = self.head.backward(grad_out)
        if self.skip_features:
            n_skip = len(self.skip_features)
            grad_skip = grad_h[:, -n_skip:]
            grad_h = grad_h[:, :-n_skip]
        for layer in reversed(self.body):
            grad_h = layer.backward(grad_h)
        if self.skip_features:
            for j, idx in enumerate(self.skip_features):
                grad_h[:, idx] += grad_skip[:, j]
        return grad_h

    # ------------------------------------------------------------------
    def params(self) -> List[np.ndarray]:
        out: List[np.ndarray] = []
        for layer in self.body:
            out.extend(layer.params())
        out.extend(self.head.params())
        return out

    def grads(self) -> List[np.ndarray]:
        out: List[np.ndarray] = []
        for layer in self.body:
            out.extend(layer.grads())
        out.extend(self.head.grads())
        return out

    def zero_grads(self) -> None:
        for g in self.grads():
            g[...] = 0.0

    # ------------------------------------------------------------------
    def num_parameters(self) -> int:
        """Total scalar parameter count (used by deployment cost models)."""
        return int(sum(p.size for p in self.params()))

    def get_weights(self) -> List[np.ndarray]:
        return [p.copy() for p in self.params()]

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        params = self.params()
        if len(weights) != len(params):
            raise ValueError("weight list length mismatch")
        for p, w in zip(params, weights):
            if p.shape != w.shape:
                raise ValueError(f"shape mismatch {p.shape} vs {w.shape}")
            p[...] = w
