"""Advantage actor-critic training loop over gym-style environments.

An *environment* here is any object exposing::

    reset(rng) -> state          # 1-D numpy array
    step(action) -> (state, reward, done, info)

which matches :class:`repro.envs.abr.env.ABREnv` and the flow-scheduling
wrappers.  The trainer is synchronous single-worker A2C: roll one episode,
compute reward-to-go, fit the critic, step the actor with advantages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.nn.optim import Adam
from repro.nn.policy import SoftmaxPolicy, ValueNet, evaluate_return
from repro.utils.rng import SeedLike, as_rng


@dataclass
class Trajectory:
    """One rollout of (state, action, reward) triples."""

    states: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray

    @property
    def total_reward(self) -> float:
        return float(self.rewards.sum())

    def __len__(self) -> int:
        return len(self.actions)


def rollout(
    env,
    act: Callable[[np.ndarray], int],
    rng: SeedLike = None,
    max_steps: int = 10_000,
) -> Trajectory:
    """Run one episode under ``act`` and record the trajectory."""
    rng = as_rng(rng)
    state = env.reset(rng)
    states: List[np.ndarray] = []
    actions: List[int] = []
    rewards: List[float] = []
    for _ in range(max_steps):
        action = act(state)
        next_state, reward, done, _ = env.step(action)
        states.append(np.asarray(state, dtype=float))
        actions.append(action)
        rewards.append(float(reward))
        state = next_state
        if done:
            break
    return Trajectory(
        states=np.asarray(states),
        actions=np.asarray(actions, dtype=int),
        rewards=np.asarray(rewards),
    )


@dataclass
class A2CTrainer:
    """Synchronous A2C for discrete-action environments.

    Attributes:
        policy: the actor being trained.
        value: critic; created automatically if omitted.
        gamma: discount factor.
        actor_lr / critic_lr: Adam step sizes.
        entropy_coef: exploration bonus weight.
    """

    policy: SoftmaxPolicy
    value: Optional[ValueNet] = None
    gamma: float = 0.99
    actor_lr: float = 1e-3
    critic_lr: float = 2e-3
    entropy_coef: float = 0.02
    history: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.value is None:
            self.value = ValueNet(self.policy.net.d_in)
        self._actor_opt = Adam(lr=self.actor_lr)
        self._critic_opt = Adam(lr=self.critic_lr)

    def train(
        self,
        env,
        episodes: int,
        seed: SeedLike = None,
        critic_epochs: int = 2,
        callback: Optional[Callable[[int, float], None]] = None,
    ) -> List[float]:
        """Train for ``episodes`` rollouts; returns per-episode returns."""
        rng = as_rng(seed)
        returns: List[float] = []
        for ep in range(episodes):
            traj = rollout(env, lambda s: self.policy.act(s, rng), rng)
            if len(traj) == 0:
                continue
            rtg = evaluate_return(traj.rewards, self.gamma)
            for _ in range(critic_epochs):
                self.value.fit_step(traj.states, rtg, self._critic_opt)
            baseline = self.value.predict(traj.states)
            adv = rtg - baseline
            std = adv.std()
            if std > 1e-8:
                adv = (adv - adv.mean()) / std
            self.policy.policy_gradient_step(
                traj.states, traj.actions, adv, self._actor_opt,
                entropy_coef=self.entropy_coef,
            )
            total = traj.total_reward
            returns.append(total)
            self.history.append(total)
            if callback is not None:
                callback(ep, total)
        return returns
