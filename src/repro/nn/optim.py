"""First-order optimizers over explicit parameter/gradient lists."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


class SGD:
    """Vanilla stochastic gradient descent with optional momentum."""

    def __init__(self, lr: float = 1e-2, momentum: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.momentum = momentum
        self._velocity: List[np.ndarray] = []

    def step(self, params: Sequence[np.ndarray], grads: Sequence[np.ndarray]) -> None:
        if not self._velocity:
            self._velocity = [np.zeros_like(p) for p in params]
        for p, g, v in zip(params, grads, self._velocity):
            v *= self.momentum
            v -= self.lr * g
            p += v


class Adam:
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: List[np.ndarray] = []
        self._v: List[np.ndarray] = []
        self._t = 0

    def step(self, params: Sequence[np.ndarray], grads: Sequence[np.ndarray]) -> None:
        if not self._m:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)


def clip_gradients(grads: Sequence[np.ndarray], max_norm: float) -> float:
    """Scale gradients in place to a global L2 norm cap; returns the norm."""
    total = float(np.sqrt(sum(float((g * g).sum()) for g in grads)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for g in grads:
            g *= scale
    return total
