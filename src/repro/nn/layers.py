"""Layers with explicit forward/backward passes.

Each layer caches what it needs during ``forward`` and consumes the cache
in ``backward``.  Layers are deliberately stateless across batches except
for their parameters.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.utils.rng import SeedLike, as_rng


class Layer:
    """Base class: a differentiable function of a batch ``(n, d_in)``."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Propagate ``dL/d(out)`` to ``dL/d(in)``, accumulating param grads."""
        raise NotImplementedError

    def params(self) -> List[np.ndarray]:
        return []

    def grads(self) -> List[np.ndarray]:
        return []


class Dense(Layer):
    """Affine layer ``y = x W + b`` with He-style initialization."""

    def __init__(self, d_in: int, d_out: int, seed: SeedLike = None) -> None:
        if d_in <= 0 or d_out <= 0:
            raise ValueError(f"invalid dims ({d_in}, {d_out})")
        rng = as_rng(seed)
        scale = np.sqrt(2.0 / d_in)
        self.w = rng.normal(0.0, scale, size=(d_in, d_out))
        self.b = np.zeros(d_out)
        self.dw = np.zeros_like(self.w)
        self.db = np.zeros_like(self.b)
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.w + self.b

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.dw += self._x.T @ grad_out
        self.db += grad_out.sum(axis=0)
        return grad_out @ self.w.T

    def params(self) -> List[np.ndarray]:
        return [self.w, self.b]

    def grads(self) -> List[np.ndarray]:
        return [self.dw, self.db]


class ReLU(Layer):
    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._mask


class Tanh(Layer):
    def __init__(self) -> None:
        self._y: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * (1.0 - self._y**2)


class Sigmoid(Layer):
    def __init__(self) -> None:
        self._y: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._y * (1.0 - self._y)


class Identity(Layer):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the usual max-subtraction stabilization."""
    z = logits - logits.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=-1, keepdims=True)
