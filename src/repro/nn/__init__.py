"""A small, dependency-free neural-network substrate (numpy only).

The paper's teacher systems (Pensieve, AuTO, RouteNet) are DNNs trained
with TensorFlow.  TensorFlow is not available in this environment, so the
teachers in this reproduction run on this substrate instead: dense layers
with manual backpropagation, Adam, a softmax policy-gradient trainer (A2C)
for discrete-action teachers, a Gaussian policy head for continuous-action
teachers, and a fitted-Q evaluator used by Metis' advantage resampling.
"""

from repro.nn.layers import Dense, ReLU, Tanh, Sigmoid, Identity
from repro.nn.mlp import MLP
from repro.nn.optim import SGD, Adam
from repro.nn.policy import SoftmaxPolicy, GaussianPolicy, ValueNet
from repro.nn.a2c import A2CTrainer, Trajectory
from repro.nn.qeval import QEstimator

__all__ = [
    "Dense",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "MLP",
    "SGD",
    "Adam",
    "SoftmaxPolicy",
    "GaussianPolicy",
    "ValueNet",
    "A2CTrainer",
    "Trajectory",
    "QEstimator",
]
