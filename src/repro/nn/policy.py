"""Policy and value heads on top of :class:`repro.nn.mlp.MLP`.

Three heads cover the paper's teachers:

* :class:`SoftmaxPolicy` — discrete actions (Pensieve bitrates, lRLA
  priorities).
* :class:`GaussianPolicy` — continuous actions (sRLA queue thresholds).
* :class:`ValueNet` — state-value baseline for A2C and for Metis'
  advantage resampling (Eq. 1).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers import softmax
from repro.nn.mlp import MLP
from repro.utils.rng import SeedLike, as_rng


class SoftmaxPolicy:
    """Categorical policy ``pi(a|s) = softmax(MLP(s))``."""

    def __init__(
        self,
        d_in: int,
        n_actions: int,
        hidden: Sequence[int] = (64, 32),
        skip_features: Optional[Sequence[int]] = None,
        seed: SeedLike = None,
    ) -> None:
        self.n_actions = n_actions
        self.net = MLP(
            d_in, hidden, n_actions, activation="relu",
            skip_features=skip_features, seed=seed,
        )

    def probabilities(self, states: np.ndarray) -> np.ndarray:
        """Action distribution for a batch of states, shape ``(n, A)``."""
        return softmax(self.net.forward(states))

    def act(self, state: np.ndarray, rng: SeedLike = None) -> int:
        """Sample an action for a single state."""
        probs = self.probabilities(np.atleast_2d(state))[0]
        return int(as_rng(rng).choice(self.n_actions, p=probs))

    def act_greedy(self, state: np.ndarray) -> int:
        """Most-likely action for a single state (deployment behaviour)."""
        probs = self.probabilities(np.atleast_2d(state))[0]
        return int(np.argmax(probs))

    def act_greedy_batch(self, states: np.ndarray) -> np.ndarray:
        """Most-likely actions for a batch of states."""
        return np.argmax(self.probabilities(states), axis=1)

    def policy_gradient_step(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        advantages: np.ndarray,
        optimizer,
        entropy_coef: float = 0.01,
    ) -> float:
        """One policy-gradient update; returns mean entropy (diagnostics).

        Loss: ``-mean(adv * log pi(a|s)) - entropy_coef * H(pi)``.
        The gradient of the cross-entropy part w.r.t. the logits is
        ``(pi - onehot(a)) * adv / n``; the entropy gradient is folded in
        analytically.
        """
        states = np.atleast_2d(states)
        n = states.shape[0]
        logits = self.net.forward(states)
        probs = softmax(logits)
        eps = 1e-12
        logp = np.log(probs + eps)
        entropy = float(-(probs * logp).sum(axis=1).mean())

        onehot = np.zeros_like(probs)
        onehot[np.arange(n), actions] = 1.0
        grad_logits = (probs - onehot) * advantages[:, None] / n
        # d(-H)/dlogits = probs * (logp - sum(probs*logp)), per row.
        ent_inner = (probs * logp).sum(axis=1, keepdims=True)
        grad_logits += entropy_coef * probs * (logp - ent_inner) / n

        self.net.zero_grads()
        self.net.backward(grad_logits)
        optimizer.step(self.net.params(), self.net.grads())
        return entropy


class GaussianPolicy:
    """Diagonal-Gaussian policy for continuous actions in ``[low, high]``.

    The network outputs the mean in tanh-squashed form; the log-std is a
    free (trained) parameter per dimension.  Used by AuTO's sRLA, whose
    actions are MLFQ queue thresholds.
    """

    def __init__(
        self,
        d_in: int,
        d_action: int,
        low: float,
        high: float,
        hidden: Sequence[int] = (64, 32),
        init_log_std: float = -0.5,
        seed: SeedLike = None,
    ) -> None:
        if high <= low:
            raise ValueError("high must exceed low")
        self.d_action = d_action
        self.low = low
        self.high = high
        self.net = MLP(d_in, hidden, d_action, activation="tanh", seed=seed)
        self.log_std = np.full(d_action, init_log_std)
        self._dlog_std = np.zeros(d_action)

    def mean_action(self, states: np.ndarray) -> np.ndarray:
        """Deterministic (deployment) action: squashed network mean."""
        raw = self.net.forward(states)
        return self._squash(np.tanh(raw))

    def _squash(self, t: np.ndarray) -> np.ndarray:
        return self.low + (t + 1.0) * 0.5 * (self.high - self.low)

    def act(self, state: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        """Sample an action (squashed mean + pre-squash Gaussian noise)."""
        rng = as_rng(rng)
        raw = self.net.forward(np.atleast_2d(state))[0]
        noise = rng.normal(0.0, 1.0, size=self.d_action) * np.exp(self.log_std)
        return np.clip(self._squash(np.tanh(raw + noise)), self.low, self.high)

    def policy_gradient_step(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        advantages: np.ndarray,
        optimizer,
    ) -> None:
        """REINFORCE-with-baseline update for the squashed Gaussian.

        For tractability the likelihood is taken in the *pre-squash* space:
        actions are unsquashed and compared against the raw network output.
        """
        states = np.atleast_2d(states)
        n = states.shape[0]
        raw = self.net.forward(states)
        # Unsquash the executed actions back to pre-tanh space.
        t = 2.0 * (actions - self.low) / (self.high - self.low) - 1.0
        t = np.clip(t, -0.999999, 0.999999)
        u = np.arctanh(t)
        std = np.exp(self.log_std)
        z = (u - raw) / std
        # d(-logp)/d(raw) = -(u - raw) / std^2
        grad_raw = (-(z / std)) * advantages[:, None] / n
        self.net.zero_grads()
        self.net.backward(grad_raw)
        # d(-logp)/d(log_std) = 1 - z^2, weighted by advantage.
        self._dlog_std[...] = ((1.0 - z**2) * advantages[:, None]).mean(axis=0)
        optimizer.step(
            self.net.params() + [self.log_std],
            self.net.grads() + [self._dlog_std],
        )


class ValueNet:
    """State-value function ``V(s)`` trained by mean-squared error."""

    def __init__(
        self, d_in: int, hidden: Sequence[int] = (64, 32), seed: SeedLike = None
    ) -> None:
        self.net = MLP(d_in, hidden, 1, activation="relu", seed=seed)

    def predict(self, states: np.ndarray) -> np.ndarray:
        return self.net.forward(np.atleast_2d(states))[:, 0]

    def fit_step(
        self, states: np.ndarray, targets: np.ndarray, optimizer
    ) -> float:
        """One MSE regression step; returns the batch loss."""
        states = np.atleast_2d(states)
        n = states.shape[0]
        preds = self.net.forward(states)[:, 0]
        err = preds - targets
        loss = float((err**2).mean())
        grad = (2.0 * err / n)[:, None]
        self.net.zero_grads()
        self.net.backward(grad)
        optimizer.step(self.net.params(), self.net.grads())
        return loss


def evaluate_return(rewards: Sequence[float], gamma: float) -> np.ndarray:
    """Discounted reward-to-go for one episode."""
    out = np.zeros(len(rewards))
    acc = 0.0
    for i in range(len(rewards) - 1, -1, -1):
        acc = rewards[i] + gamma * acc
        out[i] = acc
    return out
