"""Online-loop smoke: force drift, watch a full canary ramp promote.

The end-to-end check behind CI's ``online`` job: boot a 2-shard
:class:`~repro.serve.cluster.service.ShardedPolicyService` with the
online loop armed (:meth:`start_online`), then close the paper's loop
on real processes and a real clock:

* serve alias ``abr`` from a tree distilled at threshold 0.5 while a
  published ``teacher`` artifact (same threshold) shadow-mirrors the
  traffic — agreement is high, nothing fires;
* **force drift via a teacher swap**: publish a v2 teacher at
  threshold 0.3 and swap the redistiller's labeler to match.  The
  detection mirror now disagrees on ~20% of uniform traffic, so
  ``shadow_agreement_floor`` walks pending → firing;
* the controller refits from the captured (state, action) ring,
  ramps the refit through the canary stages, and promotes it to the
  alias — the smoke polls until ``aliases()["abr"]`` points at the
  pinned refit;
* post-promote, the reinstalled detection mirror agrees again and the
  floor resolves;
* the live ``/metrics`` scrape lints clean (including
  ``lint_online_families``) and contains the ``repro_online_*`` series
  the promote path must emit.

Artifacts written to ``--out`` for upload: the capture ring
(``capture_ring.jsonl``), the canary journal — every
``canary_change`` / ``alias_move`` / ``rollback`` / ``publish`` event
(``canary_journal.jsonl``), the controller history
(``controller_history.json``), and the final scrape
(``metrics.prom``).  Exits non-zero on any failure.  Run locally::

    PYTHONPATH=src python tools/online_smoke.py --out online-artifacts
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.request
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from check_metrics import (  # noqa: E402
    lint_metrics,
    lint_online_families,
)

REQUIRED_SERIES = (
    "repro_online_captured_total",
    "repro_online_capture_depth",
    "repro_online_capture_sample_rate",
    "repro_online_refits_total",
    "repro_online_promotions_total",
    "repro_online_canary_fraction",
    "repro_online_refit_agreement_ratio",
)

CANARY_KINDS = ("canary_change", "alias_move", "rollback", "publish")


class ThresholdTeacher:
    """Picklable oracle: action = 1 iff feature 0 exceeds a threshold."""

    def __init__(self, threshold: float) -> None:
        self.threshold = threshold

    def act_greedy_batch(self, states: np.ndarray) -> np.ndarray:
        states = np.atleast_2d(np.asarray(states, dtype=float))
        return (states[:, 0] > self.threshold).astype(int)


def _tree_artifact(name: str, threshold: float):
    from repro.core.tree import DecisionTreeClassifier
    from repro.serve import PolicyArtifact

    rng = np.random.default_rng(0)
    x = rng.uniform(0, 1, (400, 4))
    y = (x[:, 0] > threshold).astype(int)
    tree = DecisionTreeClassifier(max_leaf_nodes=16).fit(x, y)
    return PolicyArtifact.from_tree(tree, name=name)


def _drive(service, rng, n):
    futures = [service.submit("abr", rng.uniform(0, 1, 4))
               for _ in range(n)]
    return [f.result(timeout=30) for f in futures]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="online-artifacts",
                        help="artifact directory (default: online-artifacts)")
    parser.add_argument("--shards", type=int, default=2)
    args = parser.parse_args()
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    from repro.serve import PolicyArtifact
    from repro.serve.cluster.service import ShardedPolicyService

    failures = []
    rng = np.random.default_rng(1)
    with ShardedPolicyService(
        n_shards=args.shards, max_batch=8, max_delay_s=0.002,
        exporter_port=0,
    ) as service:
        service.publish("policy", _tree_artifact("policy", 0.5))
        service.alias("abr", "policy")
        service.publish("teacher", PolicyArtifact.from_teacher(
            ThresholdTeacher(0.5), n_features=4, name="teacher"
        ))
        monitor = service.start_health(
            slo_p95_ms=None, max_error_ratio=None,
            min_shadow_requests=60, min_shadow_agreement=0.95,
            for_s=0.0, interval_s=0.05,
        )
        controller = service.start_online(
            "abr", ThresholdTeacher(0.5), sample_rate=1.0,
            min_samples=64, leaf_nodes=16, stages=(0.01, 0.5),
            hold_s=0.3, monitor=monitor, detection_shadow="teacher",
            min_refit_agreement=0.8, interval_s=0.05,
        )
        service.set_split("abr", shadow="teacher")

        # Phase 1: aligned teacher — traffic flows, nothing fires.
        if not all(r.ok for r in _drive(service, rng, 150)):
            failures.append("serving error before drift")
        time.sleep(0.3)
        if monitor.active_alerts():
            failures.append(
                f"alert fired without drift: {monitor.active_alerts()}"
            )

        # Phase 2: force drift via teacher swap — the oracle moved.
        service.publish("teacher", PolicyArtifact.from_teacher(
            ThresholdTeacher(0.3), n_features=4, name="teacher"
        ))
        controller.redistiller.teacher = ThresholdTeacher(0.3)
        deadline = time.monotonic() + 30
        fired = False
        while time.monotonic() < deadline:
            _drive(service, rng, 50)
            if any("shadow_agreement_floor" in key
                   for key in monitor.active_alerts()):
                fired = True
                break
        if not fired:
            failures.append("shadow_agreement_floor never fired on drift")

        # Phase 3: watch the full ramp promote to the alias.
        deadline = time.monotonic() + 60
        promoted = False
        while time.monotonic() < deadline:
            _drive(service, rng, 25)
            alias = service.registry.aliases().get("abr")
            if alias and alias[0] == "abr-refit":
                promoted = True
                break
        if not promoted:
            failures.append(
                f"ramp never promoted (controller status: "
                f"{controller.status()})"
            )
        # The alias moves mid-tick on the background thread; give the
        # tick a moment to finish writing its history record.
        deadline = time.monotonic() + 5
        while (time.monotonic() < deadline
               and controller.status()["state"] != "idle"):
            time.sleep(0.05)
        history = [h.get("action") for h in controller.history]
        for needed in ("refit", "ramp", "promote"):
            if needed not in history:
                failures.append(
                    f"controller history missing {needed!r}: {history}"
                )
        if "rollback" in history:
            failures.append(f"unexpected rollback in history: {history}")

        # Phase 4: the reinstalled detection mirror agrees again.
        split = service.splits().get("abr")
        if split is None or split.shadow != "teacher":
            failures.append("detection shadow not reinstalled after promote")
        _drive(service, rng, 150)
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline and monitor.active_alerts():
            time.sleep(0.1)
        if monitor.active_alerts():
            failures.append(
                "floor did not resolve after promote: "
                f"{monitor.active_alerts()}"
            )
        report = service.shadow_report().get("abr", {})
        if report.get("agreement_rate", 0.0) < 0.95:
            failures.append(
                f"post-promote shadow agreement low: {report}"
            )

        # -- artifacts -------------------------------------------------
        ring = service.capture.entries_since(0)
        with (out / "capture_ring.jsonl").open("w") as fh:
            for entry in ring:
                row = dict(entry)
                row["state"] = [float(v) for v in row["state"]]
                fh.write(json.dumps(row) + "\n")
        if not ring:
            failures.append("capture ring empty at shutdown")

        events = service.events()
        canary_events = [e for e in events if e["kind"] in CANARY_KINDS]
        with (out / "canary_journal.jsonl").open("w") as fh:
            for event in canary_events:
                fh.write(json.dumps(event) + "\n")
        kinds = [e["kind"] for e in canary_events]
        for needed in ("canary_change", "alias_move"):
            if needed not in kinds:
                failures.append(f"canary journal missing {needed}")

        (out / "controller_history.json").write_text(
            json.dumps(controller.history, indent=1, default=str)
        )

        scrape = urllib.request.urlopen(
            service.exporter.url + "/metrics", timeout=10
        ).read().decode()
        (out / "metrics.prom").write_text(scrape)
        for error in lint_metrics(scrape):
            failures.append(f"/metrics lint: {error}")
        for error in lint_online_families(scrape):
            failures.append(f"/metrics online-family lint: {error}")
        for series in REQUIRED_SERIES:
            if series not in scrape:
                failures.append(f"/metrics missing series {series}")

    for failure in failures:
        print(f"online_smoke: FAIL {failure}", file=sys.stderr)
    if failures:
        return 1
    print(f"online_smoke: OK — promoted {service.registry.aliases()['abr']}"
          f" after {history.count('refit')} refit(s), "
          f"{len(ring)} ring entries, {len(canary_events)} canary journal "
          f"events, artifacts in {out}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
