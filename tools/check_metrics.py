"""Prometheus text-exposition linter for the observability exporter.

Validates the invariants a real Prometheus scraper enforces (and a few
it merely tolerates but that indicate a rendering bug on our side):

* every sample line belongs to a family that declared ``# HELP`` and
  ``# TYPE`` *before* its first sample;
* ``# TYPE`` is one of ``counter`` / ``gauge`` / ``histogram``;
* no family declares HELP or TYPE twice (a merge bug in
  ``render_text``);
* no two sample lines repeat the same series (name + label set) — a
  duplicate makes the whole scrape rejected;
* metric and label names match the Prometheus grammar; values parse as
  floats; histogram families expose ``_bucket``/``_sum``/``_count``
  with a ``+Inf`` bucket per label set.

Usable as a library (``lint_metrics(text) -> [errors]``) — the obs
smoke job and ``tests/test_obs_tools.py`` both call it — or as a CLI
reading a scrape from a file or stdin::

    python tools/check_metrics.py scrape.prom
    curl -s localhost:9464/metrics | python tools/check_metrics.py -
"""

from __future__ import annotations

import re
import sys
from typing import Dict, List, Optional, Set, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: ``name{labels} value`` — labels optional; timestamps unsupported on
#: purpose (the exporter never emits them).
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'^(?P<key>[^=]+)="(?P<value>(?:[^"\\]|\\.)*)"$'
)

VALID_KINDS = ("counter", "gauge", "histogram")

#: Suffixes a histogram family's samples may carry.
_HIST_SUFFIXES = ("_bucket", "_sum", "_count")


def _base_family(name: str, kinds: Dict[str, str]) -> Optional[str]:
    """Resolve a sample name to its declared family: exact for scalar
    kinds, suffix-stripped for histograms."""
    if name in kinds and kinds[name] != "histogram":
        return name
    for suffix in _HIST_SUFFIXES:
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if kinds.get(base) == "histogram":
                return base
    if kinds.get(name) == "histogram":
        return None  # bare sample of a histogram family is invalid
    return None


def _parse_labels(raw: str, line_no: int,
                  errors: List[str]) -> Tuple[Tuple[str, str], ...]:
    pairs = []
    # Split on commas outside escaped quotes; the exporter never emits
    # commas inside label values unescaped, so a simple split suffices
    # once values are validated pair-by-pair.
    for chunk in filter(None, raw.split(",")):
        match = _LABEL_PAIR_RE.match(chunk.strip())
        if not match:
            errors.append(f"line {line_no}: malformed label pair {chunk!r}")
            continue
        key = match.group("key")
        if not _LABEL_RE.match(key):
            errors.append(f"line {line_no}: bad label name {key!r}")
        pairs.append((key, match.group("value")))
    return tuple(sorted(pairs))


def lint_metrics(text: str) -> List[str]:
    """Lint one exposition page; returns a list of error strings
    (empty == clean)."""
    errors: List[str] = []
    helps: Set[str] = set()
    kinds: Dict[str, str] = {}
    seen_series: Set[Tuple[str, Tuple[Tuple[str, str], ...]]] = set()
    sampled_families: Set[str] = set()
    inf_buckets: Set[Tuple[str, Tuple[Tuple[str, str], ...]]] = set()

    for line_no, line in enumerate(text.splitlines(), start=1):
        line = line.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                errors.append(f"line {line_no}: HELP without text")
                continue
            name = parts[2]
            if name in helps:
                errors.append(f"line {line_no}: duplicate HELP for {name}")
            helps.add(name)
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                errors.append(f"line {line_no}: malformed TYPE line")
                continue
            name, kind = parts[2], parts[3]
            if kind not in VALID_KINDS:
                errors.append(
                    f"line {line_no}: invalid type {kind!r} for {name}"
                )
            if name in kinds:
                errors.append(f"line {line_no}: duplicate TYPE for {name}")
            if name in sampled_families:
                errors.append(
                    f"line {line_no}: TYPE for {name} after its samples"
                )
            kinds[name] = kind
            continue
        if line.startswith("#"):
            continue  # arbitrary comment — legal, ignored

        match = _SAMPLE_RE.match(line)
        if not match:
            errors.append(f"line {line_no}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        if not _NAME_RE.match(name):
            errors.append(f"line {line_no}: bad metric name {name!r}")
        try:
            float(match.group("value"))
        except ValueError:
            errors.append(
                f"line {line_no}: non-numeric value "
                f"{match.group('value')!r}"
            )
        labels = _parse_labels(match.group("labels") or "", line_no,
                               errors)
        series = (name, labels)
        if series in seen_series:
            errors.append(
                f"line {line_no}: duplicate series {name}"
                f"{dict(labels) or ''}"
            )
        seen_series.add(series)

        family = _base_family(name, kinds)
        if family is None:
            errors.append(
                f"line {line_no}: sample {name} has no # TYPE declaration"
            )
            continue
        sampled_families.add(family)
        if family not in helps:
            errors.append(
                f"line {line_no}: sample {name} has no # HELP declaration"
            )
        if kinds.get(family) == "histogram" and name.endswith("_bucket"):
            le = dict(labels).get("le")
            if le is None:
                errors.append(
                    f"line {line_no}: histogram bucket without le label"
                )
            elif le == "+Inf":
                key = tuple(p for p in labels if p[0] != "le")
                inf_buckets.add((family, key))

    # Every histogram label set that produced buckets must close with
    # +Inf (scrapers reconstruct counts from the cumulative chain).
    for (name, labels) in seen_series:
        family = _base_family(name, kinds)
        if kinds.get(family) == "histogram" and name.endswith("_bucket"):
            key = tuple(p for p in labels if p[0] != "le")
            if (family, key) not in inf_buckets:
                errors.append(
                    f"histogram {family}{dict(key) or ''} lacks a "
                    f"+Inf bucket"
                )
    # Declared families that never sample are legal in Prometheus but a
    # smell here (a registered instrument nothing writes) — not an
    # error, so a freshly-booted exporter lints clean.
    return sorted(set(errors))


def main(argv: List[str]) -> int:
    if len(argv) != 2 or argv[1] in ("-h", "--help"):
        print(__doc__)
        return 2
    if argv[1] == "-":
        text = sys.stdin.read()
    else:
        with open(argv[1], "r", encoding="utf-8") as fh:
            text = fh.read()
    errors = lint_metrics(text)
    for error in errors:
        print(f"check_metrics: {error}", file=sys.stderr)
    n_samples = sum(
        1 for line in text.splitlines()
        if line.strip() and not line.startswith("#")
    )
    if errors:
        print(f"check_metrics: {len(errors)} error(s) in "
              f"{n_samples} samples", file=sys.stderr)
        return 1
    print(f"check_metrics: OK ({n_samples} samples)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
