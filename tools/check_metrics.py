"""Prometheus text-exposition linter for the observability exporter.

Validates the invariants a real Prometheus scraper enforces (and a few
it merely tolerates but that indicate a rendering bug on our side):

* every sample line belongs to a family that declared ``# HELP`` and
  ``# TYPE`` *before* its first sample;
* ``# TYPE`` is one of ``counter`` / ``gauge`` / ``histogram``;
* no family declares HELP or TYPE twice (a merge bug in
  ``render_text``);
* no two sample lines repeat the same series (name + label set) — a
  duplicate makes the whole scrape rejected;
* metric and label names match the Prometheus grammar; values parse as
  floats; histogram families expose ``_bucket``/``_sum``/``_count``
  with a ``+Inf`` bucket per label set.

On top of the generic grammar checks, :func:`lint_health_families`
enforces the health engine's contract on its two metric families when
they appear in a scrape: ``repro_events_total`` must be a counter whose
every sample carries ``kind`` and ``severity`` labels with values from
the journal's vocabulary, and ``repro_alerts_active`` must be a gauge
whose every sample carries a ``rule`` label with a 0-or-1 value.
:func:`lint_online_families` does the same for the online loop's
``repro_online_*`` families: declared kinds must match the docs,
per-model families must label every sample with ``model``, and
sample-rate / canary-fraction / agreement gauges must stay in [0, 1].

Usable as a library (``lint_metrics(text) -> [errors]``) — the obs
smoke job and ``tests/test_obs_tools.py`` both call it — or as a CLI
reading a scrape from a file or stdin::

    python tools/check_metrics.py scrape.prom
    curl -s localhost:9464/metrics | python tools/check_metrics.py -
"""

from __future__ import annotations

import re
import sys
from typing import Dict, List, Optional, Set, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: ``name{labels} value`` — labels optional; timestamps unsupported on
#: purpose (the exporter never emits them).
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'^(?P<key>[^=]+)="(?P<value>(?:[^"\\]|\\.)*)"$'
)

VALID_KINDS = ("counter", "gauge", "histogram")

#: Suffixes a histogram family's samples may carry.
_HIST_SUFFIXES = ("_bucket", "_sum", "_count")


def _base_family(name: str, kinds: Dict[str, str]) -> Optional[str]:
    """Resolve a sample name to its declared family: exact for scalar
    kinds, suffix-stripped for histograms."""
    if name in kinds and kinds[name] != "histogram":
        return name
    for suffix in _HIST_SUFFIXES:
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if kinds.get(base) == "histogram":
                return base
    if kinds.get(name) == "histogram":
        return None  # bare sample of a histogram family is invalid
    return None


def _parse_labels(raw: str, line_no: int,
                  errors: List[str]) -> Tuple[Tuple[str, str], ...]:
    pairs = []
    # Split on commas outside escaped quotes; the exporter never emits
    # commas inside label values unescaped, so a simple split suffices
    # once values are validated pair-by-pair.
    for chunk in filter(None, raw.split(",")):
        match = _LABEL_PAIR_RE.match(chunk.strip())
        if not match:
            errors.append(f"line {line_no}: malformed label pair {chunk!r}")
            continue
        key = match.group("key")
        if not _LABEL_RE.match(key):
            errors.append(f"line {line_no}: bad label name {key!r}")
        pairs.append((key, match.group("value")))
    return tuple(sorted(pairs))


def lint_metrics(text: str) -> List[str]:
    """Lint one exposition page; returns a list of error strings
    (empty == clean)."""
    errors: List[str] = []
    helps: Set[str] = set()
    kinds: Dict[str, str] = {}
    seen_series: Set[Tuple[str, Tuple[Tuple[str, str], ...]]] = set()
    sampled_families: Set[str] = set()
    inf_buckets: Set[Tuple[str, Tuple[Tuple[str, str], ...]]] = set()

    for line_no, line in enumerate(text.splitlines(), start=1):
        line = line.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                errors.append(f"line {line_no}: HELP without text")
                continue
            name = parts[2]
            if name in helps:
                errors.append(f"line {line_no}: duplicate HELP for {name}")
            helps.add(name)
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                errors.append(f"line {line_no}: malformed TYPE line")
                continue
            name, kind = parts[2], parts[3]
            if kind not in VALID_KINDS:
                errors.append(
                    f"line {line_no}: invalid type {kind!r} for {name}"
                )
            if name in kinds:
                errors.append(f"line {line_no}: duplicate TYPE for {name}")
            if name in sampled_families:
                errors.append(
                    f"line {line_no}: TYPE for {name} after its samples"
                )
            kinds[name] = kind
            continue
        if line.startswith("#"):
            continue  # arbitrary comment — legal, ignored

        match = _SAMPLE_RE.match(line)
        if not match:
            errors.append(f"line {line_no}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        if not _NAME_RE.match(name):
            errors.append(f"line {line_no}: bad metric name {name!r}")
        try:
            float(match.group("value"))
        except ValueError:
            errors.append(
                f"line {line_no}: non-numeric value "
                f"{match.group('value')!r}"
            )
        labels = _parse_labels(match.group("labels") or "", line_no,
                               errors)
        series = (name, labels)
        if series in seen_series:
            errors.append(
                f"line {line_no}: duplicate series {name}"
                f"{dict(labels) or ''}"
            )
        seen_series.add(series)

        family = _base_family(name, kinds)
        if family is None:
            errors.append(
                f"line {line_no}: sample {name} has no # TYPE declaration"
            )
            continue
        sampled_families.add(family)
        if family not in helps:
            errors.append(
                f"line {line_no}: sample {name} has no # HELP declaration"
            )
        if kinds.get(family) == "histogram" and name.endswith("_bucket"):
            le = dict(labels).get("le")
            if le is None:
                errors.append(
                    f"line {line_no}: histogram bucket without le label"
                )
            elif le == "+Inf":
                key = tuple(p for p in labels if p[0] != "le")
                inf_buckets.add((family, key))

    # Every histogram label set that produced buckets must close with
    # +Inf (scrapers reconstruct counts from the cumulative chain).
    for (name, labels) in seen_series:
        family = _base_family(name, kinds)
        if kinds.get(family) == "histogram" and name.endswith("_bucket"):
            key = tuple(p for p in labels if p[0] != "le")
            if (family, key) not in inf_buckets:
                errors.append(
                    f"histogram {family}{dict(key) or ''} lacks a "
                    f"+Inf bucket"
                )
    # Declared families that never sample are legal in Prometheus but a
    # smell here (a registered instrument nothing writes) — not an
    # error, so a freshly-booted exporter lints clean.
    return sorted(set(errors))


def lint_health_families(text: str) -> List[str]:
    """Lint the health engine's two families, when present.

    ``repro_events_total`` samples must declare ``# TYPE ... counter``
    and carry ``kind``/``severity`` labels whose values come from the
    event journal's vocabulary; ``repro_alerts_active`` must declare
    ``gauge`` and carry a ``rule`` label with a 0-or-1 value.  A scrape
    without either family lints clean (both are opt-in features)."""
    try:
        from repro.obs.events import EVENT_KINDS, SEVERITIES
    except ImportError:  # CLI run without PYTHONPATH=src
        from pathlib import Path

        sys.path.insert(
            0, str(Path(__file__).resolve().parent.parent / "src")
        )
        from repro.obs.events import EVENT_KINDS, SEVERITIES

    expected_kinds = {
        "repro_events_total": "counter",
        "repro_alerts_active": "gauge",
    }
    errors: List[str] = []
    kinds: Dict[str, str] = {}
    for line_no, line in enumerate(text.splitlines(), start=1):
        line = line.rstrip()
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) == 4:
                kinds[parts[2]] = parts[3]
            continue
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match or match.group("name") not in expected_kinds:
            continue
        name = match.group("name")
        labels = dict(
            _parse_labels(match.group("labels") or "", line_no, errors)
        )
        if name == "repro_events_total":
            kind = labels.get("kind")
            severity = labels.get("severity")
            if kind not in EVENT_KINDS:
                errors.append(
                    f"line {line_no}: {name} kind label {kind!r} not in "
                    f"EVENT_KINDS"
                )
            if severity not in SEVERITIES:
                errors.append(
                    f"line {line_no}: {name} severity label "
                    f"{severity!r} not in SEVERITIES"
                )
        else:  # repro_alerts_active
            if "rule" not in labels:
                errors.append(
                    f"line {line_no}: {name} sample without rule label"
                )
            if match.group("value") not in ("0", "1", "0.0", "1.0"):
                errors.append(
                    f"line {line_no}: {name} value "
                    f"{match.group('value')!r} is not 0 or 1"
                )
    for name, expected in expected_kinds.items():
        if name in kinds and kinds[name] != expected:
            errors.append(
                f"family {name} declared {kinds[name]!r}, expected "
                f"{expected!r}"
            )
    return sorted(set(errors))


#: The online loop's exported families and their declared kinds.
_ONLINE_FAMILIES = {
    "repro_online_captured_total": "counter",
    "repro_online_capture_evicted_total": "counter",
    "repro_online_capture_depth": "gauge",
    "repro_online_capture_sample_rate": "gauge",
    "repro_online_refits_total": "counter",
    "repro_online_promotions_total": "counter",
    "repro_online_rollbacks_total": "counter",
    "repro_online_canary_fraction": "gauge",
    "repro_online_refit_agreement_ratio": "gauge",
}

#: Families whose samples must carry a ``model`` label.
_ONLINE_MODEL_LABELED = (
    "repro_online_captured_total",
    "repro_online_canary_fraction",
    "repro_online_refit_agreement_ratio",
)

#: Families whose values are ratios and must stay inside [0, 1].
_ONLINE_UNIT_INTERVAL = (
    "repro_online_capture_sample_rate",
    "repro_online_canary_fraction",
    "repro_online_refit_agreement_ratio",
)


def lint_online_families(text: str) -> List[str]:
    """Lint the online loop's ``repro_online_*`` families, when present.

    Counters and gauges must declare the kinds the docs promise;
    per-model families must carry a ``model`` label on every sample;
    sample-rate, canary-fraction, and agreement gauges must stay inside
    [0, 1].  A scrape without any ``repro_online_*`` family lints clean
    (the loop is opt-in via ``start_online``)."""
    errors: List[str] = []
    kinds: Dict[str, str] = {}
    for line_no, line in enumerate(text.splitlines(), start=1):
        line = line.rstrip()
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) == 4:
                kinds[parts[2]] = parts[3]
            continue
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            continue
        name = match.group("name")
        if name not in _ONLINE_FAMILIES:
            continue
        labels = dict(
            _parse_labels(match.group("labels") or "", line_no, errors)
        )
        if name in _ONLINE_MODEL_LABELED and "model" not in labels:
            errors.append(
                f"line {line_no}: {name} sample without model label"
            )
        if name in _ONLINE_UNIT_INTERVAL:
            try:
                value = float(match.group("value"))
            except ValueError:
                value = float("nan")
            if not 0.0 <= value <= 1.0:
                errors.append(
                    f"line {line_no}: {name} value "
                    f"{match.group('value')!r} outside [0, 1]"
                )
    for name, expected in _ONLINE_FAMILIES.items():
        if name in kinds and kinds[name] != expected:
            errors.append(
                f"family {name} declared {kinds[name]!r}, expected "
                f"{expected!r}"
            )
    return sorted(set(errors))


def main(argv: List[str]) -> int:
    if len(argv) != 2 or argv[1] in ("-h", "--help"):
        print(__doc__)
        return 2
    if argv[1] == "-":
        text = sys.stdin.read()
    else:
        with open(argv[1], "r", encoding="utf-8") as fh:
            text = fh.read()
    errors = sorted(set(
        lint_metrics(text)
        + lint_health_families(text)
        + lint_online_families(text)
    ))
    for error in errors:
        print(f"check_metrics: {error}", file=sys.stderr)
    n_samples = sum(
        1 for line in text.splitlines()
        if line.strip() and not line.startswith("#")
    )
    if errors:
        print(f"check_metrics: {len(errors)} error(s) in "
              f"{n_samples} samples", file=sys.stderr)
        return 1
    print(f"check_metrics: OK ({n_samples} samples)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
