"""Documentation checker: every relative link resolves, every snippet runs.

Two checks, both enforced by CI (the ``docs`` job) and by
``tests/test_docs.py``:

* **links** — every relative markdown link in ``README.md`` and
  ``docs/*.md`` must point at a file or directory that exists
  (fragments are stripped; absolute ``http(s)://`` / ``mailto:`` links
  are out of scope — the offline environment cannot verify them).
* **snippets** — every fenced ```` ```python ```` block in ``docs/*.md``
  must execute.  Blocks in one file share a namespace in order, so a
  guide can build state across snippets like a REPL session.  A block
  whose first line is ``# doc: no-exec`` is skipped (for illustrative
  fragments that need unavailable context); use sparingly — a snippet
  that runs is a snippet that cannot rot.

Run from the repo root::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]

#: ``[text](target)`` and ``![alt](target)`` — markdown inline links.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
_FENCE_RE = re.compile(
    r"^```(?P<info>[^\n]*)\n(?P<body>.*?)^```\s*$",
    re.MULTILINE | re.DOTALL,
)

NO_EXEC_MARKER = "# doc: no-exec"


def doc_files() -> List[Path]:
    """README plus every markdown file under docs/, sorted for stable
    reports."""
    files = [REPO_ROOT / "README.md"]
    docs = REPO_ROOT / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return [f for f in files if f.exists()]


def _strip_code(text: str) -> str:
    """Remove fenced code blocks so links inside code are not checked
    (they are syntax examples, not navigation)."""
    return _FENCE_RE.sub("", text)


def check_links(files: List[Path] = None) -> List[str]:
    """Every relative link must resolve.  Returns error strings."""
    errors: List[str] = []
    for path in files if files is not None else doc_files():
        text = _strip_code(path.read_text())
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):  # in-page anchor
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                errors.append(
                    f"{path.relative_to(REPO_ROOT)}: broken link "
                    f"-> {target}"
                )
    return errors


def python_snippets(path: Path) -> List[Tuple[int, str]]:
    """``(line_number, source)`` of every executable python block."""
    text = path.read_text()
    snippets: List[Tuple[int, str]] = []
    for match in _FENCE_RE.finditer(text):
        info = match.group("info").strip().lower()
        if info.split()[:1] != ["python"]:
            continue
        body = match.group("body")
        if body.lstrip().startswith(NO_EXEC_MARKER):
            continue
        line = text[:match.start()].count("\n") + 2  # first body line
        snippets.append((line, body))
    return snippets


def run_snippets(files: List[Path] = None) -> List[str]:
    """Execute the docs' python blocks; returns error strings.

    Blocks of one file run in order in a shared namespace (so guides
    read like a session); files are independent.  README is link-checked
    only — its snippets assume interactive context by design.
    """
    errors: List[str] = []
    targets = (
        files if files is not None
        else [f for f in doc_files() if f.parent.name == "docs"]
    )
    for path in targets:
        namespace: Dict = {"__name__": f"__doc_{path.stem}__"}
        for line, source in python_snippets(path):
            try:
                code = compile(source, f"{path.name}:{line}", "exec")
                exec(code, namespace)  # noqa: S102 - our own docs
            except Exception as exc:  # noqa: BLE001 - report, continue
                errors.append(
                    f"{path.relative_to(REPO_ROOT)} snippet at line "
                    f"{line} failed: {type(exc).__name__}: {exc}"
                )
                break  # later blocks may depend on this one's state
    return errors


def main() -> int:
    files = doc_files()
    print(f"checking {len(files)} documentation file(s)")
    link_errors = check_links(files)
    snippet_files = [f for f in files if f.parent.name == "docs"]
    n_snippets = sum(len(python_snippets(f)) for f in snippet_files)
    print(f"running {n_snippets} python snippet(s) from "
          f"{len(snippet_files)} docs file(s)")
    snippet_errors = run_snippets(snippet_files)
    for error in link_errors + snippet_errors:
        print(f"FAIL {error}", file=sys.stderr)
    if link_errors or snippet_errors:
        print(
            f"{len(link_errors)} broken link(s), "
            f"{len(snippet_errors)} failing snippet(s)",
            file=sys.stderr,
        )
        return 1
    print("docs OK: all links resolve, all snippets execute")
    return 0


if __name__ == "__main__":
    sys.exit(main())
