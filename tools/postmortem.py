"""Pretty-print and diff black-box postmortem bundles.

Companion CLI for :mod:`repro.obs.postmortem`.  Bundles are plain JSON,
but "what changed between the bundle before the incident and the one
after" is the question an operator actually asks — so:

* ``show <bundle>`` renders one bundle as a human-readable incident
  report: header (reason / time / pid), the event timeline with
  severities, tier state, and a metrics/trace inventory;
* ``diff <a> <b>`` compares two bundles: events present only in the
  newer one (the incident's own timeline), tier-state changes, and
  metric samples whose values moved.

Run::

    PYTHONPATH=src python tools/postmortem.py show pm-....json
    PYTHONPATH=src python tools/postmortem.py diff before.json after.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Dict, List, Tuple

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

from repro.obs.postmortem import load_bundle  # noqa: E402


def _fmt_event(event: Dict[str, Any]) -> str:
    labels = ",".join(
        f"{k}={v}" for k, v in sorted((event.get("labels") or {}).items())
    )
    fields = ",".join(
        f"{k}={v}" for k, v in sorted((event.get("fields") or {}).items())
    )
    parts = [
        f"#{event.get('seq', '?'):>5}",
        f"{event.get('severity', '?'):<5}",
        f"{event.get('kind', '?'):<16}",
    ]
    if labels:
        parts.append(f"[{labels}]")
    if fields:
        parts.append(fields)
    return "  ".join(parts)


def _metric_samples(page: str) -> Dict[str, str]:
    """Sample lines of a Prometheus page, keyed by series (name+labels)."""
    out: Dict[str, str] = {}
    for line in page.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        if series:
            out[series] = value
    return out


def show(path: str) -> int:
    bundle = load_bundle(path)
    print(f"postmortem bundle  {path}")
    print(f"  reason   {bundle.get('reason')}")
    print(f"  captured {bundle.get('iso')}  (pid {bundle.get('pid')})")
    if bundle.get("extra"):
        for key, value in sorted(bundle["extra"].items()):
            print(f"  {key:<8} {value}")
    state = bundle.get("state")
    if state:
        print("state:")
        for key, value in sorted(state.items()):
            print(f"  {key}: {value}")
    events: List[Dict[str, Any]] = bundle.get("events") or []
    print(f"events ({len(events)}):")
    for event in events:
        print(f"  {_fmt_event(event)}")
    metrics = bundle.get("metrics") or ""
    traces = bundle.get("traces") or []
    print(f"metrics: {len(_metric_samples(metrics))} samples   "
          f"traces: {len(traces)} sampled requests")
    return 0


def _event_key(event: Dict[str, Any]) -> Tuple:
    return (
        event.get("seq"),
        event.get("kind"),
        tuple(sorted((event.get("labels") or {}).items())),
    )


def diff(path_a: str, path_b: str) -> int:
    a, b = load_bundle(path_a), load_bundle(path_b)
    print(f"diff {path_a} -> {path_b}")
    print(f"  reason   {a.get('reason')} -> {b.get('reason')}")
    print(f"  captured {a.get('iso')} -> {b.get('iso')}")

    seen = {_event_key(e) for e in a.get("events") or []}
    new_events = [e for e in b.get("events") or []
                  if _event_key(e) not in seen]
    print(f"events only in {Path(path_b).name} ({len(new_events)}):")
    for event in new_events:
        print(f"  + {_fmt_event(event)}")

    state_a, state_b = a.get("state") or {}, b.get("state") or {}
    changed = sorted(
        key for key in set(state_a) | set(state_b)
        if state_a.get(key) != state_b.get(key)
    )
    if changed:
        print("state changes:")
        for key in changed:
            print(f"  {key}: {state_a.get(key)} -> {state_b.get(key)}")
    else:
        print("state changes: none")

    samples_a = _metric_samples(a.get("metrics") or "")
    samples_b = _metric_samples(b.get("metrics") or "")
    moved = sorted(
        series for series in set(samples_a) | set(samples_b)
        if samples_a.get(series) != samples_b.get(series)
    )
    print(f"metric samples changed: {len(moved)}")
    for series in moved[:40]:
        print(f"  {series}: {samples_a.get(series, '-')} -> "
              f"{samples_b.get(series, '-')}")
    if len(moved) > 40:
        print(f"  ... and {len(moved) - 40} more")
    return 0


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_show = sub.add_parser("show", help="pretty-print one bundle")
    p_show.add_argument("bundle")
    p_diff = sub.add_parser("diff", help="compare two bundles")
    p_diff.add_argument("bundle_a")
    p_diff.add_argument("bundle_b")
    args = parser.parse_args(argv[1:])
    if args.command == "show":
        return show(args.bundle)
    return diff(args.bundle_a, args.bundle_b)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
