"""Observability smoke: boot a live cluster, scrape it, lint the scrape.

The end-to-end check behind CI's ``obs`` job: start a 2-shard
:class:`~repro.serve.cluster.service.ShardedPolicyService` with the
HTTP exporter and full trace sampling, drive a few hundred requests,
then validate over real HTTP that

* ``/healthz`` answers ``ok``;
* ``/metrics`` parses clean under ``tools/check_metrics.py`` and
  contains the batcher, router, transport, kernel-backend, and
  per-shard worker series the telemetry spine promises;
* ``/traces`` holds sampled requests whose per-stage spans sum to the
  recorded end-to-end latency (within 10%);
* the Chrome ``trace_event`` export is well-formed JSON.

Artifacts (the raw scrape and the Chrome trace) are written to
``--out`` for upload.  Exits non-zero on any failure.  Run locally::

    PYTHONPATH=src python tools/obs_smoke.py --out obs-artifacts
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.request
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from check_metrics import lint_metrics  # noqa: E402

REQUIRED_SERIES = (
    "repro_batcher_flushes_total",
    "repro_batcher_queue_depth",
    "repro_batcher_flush_size_bucket",
    "repro_router_decisions_total",
    "repro_transport_bytes_sent_total",
    "repro_transport_bytes_received_total",
    "repro_cluster_live_shards",
    "repro_cluster_shard_inflight",
    "repro_shm_resident_bytes",
    "repro_server_requests_total",
    "repro_server_latency_seconds_bucket",
    "repro_native_events_total",
    "repro_worker_traced_requests_total",
)


def _fixture_artifact():
    from repro.core.tree import DecisionTreeClassifier
    from repro.serve import PolicyArtifact

    rng = np.random.default_rng(0)
    x = rng.uniform(0, 1, (400, 5))
    y = (x[:, 0] > 0.5).astype(int) * 2 + (x[:, 2] > 0.4).astype(int)
    tree = DecisionTreeClassifier(max_leaf_nodes=32).fit(x, y)
    return PolicyArtifact.from_tree(tree, name="abr")


def _get(url: str) -> bytes:
    return urllib.request.urlopen(url, timeout=10).read()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="obs-artifacts",
                        help="artifact directory (default: obs-artifacts)")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--requests", type=int, default=300)
    args = parser.parse_args()
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    from repro.serve.cluster.service import ShardedPolicyService

    failures = []
    rng = np.random.default_rng(1)
    with ShardedPolicyService(
        n_shards=args.shards, max_batch=8, max_delay_s=0.002,
        trace_sample=1.0, exporter_port=0,
    ) as service:
        service.publish("abr", _fixture_artifact())
        for _ in range(args.requests):
            result = service.submit(
                "abr", rng.uniform(0, 1, 5)
            ).result(timeout=30)
            if not result.ok:
                failures.append(f"serving error: {result.error}")
                break
        url = service.exporter.url

        health = _get(url + "/healthz")
        if health != b"ok\n":
            failures.append(f"/healthz answered {health!r}")

        scrape = _get(url + "/metrics").decode()
        (out / "metrics.prom").write_text(scrape)
        for error in lint_metrics(scrape):
            failures.append(f"/metrics lint: {error}")
        for series in REQUIRED_SERIES:
            if series not in scrape:
                failures.append(f"/metrics missing series {series}")
        for shard_id in range(args.shards):
            if f'shard="{shard_id}"' not in scrape:
                failures.append(
                    f"/metrics missing shard={shard_id} labeled series"
                )

        traces = json.loads(_get(url + "/traces"))
        (out / "traces.json").write_text(json.dumps(traces, indent=1))
        if not traces["traces"]:
            failures.append("/traces returned no sampled traces")
        for trace in traces["traces"][:50]:
            span_sum = sum(s["duration_s"] for s in trace["spans"])
            total = trace["total_s"]
            if total > 0 and abs(span_sum - total) > 0.1 * total:
                failures.append(
                    f"trace {trace['trace_id']}: spans sum {span_sum:.6f}s"
                    f" vs total {total:.6f}s (>10% apart)"
                )

        chrome = json.loads(_get(url + "/traces?format=chrome"))
        (out / "trace.chrome.json").write_text(json.dumps(chrome))
        if not chrome.get("traceEvents"):
            failures.append("chrome export has no traceEvents")

    for failure in failures:
        print(f"obs_smoke: FAIL {failure}", file=sys.stderr)
    if failures:
        return 1
    n_samples = sum(1 for line in scrape.splitlines()
                    if line.strip() and not line.startswith("#"))
    print(f"obs_smoke: OK — {n_samples} metric samples, "
          f"{len(traces['traces'])} traces, artifacts in {out}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
